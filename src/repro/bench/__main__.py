"""Command-line experiment runner.

Usage::

    python -m repro.bench                 # list experiments
    python -m repro.bench --list          # same, explicit
    python -m repro.bench fig12           # run one (default profile)
    python -m repro.bench fig12 --jobs 4  # cells fan out over 4 workers
    python -m repro.bench all --quick     # everything, quick profile
    REPRO_PROFILE=mini python -m repro.bench fig11

Exit status is non-zero if any shape check fails.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path

from .experiments import ALL
from .runner import RunOptions


def _list_experiments() -> int:
    print("available experiments:")
    for name, module in sorted(ALL.items()):
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:7s} {doc}")
    return 0


def _per_experiment_trace(base: str, name: str, multi: bool) -> str:
    """With several experiments, splice the name in so files don't collide
    (cells of different experiments can share labels and indices)."""
    if not multi:
        return base
    p = Path(base)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix or '.json'}"))


def _per_experiment_journal(base: str, name: str, multi: bool) -> str:
    """Journal variant of :func:`_per_experiment_trace`: handles the
    compound ``.jsonl.gz`` suffix."""
    if not multi:
        return base
    for ext in (".jsonl.gz", ".jsonl", ".json", ".gz"):
        if base.endswith(ext):
            return f"{base[:-len(ext)]}.{name}{ext}"
    return f"{base}.{name}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run paper-reproduction experiments.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of {', '.join(sorted(ALL))}, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="use the fast mini256 profile")
    parser.add_argument("--profile", metavar="NAME", default=None,
                        help="run under a named profile: paper, "
                             "paper-smoke (truncated ~10^6-op slice of the "
                             "paper constants), mini, or mini<N>; "
                             "overrides --quick and REPRO_PROFILE")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run independent cells on N worker processes "
                             "(results are deterministic and ordered by "
                             "spec regardless of N)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a Chrome trace per experiment cell "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--report", action="store_true",
                        help="with --trace: print per-stall attribution "
                             "reports from the recorded traces")
    parser.add_argument("--shards", metavar="N[,N...]", default=None,
                        help="shard counts for the cluster scaling sweep "
                             "(e.g. 1,2,4,8); ignored by experiments "
                             "without a cluster dimension")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the experiment's JSON report artifact "
                             "(cluster: the scaling/telemetry report); "
                             "ignored by experiments without one")
    parser.add_argument("--json", metavar="PATH", nargs="?",
                        const="", default=None, dest="json_out",
                        help="write a BENCH_<exp>.json baseline per "
                             "experiment (telemetry + health enabled); "
                             "PATH may be a file (single experiment) or "
                             "a directory (default: benchmarks/)")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="record the deterministic flight recorder per "
                             "cell (JSONL, gzip when PATH ends in .gz); "
                             "bisect two recordings with "
                             "'python -m repro.obs diff'")
    parser.add_argument("--lineage", action="store_true",
                        help="run with the latency-lineage profiler and "
                             "print a percentile-conditioned segment "
                             "decomposition per cell (with --json, also "
                             "write LINEAGE_<exp>.json next to the "
                             "baseline)")
    args = parser.parse_args(argv)
    if args.report and not args.trace:
        parser.error("--report requires --trace")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    named_profile = None
    if args.profile is not None:
        from .profiles import get_profile
        try:
            named_profile = get_profile(args.profile)
        except ValueError as exc:
            parser.error(str(exc))

    if args.list or not args.experiment:
        return _list_experiments()

    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print("use --list to see what is available", file=sys.stderr)
        return 2

    failed = []
    baselines = []
    traces = []
    journals = []
    for name in names:
        print(f"\n=== {name} " + "=" * (68 - len(name)))
        options = RunOptions(
            jobs=args.jobs,
            trace_path=(_per_experiment_trace(args.trace, name,
                                              len(names) > 1)
                        if args.trace else None),
            telemetry=args.json_out is not None,
            lineage=args.lineage,
            journal_path=(_per_experiment_journal(args.journal, name,
                                                  len(names) > 1)
                          if args.journal else None),
        )
        # Experiment-specific knobs ride through only where accepted, so
        # `all --shards 1,2` doesn't trip experiments without that axis.
        kwargs = {}
        accepted = inspect.signature(ALL[name].run).parameters
        if named_profile is not None:
            kwargs["profile"] = named_profile
        if args.shards is not None and "shards" in accepted:
            kwargs["shards"] = tuple(
                int(n) for n in args.shards.replace("{", "").replace(
                    "}", "").split(",") if n.strip())
        if args.out is not None and "out" in accepted:
            kwargs["out"] = args.out
        out = ALL[name].run(quick=args.quick, options=options, **kwargs)
        if not out["check"].passed:
            failed.append(name)
        # Microbench experiments (tab06, sec6d) return no per-cell results.
        traces.extend(r.extra["trace_path"]
                      for r in out.get("results", {}).values()
                      if "trace_path" in r.extra)
        journals.extend(r.extra["journal_path"]
                        for r in out.get("results", {}).values()
                        if r.extra.get("journal_path"))
        if args.lineage:
            from ..obs import lineage_report
            lineage_cells = {}
            for label, r in out.get("results", {}).items():
                lin = r.extra.get("lineage")
                if not lin or not lin.get("ops"):
                    continue
                lineage_cells[label] = lin
                print()
                print(lineage_report(lin["ops"],
                                     title=f"{name} / {label}",
                                     exemplars=lin.get("exemplars")))
            if args.json_out is not None and lineage_cells:
                import json as _json
                base = (Path(args.json_out) if args.json_out
                        and Path(args.json_out).is_dir()
                        else Path("benchmarks"))
                base.mkdir(parents=True, exist_ok=True)
                lpath = base / f"LINEAGE_{name}.json"
                lpath.write_text(_json.dumps(
                    {"schema": "repro-lineage", "version": 1,
                     "experiment": name, "cells": lineage_cells},
                    indent=2, sort_keys=True) + "\n")
                print(f"\nwrote {lpath}")
        if args.json_out is not None and "results" not in out:
            # Microbench experiments (tab06, sec6d) have no per-cell
            # RunResults — nothing to baseline.
            print(f"(no per-cell results — no baseline for {name})")
        elif args.json_out is not None:
            from .baseline import (build_baseline, default_baseline_path,
                                   write_baseline)
            from .experiments.common import resolve_profile
            profile = resolve_profile(named_profile, args.quick)
            doc = build_baseline(name, profile.name, out["results"],
                                 checks_passed=out["check"].passed,
                                 quick=args.quick)
            target = args.json_out
            if target == "":
                base = Path("benchmarks")
                base.mkdir(parents=True, exist_ok=True)
                path = default_baseline_path(name, base)
            elif Path(target).is_dir():
                path = default_baseline_path(name, target)
            elif len(names) > 1:
                # one file per experiment even when a file path was given
                p = Path(target)
                path = p.with_name(f"{p.stem}.{name}{p.suffix or '.json'}")
            else:
                path = Path(target)
            write_baseline(doc, path)
            baselines.append(path)

    if args.trace:
        print(f"\n{len(traces)} trace file(s) written:")
        for p in traces:
            print(f"  {p}")
        if args.report:
            from ..obs import (attribution_report, load_chrome_trace,
                               spans_from_chrome)
            for p in traces:
                spans = spans_from_chrome(load_chrome_trace(p))
                print()
                print(attribution_report(spans, title=p))
    if args.journal:
        print(f"\n{len(journals)} journal file(s) written:")
        for p in journals:
            print(f"  {p}")
    if args.json_out is not None:
        print(f"\n{len(baselines)} baseline file(s) written:")
        for p in baselines:
            print(f"  {p}")
    if failed:
        print(f"\nFAILED shape checks: {failed}", file=sys.stderr)
        return 1
    print(f"\nall shape checks passed ({len(names)} experiment(s)).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
