"""Command-line experiment runner.

Usage::

    python -m repro.bench                 # list experiments
    python -m repro.bench fig12           # run one (default profile)
    python -m repro.bench all --quick     # everything, quick profile
    REPRO_PROFILE=mini python -m repro.bench fig11

Exit status is non-zero if any shape check fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .experiments import ALL
from .runner import set_telemetry, set_trace_output, written_traces


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run paper-reproduction experiments.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of {', '.join(sorted(ALL))}, or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="use the fast mini256 profile")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a Chrome trace per experiment cell "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--report", action="store_true",
                        help="with --trace: print per-stall attribution "
                             "reports from the recorded traces")
    parser.add_argument("--json", metavar="PATH", nargs="?",
                        const="", default=None, dest="json_out",
                        help="write a BENCH_<exp>.json baseline per "
                             "experiment (telemetry + health enabled); "
                             "PATH may be a file (single experiment) or "
                             "a directory")
    args = parser.parse_args(argv)
    if args.report and not args.trace:
        parser.error("--report requires --trace")

    if not args.experiment:
        print("available experiments:")
        for name, module in sorted(ALL.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:7s} {doc}")
        return 0

    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2

    if args.trace:
        set_trace_output(args.trace)
    if args.json_out is not None:
        set_telemetry(True)

    failed = []
    baselines = []
    for name in names:
        print(f"\n=== {name} " + "=" * (68 - len(name)))
        out = ALL[name].run(quick=args.quick)
        if not out["check"].passed:
            failed.append(name)
        if args.json_out is not None:
            from .baseline import (build_baseline, default_baseline_path,
                                   write_baseline)
            from .experiments.common import resolve_profile
            profile = resolve_profile(None, args.quick)
            doc = build_baseline(name, profile.name, out["results"],
                                 checks_passed=out["check"].passed,
                                 quick=args.quick)
            target = args.json_out
            if target == "":
                path = default_baseline_path(name)
            elif Path(target).is_dir():
                path = default_baseline_path(name, target)
            elif len(names) > 1:
                # one file per experiment even when a file path was given
                p = Path(target)
                path = p.with_name(f"{p.stem}.{name}{p.suffix or '.json'}")
            else:
                path = Path(target)
            write_baseline(doc, path)
            baselines.append(path)

    if args.trace:
        paths = written_traces()
        print(f"\n{len(paths)} trace file(s) written:")
        for p in paths:
            print(f"  {p}")
        if args.report:
            from ..obs import (attribution_report, load_chrome_trace,
                               spans_from_chrome)
            for p in paths:
                spans = spans_from_chrome(load_chrome_trace(p))
                print()
                print(attribution_report(spans, title=p))
        set_trace_output(None)
    if args.json_out is not None:
        set_telemetry(False)
        print(f"\n{len(baselines)} baseline file(s) written:")
        for p in baselines:
            print(f"  {p}")
    if failed:
        print(f"\nFAILED shape checks: {failed}", file=sys.stderr)
        return 1
    print(f"\nall shape checks passed ({len(names)} experiment(s)).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
