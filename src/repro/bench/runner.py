"""Experiment runner: build a system, drive a workload, collect a RunResult.

``run_workload`` is the single entry point every table/figure bench uses:

    result = run_workload(RunSpec(system="kvaccel", workload="A",
                                  compaction_threads=1), profile)

Systems: ``rocksdb`` (DbImpl), ``adoc`` (AdocDb), ``kvaccel`` (KvaccelDb).
Workloads: Table IV's A-D via the db_bench drivers.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Optional

from ..adoc import AdocDb, AdocTunerConfig
from ..cluster import ROUTER_POLICIES, ClusterCpuView, ClusterDb, ClusterFabric, make_router
from ..core import KvaccelDb, RollbackConfig
from ..device import CpuModel, HybridSsd
from ..lsm import DbImpl
from ..metrics import RunCollector, RunResult
from ..obs import (HealthMonitor, Journal, LineageProfiler, TelemetryHub,
                   Tracer, default_rules,
                   register_digest_sources, write_chrome_trace,
                   write_journal)
from ..sim import Environment, install_kernel_profiler, uninstall_kernel_profiler
from ..workload import (
    DriverConfig,
    FillRandomDriver,
    ReadWhileWritingDriver,
    SeekRandomDriver,
    WORKLOADS,
    fill_database,
)
from .profiles import ExperimentProfile

__all__ = ["RunSpec", "RunOptions", "run_workload", "build_system",
           "cell_trace_path", "cell_journal_path", "PERF_EXTRA_KEYS",
           "LIVE_EXTRA_KEYS"]

SYSTEMS = ("rocksdb", "adoc", "kvaccel", "cluster")

# Wall-clock instrumentation keys written into RunResult.extra by
# run_workload.  They vary run to run, so baseline comparisons and the
# serial-vs-parallel identity check must exclude them.
PERF_EXTRA_KEYS = ("wall_clock_s", "events_processed", "events_per_sec")

# Live objects carried in RunResult.extra for interactive callers (the
# dashboard, analyze scripts).  They hold Environment references and are
# not picklable — parallel workers strip them before returning.
LIVE_EXTRA_KEYS = ("tracer", "telemetry_hub", "health_monitor", "journal")


@dataclass(frozen=True)
class RunOptions:
    """Per-invocation orchestration options, threaded through experiments.

    This replaces the old module-global trace/telemetry switches: every
    piece of run state is explicit, so cells can fan out over worker
    processes without sharing mutable module state.

    ``jobs``       — worker processes for independent cells (1 = serial;
                     results are keyed and ordered by spec regardless).
    ``trace_path`` — base Chrome-trace path; each cell writes
                     ``<stem>.NN.<label>.json`` with NN the cell's index
                     in its experiment's spec order (deterministic under
                     parallelism, unlike a shared counter).
    ``telemetry``  — run a TelemetryHub + health monitor per cell.
    ``lineage``    — install a LineageProfiler per cell; the per-op
                     decomposition lands in ``result.extra["lineage"]``
                     (plain data, survives the fork boundary).
    ``kernel_profile`` — install the DES kernel self-profiler per cell;
                     counters land in ``result.extra["kernel_profile"]``.
    ``journal_path`` — base journal path; each cell records the flight
                     recorder and writes ``<stem>.NN.<label>.jsonl[.gz]``
                     (same deterministic cell naming as traces).
    ``journal_window`` — ``(t0, t1)``: record only events/sites inside the
                     suspect sim-time window (the ``replay-to`` mode;
                     record indices stay absolute).
    """

    jobs: int = 1
    trace_path: Optional[str] = None
    telemetry: bool = False
    lineage: bool = False
    kernel_profile: bool = False
    journal_path: Optional[str] = None
    journal_window: Optional[tuple] = None


def cell_trace_path(base: str, label: str, seq: int) -> str:
    """Derive a per-cell trace path from the base path and cell index."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in label)
    stem, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}.{seq:02d}.{safe}.json"
    return f"{stem}.{seq:02d}.{safe}.{ext}"


def cell_journal_path(base: str, label: str, seq: int) -> str:
    """Per-cell journal path; handles the compound ``.jsonl.gz`` suffix
    (``cell_trace_path``'s single-extension split would land the cell tag
    inside it)."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in label)
    for ext in (".jsonl.gz", ".jsonl", ".json", ".gz"):
        if base.endswith(ext):
            return f"{base[:-len(ext)]}.{seq:02d}.{safe}{ext}"
    return f"{base}.{seq:02d}.{safe}.jsonl.gz"


@dataclass
class RunSpec:
    """One experiment cell: a system configuration on a workload."""

    system: str
    workload: str = "A"
    compaction_threads: int = 1
    slowdown: bool = True            # rocksdb / adoc variants (Figs 2-3)
    rollback: str = "disabled"       # kvaccel scheme (Figs 12-13)
    seed: int = 1
    duration: Optional[float] = None  # override the profile horizon
    label: Optional[str] = None
    shards: int = 1                  # cluster: shard count
    router: str = "hash"             # cluster: key-space routing policy

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"system must be one of {SYSTEMS}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"workload must be one of {sorted(WORKLOADS)}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(f"router must be one of {ROUTER_POLICIES}")

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if self.system == "cluster":
            name = f"Cluster({self.shards})"
            if self.router != "hash":
                name += f"/{self.router}"
            if self.rollback != "disabled":
                name += {"lazy": "-L", "eager": "-E"}[self.rollback]
            return name
        base = {"rocksdb": "RocksDB", "adoc": "ADOC", "kvaccel": "KVAccel"}
        name = f"{base[self.system]}({self.compaction_threads})"
        if self.system in ("rocksdb", "adoc") and not self.slowdown:
            name += " w/o slowdown"
        if self.system == "kvaccel" and self.rollback != "disabled":
            name += {"lazy": "-L", "eager": "-E"}[self.rollback]
        return name


def _build_kvaccel_shard(env: Environment, profile: ExperimentProfile,
                         spec: RunSpec, name: str, cpu_name: str):
    """One complete KVACCEL stack (db, ssd, cpu).

    Shared by the single-instance ``kvaccel`` branch and every cluster
    shard so the construction sequence — and therefore the event-seq
    numbering — is identical by construction (the 1-shard differential
    oracle depends on this)."""
    cpu = CpuModel(env, cores=profile.host_cores, name=cpu_name)
    ssd = HybridSsd(env, cpu, copy.deepcopy(profile.ssd))
    opts = copy.deepcopy(profile.options)
    opts.max_background_compactions = spec.compaction_threads
    opts.slowdown_enabled = spec.slowdown
    rb = RollbackConfig(scheme=spec.rollback,
                        period=profile.rollback_period,
                        quiet_window=profile.rollback_quiet_window)
    db = KvaccelDb(env, opts, ssd, cpu, name=name,
                   rollback=rb,
                   detector_config=copy.deepcopy(profile.detector),
                   page_cache_bytes=profile.page_cache_bytes,
                   resilience=profile.resilience)
    return db, ssd, cpu


def _build_cluster(env: Environment, profile: ExperimentProfile,
                   spec: RunSpec):
    """N share-nothing KVACCEL shards behind a ClusterDb facade.

    Shards are named ``shard<N>`` (their internal daemons inherit the
    prefix — the hook shard-scoped fault plans key on) and built in shard
    id order.  A 1-shard cluster returns the real shard's ssd/cpu so the
    harness measures exactly the single-instance objects."""
    shards = []
    for sid in range(spec.shards):
        shards.append(_build_kvaccel_shard(
            env, profile, spec, name=f"shard{sid}",
            cpu_name=f"shard{sid}.host" if spec.shards > 1 else "host"))
    router = make_router(spec.router, spec.shards, profile.key_space,
                         seed=spec.seed)
    db = ClusterDb(env, shards, router)
    if spec.shards == 1:
        _, ssd, cpu = shards[0]
        return db, ssd, cpu
    return db, ClusterFabric(db.shards), ClusterCpuView(db.shards)


def build_system(env: Environment, profile: ExperimentProfile, spec: RunSpec):
    """Instantiate (db, ssd, cpu) for a spec."""
    if spec.system == "cluster":
        return _build_cluster(env, profile, spec)
    if spec.system == "kvaccel":
        return _build_kvaccel_shard(env, profile, spec, name="kvaccel",
                                    cpu_name="host")
    cpu = CpuModel(env, cores=profile.host_cores, name="host")
    ssd = HybridSsd(env, cpu, copy.deepcopy(profile.ssd))
    opts = copy.deepcopy(profile.options)
    opts.max_background_compactions = spec.compaction_threads
    opts.slowdown_enabled = spec.slowdown

    cache = profile.page_cache_bytes
    if spec.system == "rocksdb":
        db = DbImpl(env, opts, ssd.block, cpu, name="rocksdb",
                    page_cache_bytes=cache)
    else:
        # ADOC(n) starts from n compaction threads and may double them under
        # pressure — its dynamic range scales with the configured baseline,
        # which is what separates ADOC(1) from ADOC(4) in Fig 12.
        db = AdocDb(env, opts, ssd.block, cpu, name="adoc",
                    page_cache_bytes=cache,
                    tuner_config=AdocTunerConfig(
                        interval=profile.adoc_interval,
                        max_compaction_threads=spec.compaction_threads * 2))
    return db, ssd, cpu


def _main_db(db):
    return db.main if isinstance(db, KvaccelDb) else db


def run_workload(
    spec: RunSpec,
    profile: ExperimentProfile,
    tracer: Optional[Tracer] = None,
    trace_path: Optional[str] = None,
    telemetry: bool = False,
    health_rules: Optional[list] = None,
    sample_callback=None,
    options: Optional[RunOptions] = None,
    cell_index: int = 0,
    lineage: bool = False,
    kernel_profile: bool = False,
    journal: Optional[Journal] = None,
) -> RunResult:
    """Run one experiment cell and return its RunResult.

    ``tracer`` installs a caller-owned tracer on the cell's environment;
    ``trace_path`` additionally writes a Chrome trace there.  With neither,
    ``options.trace_path`` (if set) applies, one file per cell named from
    ``cell_index`` (the cell's position in its experiment's spec order).

    ``telemetry=True`` (or ``options.telemetry``, or passing
    ``health_rules``/``sample_callback``) runs a :class:`TelemetryHub` at
    the profile's sample period alongside the workload.  ``health_rules``
    (default: the built-in set parameterised from the profile) are
    monitored per bucket and the RunResult carries ``telemetry`` +
    ``health_events``.  ``sample_callback(t, sample)`` is invoked per
    closed bucket — the live dashboard's feed.

    Every result carries wall-clock instrumentation in ``extra``
    (:data:`PERF_EXTRA_KEYS`): host seconds, kernel events processed, and
    events/sec — the harness-performance signal tracked by baselines.
    """
    wall_t0 = time.perf_counter()
    env = Environment()
    kprof = None
    if kernel_profile or (options is not None and options.kernel_profile):
        kprof = install_kernel_profiler(env)
    cell_path = trace_path
    if (cell_path is None and tracer is None and options is not None
            and options.trace_path is not None):
        cell_path = cell_trace_path(options.trace_path, spec.display,
                                    cell_index + 1)
    if tracer is None and cell_path is not None:
        tracer = Tracer()
    if tracer is not None:
        tracer.install(env)
    journal_path = None
    if (journal is None and options is not None
            and options.journal_path is not None):
        journal_path = cell_journal_path(options.journal_path, spec.display,
                                         cell_index + 1)
        journal = Journal(
            period=profile.sample_period,
            window=options.journal_window if options is not None else None)
    if journal is not None:
        journal.install(env)
    hub = None
    if (telemetry or (options is not None and options.telemetry)
            or health_rules is not None or sample_callback is not None):
        hub = TelemetryHub(env, period=profile.sample_period)
    monitor = None
    if hub is not None:
        hub.install(env)
        if health_rules is not None:
            rules = health_rules
        else:
            # Per-shard SLO instances (cluster_shard_rules) are no
            # longer wired here: ClusterDb registers its own
            # HealthMonitor on the hub at construction, and its events
            # are merged into ``health_events`` below.
            rules = default_rules(
                period=profile.sample_period,
                device_peak_bw=profile.device_peak_bw,
                delayed_write_rate=profile.options.delayed_write_rate,
                value_size=profile.value_size)
        monitor = HealthMonitor(hub, rules)
        if sample_callback is not None:
            hub.on_sample(sample_callback)
    db, ssd, cpu = build_system(env, profile, spec)
    if journal is not None:
        register_digest_sources(journal, db, ssd)
    wl = WORKLOADS[spec.workload]
    duration = spec.duration if spec.duration is not None else profile.duration

    cfg = DriverConfig(
        duration=duration,
        key_space=profile.key_space,
        key_size=profile.key_size,
        value_size=profile.value_size,
        batch_size=profile.batch_size,
        seed=spec.seed,
        driver_batch=profile.driver_batch,
    )

    # Workload D preloads the store before measuring.
    if wl.kind == "seekrandom" and profile.seekrandom_fill_bytes > 0:
        p = fill_database(env, db, profile.seekrandom_fill_bytes, cfg)
        env.run(until=p)
        main = _main_db(db)
        env.run(until=env.process(main.wait_for_quiesce()))

    # Lineage installs after the preload so the fill phase does not
    # pollute the measured op population.
    lineage_prof = None
    if lineage or (options is not None and options.lineage):
        lineage_prof = LineageProfiler(env).install()

    collector = RunCollector(env, spec.display,
                             sample_period=profile.sample_period)
    collector.attach_db_stats(db.stats)

    if wl.kind == "fillrandom":
        driver = FillRandomDriver(env, db, cfg)
    elif wl.kind == "readwhilewriting":
        driver = ReadWhileWritingDriver(env, db, cfg,
                                        write_ratio=wl.write_ratio,
                                        read_ratio=wl.read_ratio)
    else:
        driver = SeekRandomDriver(env, db, cfg,
                                  nexts_per_seek=profile.seekrandom_nexts)
    # Meters shared with the collector so per-bucket series line up.
    driver.write_meter = collector.write_meter
    driver.read_meter = collector.read_meter

    proc = driver.start()
    env.run(until=proc)
    env.run(until=env.now + profile.sample_period)  # flush last bucket
    collector.stop()
    if hub is not None:
        hub.stop(flush=True)

    main = _main_db(db)
    result = collector.result(
        write_ops=driver.write_ops,
        read_ops=driver.read_ops,
        write_bytes=driver.write_bytes,
        write_controller=main.write_controller,
        host_cpu=cpu,
        pcie_ledger=ssd.pcie.ledger,
    )
    result.extra["snapshot"] = (db.snapshot() if hasattr(db, "snapshot")
                                else main.property_snapshot())
    result.extra["spec"] = spec
    result.extra["profile"] = profile.name
    result.extra["sample_period"] = profile.sample_period
    result.extra["device_peak_bw"] = profile.device_peak_bw
    if isinstance(db, KvaccelDb):
        result.extra["redirected_writes"] = db.controller.redirected_writes
        result.extra["rollbacks"] = db.rollback_manager.rollback_count
    elif isinstance(db, ClusterDb):
        result.extra["redirected_writes"] = sum(
            sh.db.controller.redirected_writes for sh in db.shards)
        result.extra["rollbacks"] = sum(
            sh.db.rollback_manager.rollback_count for sh in db.shards)
        result.extra["cluster"] = db.cluster_report()
    if isinstance(driver, SeekRandomDriver):
        result.extra["seeks"] = driver.seeks
        result.extra["entries_scanned"] = driver.entries_scanned
    if hub is not None:
        result.telemetry = hub.export()
        result.extra["telemetry_hub"] = hub
        if monitor is not None:
            events = [e.to_dict() for e in monitor.events]
            # The cluster facade runs its own per-shard monitor
            # (stall_storm.shardK, shard_failover.shardK, ...); merge
            # its events so callers see one timeline.  sorted() is
            # stable, so same-t events keep fleet-then-shard order.
            shard_monitor = getattr(db, "health", None)
            if shard_monitor is not None:
                events += [e.to_dict() for e in shard_monitor.events]
                result.extra["shard_health_monitor"] = shard_monitor
            result.health_events = sorted(events, key=lambda e: e["t"])
            result.extra["health_monitor"] = monitor
    db.close()
    if tracer is not None:
        tracer.close_open_spans()
        result.extra["tracer"] = tracer
        if cell_path is not None:
            write_chrome_trace(tracer, cell_path, label=spec.display)
            result.extra["trace_path"] = cell_path
    if journal is not None:
        # Final checkpoint so even sub-period runs carry digest records;
        # taken after close() so shutdown transitions are in the hash.
        journal.checkpoint_now(env.now)
        result.extra["journal"] = journal
        if journal_path is not None:
            write_journal(journal, journal_path,
                          meta={"cell": spec.display, "seed": spec.seed,
                                "profile": profile.name})
        result.extra["journal_path"] = journal_path
    if lineage_prof is not None:
        result.extra["lineage"] = lineage_prof.to_dict()
    if kprof is not None:
        uninstall_kernel_profiler(env)
        result.extra["kernel_profile"] = kprof.to_dict()
    wall = time.perf_counter() - wall_t0
    events = env.events_scheduled
    result.extra["wall_clock_s"] = wall
    result.extra["events_processed"] = events
    result.extra["events_per_sec"] = events / wall if wall > 0 else 0.0
    return result
