"""Bench baseline store: schema-versioned ``BENCH_<exp>.json`` documents.

``python -m repro.bench <exp> --json`` summarises every cell of an
experiment into one JSON document — throughput, tail latency, stall
books, and the per-rule health summary from the telemetry layer — that
``python -m repro.obs compare`` diffs against a later run.  This is the
ROADMAP's "measurably faster" trajectory: optimisations land with a
before/after pair of these files.

The document shape is pinned by ``bench_schema.json`` (checked in next to
this module) and validated by :func:`validate_schema`, a dependency-free
interpreter of the JSON-Schema subset the schema uses — the container
image has no ``jsonschema`` package, and the subset keeps us honest about
what the schema can express.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

__all__ = ["SCHEMA_NAME", "SCHEMA_VERSION", "cell_metrics",
           "build_baseline", "write_baseline", "load_schema",
           "validate_schema", "default_baseline_path"]

SCHEMA_NAME = "repro-bench-baseline"
# v2 adds per-cell harness-performance fields (wall_clock_s,
# events_processed, events_per_sec).  They are optional in the schema:
# they vary run to run, v1 documents stay valid, and byte-identity checks
# (serial vs --jobs N) strip them before comparing.
SCHEMA_VERSION = 2
_SCHEMA_PATH = Path(__file__).with_name("bench_schema.json")


def cell_metrics(result) -> dict:
    """Flatten one RunResult into the baseline's per-cell record."""
    out = {
        "write_throughput_ops": float(result.write_throughput_ops),
        "read_throughput_ops": float(result.read_throughput_ops),
        "write_p99_us": float(result.write_p99_us),
        "total_stall_time": float(result.total_stall_time),
        "stall_events": int(result.stall_events),
        "slowdown_events": int(result.slowdown_events),
        "total_delayed_time": float(result.total_delayed_time),
        "cpu_utilization": float(result.cpu_utilization),
        "efficiency": float(result.efficiency),
        "duration": float(result.duration),
        "write_ops": int(result.write_ops),
        "read_ops": int(result.read_ops),
        "health": {k: int(v) for k, v in result.health_summary().items()},
    }
    # Harness-performance instrumentation (absent on hand-built results).
    extra = getattr(result, "extra", {}) or {}
    if "wall_clock_s" in extra:
        out["wall_clock_s"] = float(extra["wall_clock_s"])
        out["events_processed"] = int(extra.get("events_processed", 0))
        out["events_per_sec"] = float(extra.get("events_per_sec", 0.0))
    return out


def build_baseline(experiment: str, profile: str, results: dict,
                   checks_passed: bool, quick: bool = False) -> dict:
    """Assemble the document for one experiment's ``{label: RunResult}``."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "experiment": experiment,
        "profile": profile,
        "quick": quick,
        "checks_passed": bool(checks_passed),
        "cells": {label: cell_metrics(r)
                  for label, r in sorted(results.items())},
    }


def default_baseline_path(experiment: str,
                          directory: Union[str, Path, None] = None) -> Path:
    base = Path(directory) if directory else Path(".")
    return base / f"BENCH_{experiment}.json"


def write_baseline(doc: dict, path: Union[str, Path]) -> Path:
    """Validate against the checked-in schema, then write."""
    errors = validate_schema(doc, load_schema())
    if errors:
        raise ValueError("baseline does not match bench_schema.json: "
                         + "; ".join(errors[:5]))
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_schema() -> dict:
    return json.loads(_SCHEMA_PATH.read_text())


# -- JSON-Schema subset interpreter -----------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, tname: str) -> bool:
    if tname == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if tname == "integer":
        return (isinstance(value, int) and not isinstance(value, bool)) or (
            isinstance(value, float) and value.is_integer())
    return isinstance(value, _TYPES[tname])


def validate_schema(value, schema: dict, path: str = "$") -> list:
    """Validate ``value`` against a JSON-Schema subset; returns a list of
    error strings (empty = valid).

    Supported keywords: ``type`` (str or list), ``const``, ``enum``,
    ``minimum``/``maximum``, ``required``, ``properties``,
    ``additionalProperties`` (bool or schema), ``items``.  Anything else
    in the schema is ignored, so keep ``bench_schema.json`` inside this
    subset.
    """
    errors: list[str] = []
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']!r}")
    if "type" in schema:
        tnames = schema["type"]
        if isinstance(tnames, str):
            tnames = [tnames]
        if not any(_type_ok(value, t) for t in tnames):
            errors.append(f"{path}: expected type {'/'.join(tnames)}, "
                          f"got {type(value).__name__}")
            return errors   # deeper checks are meaningless on a type miss
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required property {req!r}")
        props = schema.get("properties", {})
        addl = schema.get("additionalProperties", True)
        for key, sub in value.items():
            kpath = f"{path}.{key}"
            if key in props:
                errors.extend(validate_schema(sub, props[key], kpath))
            elif addl is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(addl, dict):
                errors.extend(validate_schema(sub, addl, kpath))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate_schema(item, schema["items"],
                                          f"{path}[{i}]"))
    return errors
