"""ASCII reporting for experiment results.

Every bench prints (a) the rows/series the paper reports, (b) the paper's
own numbers next to ours, and (c) a shape verdict.  The goal of the
reproduction is the *shape* — orderings, signs of deltas, rough factors —
not absolute numbers (our substrate is a calibrated simulator, not the
authors' Cosmos+ testbed).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["table", "series_sparkline", "shape_check", "ShapeCheck",
           "kops", "fmt"]

_SPARK = "▁▂▃▄▅▆▇█"


def kops(ops_per_s: float) -> str:
    return f"{ops_per_s / 1000:.1f}"


def fmt(value: float, digits: int = 2) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"


def table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "",
          indent: str = "  ") -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = indent + "-+-".join("-" * w for w in widths)
    lines.append(indent + " | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(indent + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_sparkline(values: Sequence[float], width: int = 72,
                     label: str = "") -> str:
    """Compress a time series into a unicode sparkline (terminal figure)."""
    if not values:
        return f"{label} (empty)"
    n = len(values)
    if n > width:
        # bucket-average down to `width` points
        out = []
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            out.append(sum(values[lo:hi]) / (hi - lo))
        values = out
    vmax = max(values) or 1.0
    chars = "".join(_SPARK[min(len(_SPARK) - 1,
                               int(v / vmax * (len(_SPARK) - 1)))]
                    for v in values)
    return f"{label}{chars}  (max={vmax:.3g})"


class ShapeCheck:
    """Collects named shape assertions and renders a verdict block."""

    def __init__(self, name: str):
        self.name = name
        self.checks: list[tuple[str, bool, str]] = []

    def expect(self, description: str, ok: bool, detail: str = "") -> bool:
        self.checks.append((description, bool(ok), detail))
        return bool(ok)

    def expect_order(self, description: str, bigger: float, smaller: float,
                     slack: float = 1.0) -> bool:
        """bigger >= smaller * slack (slack<1 tolerates near-ties)."""
        ok = bigger >= smaller * slack
        return self.expect(description, ok,
                           f"{bigger:.3g} vs {smaller:.3g} (slack {slack})")

    @property
    def passed(self) -> bool:
        return all(ok for _d, ok, _x in self.checks)

    def render(self) -> str:
        lines = [f"shape checks — {self.name}:"]
        for desc, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            suffix = f"  [{detail}]" if detail else ""
            lines.append(f"  [{mark}] {desc}{suffix}")
        return "\n".join(lines)

    def assert_all(self) -> None:
        if not self.passed:
            raise AssertionError(self.render())


def shape_check(name: str) -> ShapeCheck:
    return ShapeCheck(name)
