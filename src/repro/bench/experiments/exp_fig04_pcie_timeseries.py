"""Figure 4 — PCIe bandwidth during write stalls (RocksDB w/o slowdown).

Paper: time-series PCIe traffic for RocksDB(1) and RocksDB(4) shows
significant unused bandwidth inside stall windows — intervals of zero
traffic while merges run from memory, interleaved with near-peak bursts.
"""

from __future__ import annotations

from ...metrics import analyze_stall_pcie
from ..report import series_sparkline, shape_check
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "note": "zero-traffic windows appear inside stall regions for both "
            "1 and 4 compaction threads; bursts reach the 630 MB/s device peak",
}


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=False),
        RunSpec("rocksdb", "A", 4, slowdown=False),
    ]
    results = run_cells(specs, profile, options)

    check = shape_check("Fig 4: PCIe under-utilized during stalls")
    stats = {}
    for label, r in results.items():
        s = analyze_stall_pcie(
            r.pcie_times, r.pcie_series, r.stall_intervals,
            capacity=r.extra["device_peak_bw"] * r.extra["sample_period"],
            bucket=r.extra["sample_period"])
        stats[label] = s
        check.expect(f"{label}: stall windows exist",
                     s.stall_buckets > 0, f"{s.stall_buckets} buckets")
    one = stats["RocksDB(1) w/o slowdown"]
    four = stats["RocksDB(4) w/o slowdown"]
    check.expect("RocksDB(1): zero-traffic windows inside stalls (paper 30%)",
                 one.zero_buckets > 0,
                 f"{one.zero_fraction*100:.0f}%")
    # Model deviation vs paper: with 4 threads our overlapped compactions
    # keep the link busy (paper still saw 21% idle).  The robust direction
    # is that more threads shrink the idle share.
    check.expect("RocksDB(4): idle share <= RocksDB(1)'s (paper 21% vs 30%)",
                 four.zero_fraction <= one.zero_fraction,
                 f"{four.zero_fraction*100:.0f}% vs {one.zero_fraction*100:.0f}%")

    lines = ["Figure 4 — PCIe traffic (MB/s equivalents, sparkline = full run)"]
    for label, r in results.items():
        period = r.extra["sample_period"]
        mbps = [v / period / (1 << 20) for v in r.pcie_series]
        lines.append(series_sparkline(mbps, label=f"  {label:26s} "))
        s = stats[label]
        lines.append(
            f"    stall-buckets={s.stall_buckets}, zero={s.zero_buckets} "
            f"({s.zero_fraction*100:.0f}%), >90%-peak={s.above_90_buckets} "
            f"({s.above_90_fraction*100:.0f}%)")
    lines.append(f"paper: {PAPER['note']}")
    lines.append(check.render())
    print("\n".join(lines))
    return {"results": results, "stats": stats, "paper": PAPER, "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
