"""Figure 11 — per-second throughput: RocksDB(1), ADOC(1), KVACCEL(1).

Paper: in the windows where RocksDB and ADOC slow down to ~2 Kops/s to
dodge a stall, KVACCEL keeps writing at 30+ Kops/s by redirecting into the
Dev-LSM; KVACCEL uses no slowdown mechanism at all.
"""

from __future__ import annotations

import numpy as np

from ..report import series_sparkline, shape_check
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "baseline_floor_kops": 2.0,
    "kvaccel_during_stall_kops": 30.0,
}


def _low_decile_kops(result) -> float:
    """Mean of the lowest 10% of per-bucket throughputs (the 'floor')."""
    period = result.extra["sample_period"]
    vals = np.asarray(result.write_ops_series, dtype=float) / period / 1000
    warm = len(vals) // 10
    vals = np.sort(vals[warm:])
    k = max(1, len(vals) // 10)
    return float(vals[:k].mean())


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=True),
        RunSpec("adoc", "A", 1, slowdown=True),
        RunSpec("kvaccel", "A", 1, rollback="disabled"),
    ]
    results = run_cells(specs, profile, options)

    floors = {label: _low_decile_kops(r) for label, r in results.items()}

    check = shape_check("Fig 11: KVACCEL writes through the stall windows")
    check.expect_order(
        "KVACCEL's worst periods far exceed RocksDB's slowdown floor",
        floors["KVAccel(1)"], floors["RocksDB(1)"], slack=1.5)
    check.expect_order(
        "KVACCEL's worst periods exceed ADOC's slowdown floor",
        floors["KVAccel(1)"], floors["ADOC(1)"], slack=1.2)
    check.expect(
        "KVACCEL employs no slowdown",
        results["KVAccel(1)"].slowdown_events == 0)
    check.expect(
        "baselines do slow down",
        results["RocksDB(1)"].slowdown_events > 0
        and results["ADOC(1)"].slowdown_events > 0)
    check.expect(
        "redirection actually happened",
        results["KVAccel(1)"].extra.get("redirected_writes", 0) > 0,
        str(results["KVAccel(1)"].extra.get("redirected_writes")))

    lines = ["Figure 11 — per-second write throughput (Kops/s)"]
    for label, r in results.items():
        period = r.extra["sample_period"]
        per_s = [v / period / 1000 for v in r.write_ops_series]
        lines.append(series_sparkline(per_s, label=f"  {label:12s} "))
        lines.append(f"    avg={r.write_throughput_ops/1000:.1f}K, "
                     f"low-decile={floors[label]:.1f}K, "
                     f"slowdowns={r.slowdown_events}")
    lines.append(
        f"paper: baselines dip to ~{PAPER['baseline_floor_kops']:.0f}K, "
        f"KVACCEL keeps ~{PAPER['kvaccel_during_stall_kops']:.0f}K+")
    lines.append(check.render())
    print("\n".join(lines))
    return {"results": results, "floors": floors, "paper": PAPER,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
