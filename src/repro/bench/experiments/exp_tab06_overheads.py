"""Table VI — time overheads of KVACCEL's software modules.

Paper (average elapsed time):

    Detector check   1.37 us     (every 0.1 s)
    Key insert       0.45 us
    Key check        0.20 us
    Key delete       0.28 us

Two measurements are reported here:

1. the *model constants* the simulation charges (these are the paper's
   numbers, wired into DetectorConfig / MetadataCosts), verified to be
   exactly what the host-CPU ledger accumulates; and
2. a *real microbenchmark* of our Python implementations of the same
   operations (wall-clock perf_counter), to show the operations genuinely
   are sub-microsecond-to-few-microsecond hash/stat work.
"""

from __future__ import annotations

import time

from ...core import DetectorConfig, MetadataCosts, MetadataManager, WriteStallDetector
from ...device import CpuModel
from ...lsm import LsmOptions
from ...sim import Environment
from ...types import encode_key
from ..report import fmt, shape_check, table
from .common import resolve_profile

PAPER = {
    "detector_us": 1.37,
    "insert_us": 0.45,
    "check_us": 0.20,
    "delete_us": 0.28,
}


def _wall_us(fn, n: int = 50_000) -> float:
    t0 = time.perf_counter()
    fn(n)
    return (time.perf_counter() - t0) / n * 1e6


def run(profile=None, quick: bool = False, ops: int = 50_000,
        options=None) -> dict:  # options unused: single-env microbench
    profile = resolve_profile(profile, quick)
    if quick:
        ops = min(ops, 10_000)

    # --- 1. model constants, verified through the CPU ledger ----------
    env = Environment()
    cpu = CpuModel(env, cores=8)
    md = MetadataManager(cpu, MetadataCosts())
    keys = [encode_key(i) for i in range(ops)]
    for k in keys:
        md.insert(k)
    for k in keys:
        md.contains(k)
    for k in keys:
        md.remove(k)
    charged_us = cpu.busy_by_tag["metadata"] / (3 * ops) * 1e6
    expected_us = (PAPER["insert_us"] + PAPER["check_us"]
                   + PAPER["delete_us"]) / 3

    # Detector: drive a real detector over an idle DB for N periods.
    from ...device import Ftl, NandArray, NandGeometry, PcieLink, BlockDevice
    from ...lsm import DbImpl
    env2 = Environment()
    cpu2 = CpuModel(env2, cores=8)
    geo = NandGeometry(channels=1, ways=1, blocks_per_way=64,
                       pages_per_block=16, page_size=4096)
    dev = BlockDevice(env2, Ftl(geo), NandArray(env2, geo), PcieLink(env2))
    db = DbImpl(env2, LsmOptions(write_buffer_size=1 << 20), dev, cpu2)
    det = WriteStallDetector(env2, db,
                             DetectorConfig(period=0.01,
                                            check_cpu_cost=PAPER["detector_us"] * 1e-6))
    env2.run(until=1.0)
    det_us = cpu2.busy_by_tag["detector"] / max(1, det.checks) * 1e6
    det.stop()
    db.close()

    # --- 2. wall-clock microbenchmark of the actual Python ops ----------
    store: set = set()

    def bench_insert(n):
        for i in range(n):
            store.add(keys[i])

    def bench_check(n):
        for i in range(n):
            keys[i] in store  # noqa: B015

    def bench_delete(n):
        for i in range(n):
            store.discard(keys[i])

    wall = {
        "insert_us": _wall_us(bench_insert, ops),
        "check_us": _wall_us(bench_check, ops),
        "delete_us": _wall_us(bench_delete, ops),
    }

    rows = [
        ["Detector", fmt(det_us), fmt(PAPER["detector_us"]), "-"],
        ["Key insert", fmt(MetadataCosts().insert * 1e6),
         fmt(PAPER["insert_us"]), fmt(wall["insert_us"], 3)],
        ["Key check", fmt(MetadataCosts().check * 1e6),
         fmt(PAPER["check_us"]), fmt(wall["check_us"], 3)],
        ["Key delete", fmt(MetadataCosts().delete * 1e6),
         fmt(PAPER["delete_us"]), fmt(wall["delete_us"], 3)],
    ]

    check = shape_check("Table VI: module overheads are microsecond-scale")
    check.expect("ledger charge matches the configured per-op costs",
                 abs(charged_us - expected_us) / expected_us < 0.01,
                 f"{charged_us:.3f} vs {expected_us:.3f} us")
    check.expect("detector charge matches Table VI's 1.37 us",
                 abs(det_us - PAPER["detector_us"]) < 0.01,
                 f"{det_us:.3f} us")
    check.expect("real Python hash ops are < 5 us each",
                 all(v < 5.0 for v in wall.values()),
                 str({k: round(v, 3) for k, v in wall.items()}))
    check.expect("check is the cheapest metadata op (paper ordering)",
                 wall["check_us"] <= wall["insert_us"] * 1.5)

    print(table(["operation", "model (us)", "paper (us)", "python wall (us)"],
                rows, title="Table VI — software module overheads"))
    print(check.render())
    return {"wall": wall, "detector_us": det_us, "paper": PAPER,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
