"""Section VI-D — recovery after losing the metadata hash table.

Paper: the Metadata Manager lives in volatile memory; after a crash, all
KV pairs in the Dev-LSM are rolled back into Main-LSM.  Restoring 10,000
pairs took 1.1 s, i.e. recovery overhead is minimal.
"""

from __future__ import annotations

from ...core import DetectorConfig, KvaccelDb, RollbackConfig
from ...device import CpuModel, HybridSsd
from ...sim import Environment
from ...types import encode_key
from ...workload import value_for
from ..report import fmt, shape_check, table
from .common import resolve_profile

PAPER = {"pairs": 10_000, "seconds": 1.1}


def run(profile=None, quick: bool = False, pairs: int = 10_000,
        options=None) -> dict:  # options unused: single-env scenario
    profile = resolve_profile(profile, quick)
    if quick:
        pairs = min(pairs, 2_000)
    env = Environment()
    import copy
    cpu = CpuModel(env, cores=profile.host_cores, name="host")
    ssd = HybridSsd(env, cpu, copy.deepcopy(profile.ssd))
    db = KvaccelDb(env, copy.deepcopy(profile.options), ssd, cpu,
                   rollback=RollbackConfig(scheme="disabled",
                                           period=profile.rollback_period),
                   detector_config=copy.deepcopy(profile.detector))

    # Force every pair through the key-value interface (as if written
    # during one long stall), then crash the metadata table and recover.
    # The detector thread is stopped first so it cannot overwrite the
    # forced verdict mid-load.
    db.detector.stop()

    def load():
        db.detector.stall_condition = True
        batch = []
        for i in range(pairs):
            batch.append((encode_key(i), value_for(encode_key(i),
                                                   profile.value_size)))
            if len(batch) == profile.batch_size:
                yield from db.put_batch(batch)
                batch = []
        if batch:
            yield from db.put_batch(batch)
        db.detector.stall_condition = False

    env.run(until=env.process(load()))
    assert ssd.kv.entry_count >= 1

    report = env.run(until=env.process(db.recover()))
    env.run(until=env.process(db.wait_for_quiesce()))

    # Post-recovery integrity: the device buffer is empty, data readable.
    def verify():
        for k in (0, pairs // 2, pairs - 1):
            v = yield from db.get(encode_key(k))
            assert v is not None, k
    env.run(until=env.process(verify()))

    check = shape_check("Sec VI-D: recovery is complete and fast")
    check.expect("all pairs recovered",
                 report.entries_recovered == pairs,
                 f"{report.entries_recovered}/{pairs}")
    check.expect("Dev-LSM empty after recovery", ssd.kv.is_empty)
    check.expect("metadata table empty (trivially consistent)",
                 len(db.metadata) == 0)
    # Paper: 10k pairs in 1.1 s on real hardware.  Same order of magnitude:
    per_pair_paper = PAPER["seconds"] / PAPER["pairs"]
    per_pair = report.elapsed / max(1, report.entries_recovered)
    check.expect(
        "per-pair recovery cost within 20x of the paper's 110 us",
        per_pair <= per_pair_paper * 20,
        f"{per_pair*1e6:.0f} us/pair vs paper {per_pair_paper*1e6:.0f} us/pair")

    print(table(
        ["pairs", "recovered", "sim seconds", "paper seconds (10k pairs)"],
        [[pairs, report.entries_recovered, fmt(report.elapsed, 3),
          PAPER["seconds"]]],
        title="Section VI-D — metadata-loss recovery"))
    print(check.render())
    db.close()
    return {"report": report, "paper": PAPER, "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
