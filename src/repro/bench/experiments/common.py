"""Shared helpers for the experiment modules."""

from __future__ import annotations

import multiprocessing
from typing import Optional

from ..profiles import ExperimentProfile, active_profile, mini_profile
from ..runner import LIVE_EXTRA_KEYS, RunOptions, RunSpec, run_workload

__all__ = ["resolve_profile", "run_cells"]


def resolve_profile(profile: Optional[ExperimentProfile],
                    quick: bool) -> ExperimentProfile:
    """Default profile selection: explicit > REPRO_PROFILE > mini64.

    ``quick=True`` swaps in the 4x-faster mini256 profile (used by CI-style
    runs and the test suite; shapes hold, statistics are noisier).
    """
    if profile is not None:
        return profile
    if quick:
        return mini_profile(256)
    return active_profile()


def _cell_worker(payload):
    """Run one cell in a worker process (module-level for picklability).

    Live objects (tracer / telemetry hub / health monitor) hold Environment
    references and cannot cross the process boundary; the data they back
    (``result.telemetry``, ``result.health_events``, the written trace
    file) already lives on the RunResult, so workers strip the objects.
    """
    idx, spec, profile, options = payload
    result = run_workload(spec, profile, options=options, cell_index=idx)
    for key in LIVE_EXTRA_KEYS:
        result.extra.pop(key, None)
    return idx, result


def run_cells(specs: list, profile: ExperimentProfile,
              options: Optional[RunOptions] = None) -> dict:
    """Run every spec and key results by display label.

    With ``options.jobs > 1`` independent cells fan out over worker
    processes.  Each cell is a self-contained simulation with its own
    Environment and seed, so the per-cell results — and therefore the
    merged dict, which is always assembled in spec order — are identical
    to a serial run (modulo the wall-clock fields in ``extra``).
    """
    if options is None:
        options = RunOptions()
    payloads = [(i, spec, profile, options) for i, spec in enumerate(specs)]
    if options.jobs > 1 and len(specs) > 1:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ctx.Pool(processes=min(options.jobs, len(specs))) as pool:
            done = pool.map(_cell_worker, payloads)
        # map() preserves submission order; key by spec order explicitly
        # anyway so completion order can never leak into the output.
        by_index = dict(done)
        return {spec.display: by_index[i] for i, spec in enumerate(specs)}
    results = {}
    for i, spec in enumerate(specs):
        results[spec.display] = run_workload(spec, profile, options=options,
                                             cell_index=i)
    return results
