"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Optional

from ..profiles import ExperimentProfile, active_profile, mini_profile
from ..runner import RunSpec, run_workload

__all__ = ["resolve_profile", "run_cells"]


def resolve_profile(profile: Optional[ExperimentProfile],
                    quick: bool) -> ExperimentProfile:
    """Default profile selection: explicit > REPRO_PROFILE > mini64.

    ``quick=True`` swaps in the 4x-faster mini256 profile (used by CI-style
    runs and the test suite; shapes hold, statistics are noisier).
    """
    if profile is not None:
        return profile
    if quick:
        return mini_profile(256)
    return active_profile()


def run_cells(specs: list, profile: ExperimentProfile) -> dict:
    """Run every spec and key results by display label."""
    results = {}
    for spec in specs:
        results[spec.display] = run_workload(spec, profile)
    return results
