"""Figure 13 — rollback schemes across workloads A/B/C (4 threads).

Paper results:

* Workload A (write-only): lazy rollback beats eager (rollback I/O steals
  bandwidth from foreground writes);
* Workloads B/C (9:1 and 8:2 write:read): both schemes hold a 36 % / 51 %
  write-throughput lead over ADOC;
* Eager rollback reads faster than lazy (more of the data lives in
  Main-LSM where point reads are cheap).
"""

from __future__ import annotations

from ..report import kops, shape_check, table
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "write_lead_over_adoc": {"B": 0.36, "C": 0.51},
    "note": "lazy >= eager on A; eager reads faster on B/C",
}

N_THREADS = 4


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = []
    for wl in ("A", "B", "C"):
        specs.append(RunSpec("rocksdb", wl, N_THREADS, slowdown=True,
                             label=f"RocksDB/{wl}"))
        specs.append(RunSpec("adoc", wl, N_THREADS, slowdown=True,
                             label=f"ADOC/{wl}"))
        specs.append(RunSpec("kvaccel", wl, N_THREADS, rollback="lazy",
                             label=f"KVAccel-L/{wl}"))
        specs.append(RunSpec("kvaccel", wl, N_THREADS, rollback="eager",
                             label=f"KVAccel-E/{wl}"))
    results = run_cells(specs, profile, options)

    rows = []
    for wl in ("A", "B", "C"):
        for sysname in ("RocksDB", "ADOC", "KVAccel-L", "KVAccel-E"):
            r = results[f"{sysname}/{wl}"]
            rows.append([
                wl, sysname,
                kops(r.write_throughput_ops),
                kops(r.read_throughput_ops) if wl != "A" else "-",
                r.extra.get("rollbacks", "-"),
            ])

    check = shape_check("Fig 13: rollback scheme vs workload type")
    a_lazy = results["KVAccel-L/A"]
    a_eager = results["KVAccel-E/A"]
    check.expect_order("A: lazy rollback >= eager for write-only",
                       a_lazy.write_throughput_ops,
                       a_eager.write_throughput_ops, slack=0.9)
    measured_leads = {}
    for wl in ("B", "C"):
        adoc = results[f"ADOC/{wl}"]
        lazy = results[f"KVAccel-L/{wl}"]
        eager = results[f"KVAccel-E/{wl}"]
        lead = min(lazy.write_throughput_ops, eager.write_throughput_ops) \
            / max(1.0, adoc.write_throughput_ops) - 1
        measured_leads[wl] = lead
        check.expect(
            f"{wl}: both KVACCEL schemes lead ADOC on writes "
            f"(paper +{PAPER['write_lead_over_adoc'][wl]*100:.0f}%)",
            lead > 0, f"{lead*100:+.0f}%")
        check.expect_order(
            f"{wl}: eager rollback reads at least as fast as lazy",
            eager.read_throughput_ops, lazy.read_throughput_ops, slack=0.85)
    check.expect("eager rollback actually rolled back on B",
                 results["KVAccel-E/B"].extra.get("rollbacks", 0) > 0)

    print(table(["workload", "system", "write Kops/s", "read Kops/s",
                 "rollbacks"],
                rows, title="Figure 13 — rollback schemes (4 threads)"))
    print(f"measured write leads over ADOC: "
          f"B {measured_leads['B']*100:+.0f}% (paper +36%), "
          f"C {measured_leads['C']*100:+.0f}% (paper +51%)")
    print(check.render())
    return {"results": results, "paper": PAPER, "leads": measured_leads,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
