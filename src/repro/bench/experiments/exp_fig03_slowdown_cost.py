"""Figure 3 — the cost of the slowdown mechanism.

Paper results (600 s fillrandom):

* overall throughput dropped 34 % (RocksDB) and 47 % (ADOC) when the
  slowdown is enabled;
* P99 latency elongated by 48 % (RocksDB) and 28 % (ADOC);
* 258 (RocksDB) and 433 (ADOC) slowdown instances were observed.
"""

from __future__ import annotations

from ..report import fmt, kops, shape_check, table
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "throughput_drop": {"RocksDB": 0.34, "ADOC": 0.47},
    "p99_increase": {"RocksDB": 0.48, "ADOC": 0.28},
    "slowdown_events": {"RocksDB": 258, "ADOC": 433},
}


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=False),
        RunSpec("rocksdb", "A", 1, slowdown=True),
        RunSpec("adoc", "A", 1, slowdown=False),
        RunSpec("adoc", "A", 1, slowdown=True),
    ]
    results = run_cells(specs, profile, options)

    rows = []
    measured = {}
    for system, wo_label, w_label in [
            ("RocksDB", "RocksDB(1) w/o slowdown", "RocksDB(1)"),
            ("ADOC", "ADOC(1) w/o slowdown", "ADOC(1)")]:
        wo, w = results[wo_label], results[w_label]
        drop = 1 - w.write_throughput_ops / wo.write_throughput_ops
        p99_up = (w.write_p99_us / wo.write_p99_us - 1) if wo.write_p99_us else 0.0
        measured[system] = {
            "throughput_drop": drop,
            "p99_increase": p99_up,
            "slowdown_events": w.slowdown_events,
        }
        rows.append([
            system,
            kops(wo.write_throughput_ops), kops(w.write_throughput_ops),
            f"{drop * 100:.0f}% (paper {PAPER['throughput_drop'][system]*100:.0f}%)",
            f"{wo.write_p99_us:.0f}", f"{w.write_p99_us:.0f}",
            f"{p99_up * 100:+.0f}% (paper +{PAPER['p99_increase'][system]*100:.0f}%)",
            f"{w.slowdown_events} (paper {PAPER['slowdown_events'][system]})",
        ])

    check = shape_check("Fig 3: slowdown costs throughput and tail latency")
    check.expect("RocksDB: slowdown lowers overall throughput (paper -34%)",
                 measured["RocksDB"]["throughput_drop"] > 0,
                 f"drop={measured['RocksDB']['throughput_drop']:.2f}")
    # ADOC's tuner absorbs part of the penalty in the simulation; assert
    # the weaker direction that survives noise (paper observed -47%).
    check.expect("ADOC: slowdown does not raise throughput (paper -47%)",
                 measured["ADOC"]["throughput_drop"] > -0.10,
                 f"drop={measured['ADOC']['throughput_drop']:.2f}")
    # Section III-A's core point: even the state of the art "still falls
    # back to slowdowns as a last resort".  (The paper's relative counts —
    # ADOC 433 vs RocksDB 258 — depend on burst heights our tuner smooths;
    # we assert occurrence, not the ratio.)
    for system in ("RocksDB", "ADOC"):
        check.expect(f"{system}: slowdown instances observed "
                     f"(paper {PAPER['slowdown_events'][system]})",
                     measured[system]["slowdown_events"] > 0,
                     str(measured[system]["slowdown_events"]))

    print(table(
        ["system", "thr w/o", "thr w/", "drop", "p99 w/o (us)", "p99 w/ (us)",
         "p99 delta", "slowdowns"],
        rows, title="Figure 3 — slowdown cost (Kops/s)"))
    print(check.render())
    return {"results": results, "paper": PAPER, "measured": measured,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
