"""Table V — range-query throughput on workload D (seekrandom).

Paper (Seek + 1024 Next after a 20 GB fillrandom):

    RocksDB  302 Kops/s
    ADOC     351 Kops/s
    KVACCEL  100 Kops/s

KVACCEL supports range queries across both interfaces but is bound by the
Dev-LSM iterator: every device-side Next is an NVMe command plus an
uncached NAND page read (no read cache on the device — Section VI-C).
"""

from __future__ import annotations

from ..report import kops, shape_check, table
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {"RocksDB": 302_000, "ADOC": 351_000, "KVAccel": 100_000}


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "D", 4, slowdown=True),
        RunSpec("adoc", "D", 4, slowdown=True),
        RunSpec("kvaccel", "D", 4, rollback="disabled"),
    ]
    results = run_cells(specs, profile, options)

    rows = []
    thr = {}
    for label, paper_key in [("RocksDB(4)", "RocksDB"), ("ADOC(4)", "ADOC"),
                             ("KVAccel(4)", "KVAccel")]:
        r = results[label]
        thr[paper_key] = r.read_throughput_ops
        rows.append([paper_key, kops(r.read_throughput_ops),
                     f"{PAPER[paper_key]/1000:.0f}",
                     r.extra.get("seeks", "-"),
                     r.extra.get("entries_scanned", "-")])

    check = shape_check("Table V: KVACCEL's range queries trail the host LSMs")
    check.expect("all systems complete range queries",
                 all(v > 0 for v in thr.values()),
                 str({k: f"{v/1000:.0f}K" for k, v in thr.items()}))
    check.expect_order("RocksDB >> KVACCEL (paper 3.0x)",
                       thr["RocksDB"], thr["KVAccel"], slack=1.5)
    check.expect_order("ADOC >> KVACCEL (paper 3.5x)",
                       thr["ADOC"], thr["KVAccel"], slack=1.5)
    ratio = thr["RocksDB"] / max(1.0, thr["KVAccel"])
    check.expect("RocksDB/KVACCEL factor in the paper's ballpark (1.5x-12x)",
                 1.5 <= ratio <= 12.0, f"{ratio:.1f}x (paper 3.0x)")

    print(table(["system", "measured Kops/s", "paper Kops/s", "seeks",
                 "entries"],
                rows, title="Table V — range-query throughput (workload D)"))
    print(check.render())
    return {"results": results, "throughput": thr, "paper": PAPER,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
