"""Figure 5 — CDF of PCIe bandwidth utilisation during write stalls.

Paper (600 s, RocksDB w/o slowdown):

* 1 compaction thread: 30 % of stall seconds at zero usage, 49 % above 90 %;
* 4 compaction threads: 21 % at zero, 55 % above 90 %.

The shape to hold: a bimodal CDF (mass at zero and near peak), with more
threads shifting mass from idle toward busy.
"""

from __future__ import annotations

from ...metrics import analyze_stall_pcie, utilization_cdf
from ..report import fmt, shape_check, table
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "zero_fraction": {1: 0.30, 4: 0.21},
    "above_90_fraction": {1: 0.49, 4: 0.55},
}


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=False),
        RunSpec("rocksdb", "A", 4, slowdown=False),
    ]
    results = run_cells(specs, profile, options)

    stats = {}
    cdfs = {}
    rows = []
    for threads, label in [(1, "RocksDB(1) w/o slowdown"),
                           (4, "RocksDB(4) w/o slowdown")]:
        r = results[label]
        s = analyze_stall_pcie(
            r.pcie_times, r.pcie_series, r.stall_intervals,
            capacity=r.extra["device_peak_bw"] * r.extra["sample_period"],
            bucket=r.extra["sample_period"])
        stats[threads] = s
        cdfs[threads] = utilization_cdf(s.utilizations)
        rows.append([
            f"RocksDB({threads})",
            s.stall_buckets,
            f"{s.zero_fraction*100:.0f}% (paper {PAPER['zero_fraction'][threads]*100:.0f}%)",
            f"{s.above_90_fraction*100:.0f}% (paper {PAPER['above_90_fraction'][threads]*100:.0f}%)",
        ])

    check = shape_check("Fig 5: bimodal stall-period PCIe utilisation CDF")
    check.expect("1 thread: nonzero idle mass (paper 30%)",
                 stats[1].zero_fraction > 0.02,
                 f"{stats[1].zero_fraction:.2f}")
    for threads in (1, 4):
        check.expect(f"{threads} thread(s): large near-peak mass (paper "
                     f"{PAPER['above_90_fraction'][threads]*100:.0f}%)",
                     stats[threads].above_90_fraction > 0.05,
                     f"{stats[threads].above_90_fraction:.2f}")
    if stats[1].stall_buckets and stats[4].stall_buckets:
        check.expect(
            "more threads reduce the zero-traffic fraction (paper 30%->21%)",
            stats[4].zero_fraction <= stats[1].zero_fraction * 1.25,
            f"{stats[4].zero_fraction:.2f} vs {stats[1].zero_fraction:.2f}")

    print(table(["config", "stall buckets", "zero usage", ">90% usage"],
                rows, title="Figure 5 — PCIe utilisation during stalls"))
    print(check.render())
    return {"results": results, "stats": stats, "cdfs": cdfs,
            "paper": PAPER, "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
