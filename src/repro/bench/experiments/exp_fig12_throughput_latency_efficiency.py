"""Figure 12 — throughput, P99 latency, and efficiency on workload A.

Paper results (1 compaction thread unless noted):

* KVACCEL(1) throughput +37 % vs RocksDB(1), +17 % vs ADOC(1);
* KVACCEL(1) P99 −30 % vs RocksDB(1), −20 % vs ADOC(1);
* KVACCEL(1) ~ ADOC(4) in write throughput;
* KVACCEL(1) has the best efficiency (Eq. 1) of all nine configurations;
* KVACCEL's edge shrinks as compaction threads increase.

KVACCEL runs write-optimized for this workload: Dev-LSM compaction and
rollback disabled (Section VI-C).
"""

from __future__ import annotations

from ..report import fmt, kops, shape_check, table
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "kvaccel_vs_rocksdb_thr": +0.37,
    "kvaccel_vs_adoc_thr": +0.17,
    "kvaccel_vs_rocksdb_p99": -0.30,
    "kvaccel_vs_adoc_p99": -0.20,
    "note": "KVACCEL(1) ~= ADOC(4); KVACCEL(1) best efficiency",
}

THREADS = (1, 2, 4)


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = []
    for n in THREADS:
        specs.append(RunSpec("rocksdb", "A", n, slowdown=True))
        specs.append(RunSpec("adoc", "A", n, slowdown=True))
        specs.append(RunSpec("kvaccel", "A", n, rollback="disabled"))
    results = run_cells(specs, profile, options)

    def r(system, n):
        name = {"rocksdb": "RocksDB", "adoc": "ADOC", "kvaccel": "KVAccel"}
        return results[f"{name[system]}({n})"]

    rows = []
    for n in THREADS:
        for system in ("rocksdb", "adoc", "kvaccel"):
            res = r(system, n)
            rows.append([
                res.name, kops(res.write_throughput_ops),
                f"{res.write_p99_us:.0f}",
                f"{res.cpu_utilization*100:.1f}%",
                fmt(res.efficiency),
            ])

    kva1, rdb1, adoc1 = r("kvaccel", 1), r("rocksdb", 1), r("adoc", 1)
    measured = {
        "kvaccel_vs_rocksdb_thr":
            kva1.write_throughput_ops / rdb1.write_throughput_ops - 1,
        "kvaccel_vs_adoc_thr":
            kva1.write_throughput_ops / adoc1.write_throughput_ops - 1,
        "kvaccel_vs_rocksdb_p99":
            kva1.write_p99_us / rdb1.write_p99_us - 1 if rdb1.write_p99_us else 0,
        "kvaccel_vs_adoc_p99":
            kva1.write_p99_us / adoc1.write_p99_us - 1 if adoc1.write_p99_us else 0,
    }

    check = shape_check("Fig 12: KVACCEL wins throughput/P99/efficiency at 1 thread")
    check.expect_order("throughput: KVACCEL(1) > RocksDB(1)",
                       kva1.write_throughput_ops, rdb1.write_throughput_ops,
                       slack=1.05)
    check.expect_order("throughput: KVACCEL(1) > ADOC(1)",
                       kva1.write_throughput_ops, adoc1.write_throughput_ops,
                       slack=1.0)
    check.expect("P99: KVACCEL(1) < RocksDB(1)",
                 kva1.write_p99_us < rdb1.write_p99_us,
                 f"{kva1.write_p99_us:.0f} vs {rdb1.write_p99_us:.0f}")
    check.expect("P99: KVACCEL(1) < ADOC(1)",
                 kva1.write_p99_us < adoc1.write_p99_us,
                 f"{kva1.write_p99_us:.0f} vs {adoc1.write_p99_us:.0f}")
    check.expect("efficiency: KVACCEL(1) best of all nine configs",
                 all(kva1.efficiency >= res.efficiency * 0.99
                     for res in results.values()),
                 fmt(kva1.efficiency))
    adoc4 = r("adoc", 4)
    check.expect(
        "KVACCEL(1) comparable to (or above) ADOC(4)",
        kva1.write_throughput_ops >= adoc4.write_throughput_ops * 0.8,
        f"{kops(kva1.write_throughput_ops)} vs {kops(adoc4.write_throughput_ops)}")
    kva4 = r("kvaccel", 4)
    check.expect(
        "more threads diminish KVACCEL's relative edge",
        (kva4.write_throughput_ops / max(1.0, r('rocksdb', 4).write_throughput_ops))
        <= (kva1.write_throughput_ops / max(1.0, rdb1.write_throughput_ops)) * 1.1,
        "edge(4) <= edge(1)")

    print(table(["config", "thr (Kops/s)", "P99 (us)", "CPU", "efficiency"],
                rows, title="Figure 12 — workload A, all configurations"))
    print(f"measured deltas at 1 thread: "
          f"thr vs RocksDB {measured['kvaccel_vs_rocksdb_thr']*100:+.0f}% "
          f"(paper {PAPER['kvaccel_vs_rocksdb_thr']*100:+.0f}%), "
          f"vs ADOC {measured['kvaccel_vs_adoc_thr']*100:+.0f}% "
          f"(paper {PAPER['kvaccel_vs_adoc_thr']*100:+.0f}%); "
          f"P99 vs RocksDB {measured['kvaccel_vs_rocksdb_p99']*100:+.0f}% "
          f"(paper {PAPER['kvaccel_vs_rocksdb_p99']*100:+.0f}%), "
          f"vs ADOC {measured['kvaccel_vs_adoc_p99']*100:+.0f}% "
          f"(paper {PAPER['kvaccel_vs_adoc_p99']*100:+.0f}%)")
    print(check.render())
    return {"results": results, "measured": measured, "paper": PAPER,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
