"""Failover — acked-write-loss oracle sweep over primary crash points.

Robustness battery for the replica-group layer (``repro.cluster.replica``):
every shard a primary + backup, a scripted client workload, and a
shard-scoped CRASH armed at the Nth hit of a real fault site on the
target shard's write path.  The failure detector notices the dead
primary, promotes the backup after catch-up, and the scenario verifies
every *acknowledged* write through the facade.

The sweep runs **both** replication modes (``replay`` WAL streaming and
``index-ship`` bulk installs) across a range of crash points, plus one
live-resharding composition (router seed bump mid-run while a primary
dies).  Shape checks:

* zero acked writes lost or stale at *every* crash point, both modes —
  the issue's acceptance criterion;
* every crashed run performed a real promotion (the oracle is not
  passing vacuously);
* crash-free negative control: no failover fires when nothing dies;
* the failover + reshard composition moves keys and still loses nothing.
"""

from __future__ import annotations

import json

from ...cluster import (
    INDEX_SHIP,
    REPLAY,
    chaos_seed,
    failover_sweep,
    run_failover_scenario,
)
from ..report import fmt, shape_check, table
from .common import resolve_profile


def _row(r) -> list:
    return [
        r.mode,
        f"{r.kill_site}#{r.kill_occurrence}" if r.kill_site else "scripted",
        "ok" if r.ok else "FAIL",
        r.acked,
        len(r.lost),
        len(r.stale),
        r.failovers,
        fmt(r.failover_duration * 1e3, 2),
        r.catchup_records,
        r.moved_keys if r.rebalanced else "-",
    ]


def run(profile=None, quick: bool = False, options=None,
        out=None) -> dict:  # options unused: single-env scenarios
    profile = resolve_profile(profile, quick)
    occurrences = range(1, 5) if quick else range(1, 9)
    ops = 40 if quick else 80
    seed = chaos_seed()

    reports = []
    for mode in (REPLAY, INDEX_SHIP):
        reports += failover_sweep(mode, occurrences=occurrences,
                                  seed=seed, ops=ops)
    # Composition: primary dies while a live reshard migrates keys.
    for mode in (REPLAY, INDEX_SHIP):
        reports.append(run_failover_scenario(
            mode, ops=ops, kill_occurrence=3,
            reshard_at_op=ops // 4, seed=seed))
    # Negative control: crash-free run must not promote.
    control = run_failover_scenario(REPLAY, ops=ops, kill_site=None,
                                    seed=seed)
    reports.append(control)

    check = shape_check("Failover: zero acked-write loss across crash sweep")
    crashed = [r for r in reports if r.crashed]
    check.expect(
        "zero lost/stale acked writes at every crash point, both modes",
        all(not r.lost and not r.stale and r.error is None
            for r in reports),
        "; ".join(r.describe() for r in reports if not r.ok) or "all clean")
    check.expect(
        f"every crashed run promoted a backup ({len(crashed)} crashes)",
        len(crashed) >= 2 * len(occurrences)
        and all(r.failovers >= 1 for r in crashed),
        f"failovers {[r.failovers for r in crashed]}")
    resharded = [r for r in reports if r.rebalanced]
    check.expect(
        "failover + live reshard composes (keys moved, nothing lost)",
        all(r.ok and r.moved_keys > 0 for r in resharded),
        f"moved {[r.moved_keys for r in resharded]}")
    check.expect(
        "negative control: no failover without a crash",
        control.ok and not control.crashed and control.failovers == 0,
        control.describe())

    print(table(
        ["mode", "kill", "status", "acked", "lost", "stale",
         "failovers", "promo (ms)", "catchup", "moved"],
        [_row(r) for r in reports],
        title=f"Failover — crash-point sweep (seed={seed:#x})"))
    print(check.render())

    doc = {
        "experiment": "failover",
        "profile": profile.name,
        "seed": seed,
        "runs": [
            {"mode": r.mode, "kill_site": r.kill_site,
             "kill_occurrence": r.kill_occurrence,
             "killed_shard": r.killed_shard, "crashed": r.crashed,
             "acked": r.acked, "aborted": r.aborted,
             "lost": len(r.lost), "stale": len(r.stale),
             "failovers": r.failovers,
             "failover_duration": r.failover_duration,
             "catchup_records": r.catchup_records,
             "rebalanced": r.rebalanced, "moved_keys": r.moved_keys,
             "sim_time": r.sim_time, "ok": r.ok, "error": r.error}
            for r in reports
        ],
        "checks_passed": check.passed,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"failover report written to {out}")

    return {"reports": reports, "report": doc, "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
