"""Figure 2 — per-second throughput of RocksDB and ADOC, with and without
the write slowdown.

Paper result: without slowdown, throughput periodically collapses to zero
(write stalls); with slowdown the zeros disappear and a low-but-nonzero
floor (~2 Kops/s) appears instead, at the cost of lower bursts.
"""

from __future__ import annotations

from typing import Optional

from ..report import series_sparkline, shape_check
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {
    "floor_kops": 2.0,        # "consistent service at up to 2 Kops/s"
    "note": "w/o slowdown: dips to 0; w/ slowdown: no zeros, stable floor",
}


def _zero_buckets(result) -> int:
    """Count near-zero throughput buckets after warmup (first 10%)."""
    vals = result.write_ops_series
    warm = len(vals) // 10
    period = result.extra["sample_period"]
    # "zero" = under 200 ops/s equivalent
    return sum(1 for v in vals[warm:] if v / period < 200.0)


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=False),
        RunSpec("adoc", "A", 1, slowdown=False),
        RunSpec("rocksdb", "A", 1, slowdown=True),
        RunSpec("adoc", "A", 1, slowdown=True),
    ]
    results = run_cells(specs, profile, options)

    check = shape_check("Fig 2: slowdown removes zero-throughput stalls")
    for system in ("RocksDB(1)", "ADOC(1)"):
        wo = results[f"{system} w/o slowdown"]
        w = results[system]
        check.expect(
            f"{system}: stalls occur without slowdown",
            wo.stall_events > 0 or _zero_buckets(wo) > 0,
            f"stall_events={wo.stall_events}, zero_buckets={_zero_buckets(wo)}")
        check.expect_order(
            f"{system}: slowdown reduces hard-stall time",
            wo.total_stall_time, w.total_stall_time, slack=1.0)
        check.expect(
            f"{system}: slowdown events appear only with slowdown on",
            w.slowdown_events > 0 and wo.slowdown_events == 0,
            f"w={w.slowdown_events}, wo={wo.slowdown_events}")

    lines = ["Figure 2 — per-second write throughput (sparkline = full run)"]
    for label, r in results.items():
        per_s = [v / r.extra["sample_period"] / 1000 for v in r.write_ops_series]
        lines.append(series_sparkline(per_s, label=f"  {label:26s} "))
        lines.append(
            f"    avg={r.write_throughput_ops/1000:.1f} Kops/s, "
            f"stall_time={r.total_stall_time:.2f}s, "
            f"delayed_time={r.total_delayed_time:.2f}s, "
            f"zero_buckets={_zero_buckets(r)}")
    lines.append(f"paper: {PAPER['note']}")
    lines.append(check.render())
    print("\n".join(lines))

    return {"results": results, "paper": PAPER, "check": check,
            "zero_buckets": {k: _zero_buckets(v) for k, v in results.items()}}


if __name__ == "__main__":
    run()["check"].assert_all()
