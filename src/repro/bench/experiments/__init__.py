"""One module per paper table/figure (plus ablations).

Each module exposes ``run(profile=None, quick=False) -> dict`` returning
the measured rows/series, the paper's reference numbers, and a
:class:`~repro.bench.report.ShapeCheck` verdict, and prints a
terminal-friendly report.  The pytest-benchmark files under ``benchmarks/``
are thin wrappers over these.
"""

from . import (
    exp_cluster_scaling,
    exp_failover,
    exp_fig02_slowdown_timeseries,
    exp_fig03_slowdown_cost,
    exp_fig04_pcie_timeseries,
    exp_fig05_pcie_cdf,
    exp_fig11_kvaccel_timeseries,
    exp_fig12_throughput_latency_efficiency,
    exp_fig13_rollback_schemes,
    exp_fig14_pcie_kvaccel,
    exp_sec6d_recovery,
    exp_tab05_range_query,
    exp_tab06_overheads,
)

ALL = {
    "cluster": exp_cluster_scaling,
    "failover": exp_failover,
    "fig02": exp_fig02_slowdown_timeseries,
    "fig03": exp_fig03_slowdown_cost,
    "fig04": exp_fig04_pcie_timeseries,
    "fig05": exp_fig05_pcie_cdf,
    "fig11": exp_fig11_kvaccel_timeseries,
    "fig12": exp_fig12_throughput_latency_efficiency,
    "fig13": exp_fig13_rollback_schemes,
    "fig14": exp_fig14_pcie_kvaccel,
    "tab05": exp_tab05_range_query,
    "tab06": exp_tab06_overheads,
    "sec6d": exp_sec6d_recovery,
}

__all__ = ["ALL"]
