"""Figure 14 — PCIe usage, KVACCEL(1) vs RocksDB(1), log scale.

Paper: KVACCEL achieved a 45 % reduction in zero-traffic intervals during
write-stall periods compared to RocksDB — the dual interface keeps the
link busy through the windows where RocksDB leaves it idle.
"""

from __future__ import annotations

from ...metrics import zero_traffic_buckets
from ..report import series_sparkline, shape_check
from ..runner import RunSpec
from .common import resolve_profile, run_cells

PAPER = {"zero_interval_reduction": 0.45}


def _zero_fraction_overall(result) -> float:
    """Fraction of all buckets (post-warmup) with near-zero PCIe traffic."""
    vals = result.pcie_series
    warm = len(vals) // 10
    tail = vals[warm:]
    if not tail:
        return 0.0
    return sum(1 for v in tail if v <= 1024.0) / len(tail)


def run(profile=None, quick: bool = False,
        options=None) -> dict:
    profile = resolve_profile(profile, quick)
    specs = [
        RunSpec("rocksdb", "A", 1, slowdown=False),
        RunSpec("kvaccel", "A", 1, rollback="disabled"),
    ]
    results = run_cells(specs, profile, options)
    rdb = results["RocksDB(1) w/o slowdown"]
    kva = results["KVAccel(1)"]

    # During-stall zero buckets for RocksDB; KVACCEL rarely hard-stalls, so
    # compare overall link-idle fractions as well.
    rdb_zero_stall = zero_traffic_buckets(
        rdb.pcie_times, rdb.pcie_series, rdb.stall_intervals,
        bucket=rdb.extra["sample_period"])
    zero_frac = {"RocksDB(1)": _zero_fraction_overall(rdb),
                 "KVAccel(1)": _zero_fraction_overall(kva)}
    reduction = (1 - zero_frac["KVAccel(1)"] / zero_frac["RocksDB(1)"]
                 if zero_frac["RocksDB(1)"] > 0 else 0.0)

    check = shape_check("Fig 14: KVACCEL keeps the PCIe link busier")
    check.expect("RocksDB leaves zero-traffic intervals during stalls",
                 rdb_zero_stall > 0, str(rdb_zero_stall))
    check.expect(
        f"KVACCEL reduces zero-traffic intervals (paper -45%)",
        reduction > 0.10, f"{reduction*100:+.0f}%")

    lines = ["Figure 14 — PCIe traffic (MB/s, sparkline = full run)"]
    for label, r in [("RocksDB(1)", rdb), ("KVAccel(1)", kva)]:
        period = r.extra["sample_period"]
        mbps = [v / period / (1 << 20) for v in r.pcie_series]
        lines.append(series_sparkline(mbps, label=f"  {label:12s} "))
        lines.append(f"    zero-traffic buckets: {zero_frac[label]*100:.0f}% "
                     f"of run")
    lines.append(f"measured zero-interval reduction: {reduction*100:+.0f}% "
                 f"(paper -45%)")
    lines.append(check.render())
    print("\n".join(lines))
    return {"results": results, "zero_frac": zero_frac,
            "reduction": reduction, "paper": PAPER, "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
