"""Cluster — shard-count scaling sweep on workload A (ROADMAP item 1).

Runs ``Cluster(n)`` for each requested shard count (every shard a full
KVACCEL stack behind the deterministic hash router) plus a single-instance
``KVAccel(1)`` reference cell, fanning cells out over the parallel cell
runner like any other experiment.  The report gives, per shard count:
fleet write throughput, aggregate and per-shard p50/p99/p999 write
latency, per-shard write-amplification spread (the VAT cost-model lens:
a tight WA band is what makes the scaling curve interpretable), hot-shard
and degraded-shard indicators.

Shape checks:

* the 1-shard cluster's simulated trajectory is *identical* to the
  single-instance reference cell — the facade is a zero-cost wrapper
  (the strict pinned-golden form of this check lives in
  ``tests/cluster/test_cluster_golden.py``);
* fleet throughput scales up with shard count (with generous slack —
  mini profiles are noisy);
* the hash router keeps shards balanced (no hot shard on a uniform
  workload; per-shard op spread within 2x).
"""

from __future__ import annotations

import dataclasses
import json

from ..report import kops, shape_check, table
from ..runner import RunOptions, RunSpec
from .common import resolve_profile, run_cells

# Trajectory fields compared for the 1-shard identity check: everything a
# RunResult serializes except the display name and, when telemetry is on,
# the hub export (the cluster facade registers extra cluster.* channels,
# which is a *telemetry* difference, not a trajectory one).
_IDENTITY_EXCLUDE = {"name", "telemetry", "health_events"}

DEFAULT_SHARDS = (1, 2, 4, 8)


def _percentiles(summary) -> str:
    if not summary:
        return "-"
    return (f"{summary['p50']:.0f}/{summary['p99']:.0f}/"
            f"{summary['p99.9']:.0f}")


def run(profile=None, quick: bool = False, options=None,
        shards=DEFAULT_SHARDS, out=None) -> dict:
    profile = resolve_profile(profile, quick)
    shards = tuple(sorted(set(int(n) for n in shards)))
    if not shards or shards[0] < 1:
        raise ValueError("shards must be positive integers")
    if out and not (options and options.telemetry):
        # The written artifact carries per-shard cluster.* telemetry
        # series; make sure cells actually run a hub.
        options = dataclasses.replace(options or RunOptions(),
                                      telemetry=True)

    specs = [RunSpec("kvaccel", "A", 1, rollback="disabled",
                     label="KVAccel(1) ref")]
    specs += [RunSpec("cluster", "A", 1, rollback="disabled", shards=n)
              for n in shards]
    results = run_cells(specs, profile, options)
    ref = results["KVAccel(1) ref"]

    rows = []
    scaling = []
    for n in shards:
        res = results[f"Cluster({n})"]
        rep = res.extra["cluster"]
        shard_p99s = [row["write_latency"]["p99"]
                      for row in rep["per_shard"] if row["write_latency"]]
        wa = rep["write_amplification"]
        rows.append([
            res.name,
            kops(res.write_throughput_ops),
            _percentiles(rep["aggregate_write_latency"]),
            (f"{min(shard_p99s):.0f}..{max(shard_p99s):.0f}"
             if shard_p99s else "-"),
            f"{wa['min']:.2f}..{wa['max']:.2f}",
            str(rep["hot_shard"]),
            str(rep["degraded_shards"]),
        ])
        scaling.append({
            "shards": n,
            "write_throughput_ops": res.write_throughput_ops,
            "aggregate_write_latency": rep["aggregate_write_latency"],
            "aggregate_read_latency": rep["aggregate_read_latency"],
            "per_shard": rep["per_shard"],
            "write_amplification": wa,
            "hot_shard": rep["hot_shard"],
            "degraded_shards": rep["degraded_shards"],
            "telemetry": res.telemetry,
        })

    check = shape_check("Cluster: zero-cost facade + shard-count scaling")
    if 1 in shards:
        one = results["Cluster(1)"]
        ref_doc, one_doc = ref.to_json(), one.to_json()
        diverged = [f for f in ref_doc
                    if f not in _IDENTITY_EXCLUDE
                    and ref_doc[f] != one_doc.get(f)]
        check.expect("Cluster(1) trajectory identical to KVAccel(1)",
                     not diverged, f"diverged fields: {diverged or 'none'}")
    first, last = scaling[0], scaling[-1]
    if last["shards"] > first["shards"]:
        check.expect_order(
            f"throughput: Cluster({last['shards']}) > "
            f"Cluster({first['shards']})",
            last["write_throughput_ops"], first["write_throughput_ops"],
            slack=1.0)
    for row in scaling:
        if row["shards"] >= 2:
            ops = [s["write_ops"] for s in row["per_shard"]]
            check.expect(
                f"hash router balances {row['shards']} shards",
                max(ops) <= 2 * max(1, min(ops)) and row["hot_shard"] == -1,
                f"per-shard ops {ops}")
    check.expect("no shard degraded on a fault-free sweep",
                 all(row["degraded_shards"] == 0 for row in scaling),
                 "degraded counts "
                 f"{[row['degraded_shards'] for row in scaling]}")

    print(table(
        ["config", "thr (Kops/s)", "agg p50/p99/p999 (us)",
         "shard p99 spread", "WA spread", "hot", "degraded"],
        rows, title="Cluster — workload A shard-count scaling"))
    print(f"reference: {ref.name} {kops(ref.write_throughput_ops)} Kops/s")
    print(check.render())

    doc = {
        "experiment": "cluster",
        "profile": profile.name,
        "workload": "A",
        "router": "hash",
        "reference_throughput_ops": ref.write_throughput_ops,
        "scaling": [
            {k: v for k, v in row.items()
             if k != "telemetry" or v is not None}
            for row in scaling
        ],
        "checks_passed": check.passed,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"cluster scaling report written to {out}")

    return {"results": results, "scaling": scaling, "report": doc,
            "check": check}


if __name__ == "__main__":
    run()["check"].assert_all()
