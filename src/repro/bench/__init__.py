"""Experiment harness: profiles, runner, reporting, per-figure experiments."""

from .profiles import ExperimentProfile, active_profile, mini_profile, paper_profile
from .report import ShapeCheck, series_sparkline, shape_check, table
from .runner import RunSpec, build_system, run_workload

__all__ = [
    "ExperimentProfile",
    "active_profile",
    "mini_profile",
    "paper_profile",
    "ShapeCheck",
    "series_sparkline",
    "shape_check",
    "table",
    "RunSpec",
    "build_system",
    "run_workload",
]
