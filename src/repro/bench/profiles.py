"""Experiment profiles: paper-scale constants and the scaled `mini` profile.

The paper's runs are 600 s against a 630 MB/s device with a 128 MB
memtable — ~10^8 operations, far beyond what a Python DES should step
through.  All stall dynamics are *ratio* phenomena (ingest vs flush vs
compaction vs device bandwidth), so shrinking every capacity by a factor S
while keeping all rates (bandwidths, CPU costs) fixed contracts the entire
timeline by S without changing any of the shapes: the same number of stall
cycles, slowdown episodes and compaction waves happen in 600/S seconds.

The ``mini`` profile uses S = 64: 9.375 s horizon, 2 MB memtable, 1-second
PCM buckets become 15.625 ms buckets.  Throughput (ops/s) and CPU% remain
directly comparable with the paper because rates were never scaled.

``paper`` carries the unscaled constants for documentation and for anyone
patient enough to run it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core import DetectorConfig
from ..device import DevLsmConfig, HybridSsdConfig, KvDeviceConfig, MiB, NandGeometry
from ..lsm import LsmOptions
from ..resil import ResilienceConfig

__all__ = ["ExperimentProfile", "paper_profile", "paper_smoke_profile",
           "mini_profile", "active_profile", "get_profile"]


@dataclass
class ExperimentProfile:
    """Everything a runner needs to instantiate one experiment."""

    name: str
    scale: float                     # capacity scale factor (1 = paper)
    duration: float                  # workload horizon (sim seconds)
    sample_period: float             # PCM / throughput bucket (sim seconds)
    options: LsmOptions              # host LSM options (scaled)
    ssd: HybridSsdConfig
    detector: DetectorConfig
    rollback_period: float
    rollback_quiet_window: float
    adoc_interval: float
    key_space: int
    value_size: int = 4096
    key_size: int = 4
    batch_size: int = 32
    # Driver-side event amortisation: how many logical op groups a driver
    # issues per scheduled wakeup (1 = one group commit / one read per
    # event, the reference trajectory; >1 trades per-second attribution
    # resolution for fewer kernel events — see MODEL.md).
    driver_batch: int = 1
    device_peak_bw: float = 630 * MiB
    host_cores: int = 8              # Table II: usage limited to 8 cores
    page_cache_bytes: int = 32 * 1024 * MiB   # host RAM share for page cache
    seekrandom_fill_bytes: int = 0
    seekrandom_nexts: int = 1024
    # None (the default, and what every figure profile uses) leaves the
    # resilience stack out entirely — retries, degradation tracking and
    # NAND error modelling all stay off the hot path, so trajectories
    # match the pinned goldens bit-for-bit.
    resilience: Optional[ResilienceConfig] = None

    def with_options(self, **changes) -> "ExperimentProfile":
        """Copy with LsmOptions fields replaced (threads, slowdown...)."""
        import copy
        opts = copy.deepcopy(self.options)
        for k, v in changes.items():
            if not hasattr(opts, k):
                raise AttributeError(f"LsmOptions has no field {k!r}")
            setattr(opts, k, v)
        return replace(self, options=opts)


def _paper_options() -> LsmOptions:
    """Table III + RocksDB v8.3 defaults for everything unstated."""
    return LsmOptions(
        write_buffer_size=128 * MiB,           # Table III
        max_write_buffer_number=2,
        level0_file_num_compaction_trigger=4,
        level0_slowdown_writes_trigger=20,
        level0_stop_writes_trigger=36,
        max_bytes_for_level_base=256 * MiB,
        max_bytes_for_level_multiplier=10,
        target_file_size_base=64 * MiB,
        soft_pending_compaction_bytes_limit=64 * 1024 * MiB,
        hard_pending_compaction_bytes_limit=256 * 1024 * MiB,
        slowdown_enabled=True,
        delayed_write_rate=16 * MiB,           # RocksDB default; adaptive
        # floor = rate/2 = 8 MiB/s ~ 2 Kops/s at 4 KB values (Fig 2's floor)
        max_background_compactions=1,
        max_background_flushes=1,
    )


def paper_profile() -> ExperimentProfile:
    """Unscaled constants of Section VI-A (documentation / heroic runs)."""
    geometry = NandGeometry(blocks_per_way=8192)   # ~1 TB like the Cosmos+
    return ExperimentProfile(
        name="paper",
        scale=1.0,
        duration=600.0,
        sample_period=1.0,
        options=_paper_options(),
        ssd=HybridSsdConfig(geometry=geometry,
                            peak_nand_bandwidth=630 * MiB),
        detector=DetectorConfig(period=0.1),
        rollback_period=0.1,
        rollback_quiet_window=1.0,
        adoc_interval=1.0,
        key_space=1 << 25,
        seekrandom_fill_bytes=20 * 1024 * MiB,
        page_cache_bytes=32 * 1024 * MiB,
    )


def mini_profile(scale: int = 64) -> ExperimentProfile:
    """The default benchmarking profile: capacities / durations ÷ scale."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    s = 1.0 / scale
    opts = _paper_options().scaled(s)
    # Batching artifacts are rates, not capacities: keep them paper-sized.
    opts.wal_group_commit_bytes = 256 * 1024
    opts.compaction_io_chunk = 2 * MiB
    opts.compaction_readahead = 2 * MiB

    # ~16 GiB device at scale 64 (1 TB / 64), full channel parallelism.
    # Fixed per-op NAND latencies scale down with the capacities: I/O sizes
    # shrank by S, so unscaled latencies would over-tax small transfers.
    from ..device import NandTiming
    timing = NandTiming(t_read=90e-6 * s, t_program=700e-6 * s,
                        t_erase=5e-3 * s)
    geometry = NandGeometry(blocks_per_way=max(8, 8192 // scale),
                            timing=timing)
    bucket = 1.0 / scale
    ssd = HybridSsdConfig(
        geometry=geometry,
        peak_nand_bandwidth=630 * MiB,
        ledger_bucket=bucket,
        devlsm=DevLsmConfig(memtable_bytes=max(64 * 1024, int(16 * MiB * s))),
        kv=KvDeviceConfig(),
    )
    return ExperimentProfile(
        name=f"mini{scale}",
        scale=s,
        duration=600.0 / scale,
        sample_period=bucket,
        options=opts,
        ssd=ssd,
        detector=DetectorConfig(period=0.1 / scale),
        rollback_period=0.1 / scale,
        rollback_quiet_window=1.0 / scale,
        adoc_interval=1.0 / scale,
        key_space=1 << 22,
        seekrandom_fill_bytes=int(20 * 1024 * MiB * s),
        page_cache_bytes=int(32 * 1024 * MiB * s),
    )


def paper_smoke_profile() -> ExperimentProfile:
    """A truncated slice of the *unscaled* paper profile.

    Same 1 TB geometry, paper RocksDB options and detector periods as
    :func:`paper_profile` — only the horizon is cut to ~10^6 driver
    operations (≈40 s at the paper's steady-state fillrandom throughput)
    and the seekrandom preload is shrunk so workload E smoke runs do not
    spend minutes filling 20 GB.  CI's perf job runs this to catch
    regressions that only show at paper-sized capacities (big memtables,
    deep queues, paper NAND latencies) without paying for a 600 s cell.
    Shape checks are tuned for the full horizon (stall dynamics need
    minutes of compaction debt to develop), so a truncated slice is a
    perf/smoke vehicle, not a figure-reproduction profile.
    """
    p = paper_profile()
    p.name = "paper-smoke"
    p.duration = 40.0
    p.seekrandom_fill_bytes = 512 * MiB
    return p


def get_profile(spec: str) -> ExperimentProfile:
    """Resolve a profile by name: ``paper``, ``paper-smoke``, ``mini``
    or ``mini<N>``."""
    if spec == "paper":
        return paper_profile()
    if spec == "paper-smoke":
        return paper_smoke_profile()
    if spec == "mini":
        return mini_profile(64)
    if spec.startswith("mini"):
        return mini_profile(int(spec[4:]))
    raise ValueError(f"unknown profile {spec!r}")


def active_profile() -> ExperimentProfile:
    """Profile selected by the REPRO_PROFILE env var.

    * unset / ``mini``      -> mini_profile(64)  (default)
    * ``mini<N>``           -> mini_profile(N), e.g. mini128 for quicker runs
    * ``paper``             -> paper_profile()
    """
    return get_profile(os.environ.get("REPRO_PROFILE", "mini"))
