"""Deterministic sim-clock retry/backoff around device command issue.

A :class:`RetryExecutor` wraps a command generator (a `kv_dev`/`block_dev`
verb body) and re-issues it on *retryable* :class:`DeviceError`s —
transient errors and command timeouts — with exponential backoff plus
jitter.  Everything is driven by the simulation:

* backoff sleeps are ``env.timeout`` events, never wall clock;
* jitter comes from a private ``random.Random`` seeded from the fault
  seed (``REPRO_FAULT_SEED`` / registry seed), so the full retry
  schedule is bit-deterministic for a given seed;
* the optional per-attempt command timeout races the in-flight command
  process against an ``env.timeout`` via ``AnyOf`` and cancels the loser
  with ``Process.interrupt`` — the interaction the DES kernel's
  interrupt fast paths must survive (covered by tests/resil).

Retried commands are re-executed whole (at-least-once semantics); the
device verbs are idempotent under same-sequence-number replay, which is
what makes this safe.

Non-retryable errors (persistent / media), exhausted attempts, and
blown deadlines surface as the classifying :class:`DeviceError` for the
degradation state machine upstream.  Exceptions that are neither
DeviceErrors nor injected faults — i.e. real bugs — propagate untouched:
retrying those would mask them.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..sim import Environment, Interrupt
from .errors import DeviceError, TIMEOUT, as_device_error

__all__ = ["RetryPolicy", "RetryStats", "RetryExecutor", "backoff_schedule"]


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the retry schedule.

    Delays are simulated seconds.  ``deadline`` bounds the whole call
    (first attempt through last retry) relative to when it started;
    ``command_timeout`` bounds each individual attempt.  Either may be
    None (unbounded).
    """

    max_attempts: int = 4
    base_delay: float = 1e-4
    max_delay: float = 1e-2
    multiplier: float = 2.0
    jitter: float = 0.5          # fraction of the nominal delay, +/-
    deadline: Optional[float] = None
    command_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        for name in ("deadline", "command_timeout"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive or None")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before the retry following failed attempt ``attempt``
        (1-based).  Exponential with a +/- ``jitter`` fraction drawn from
        ``rng`` — exactly one ``rng.random()`` per call, which is what
        makes the schedule reproducible from the seed alone."""
        nominal = min(self.max_delay,
                      self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0:
            return nominal
        span = nominal * self.jitter
        return nominal - span + 2.0 * span * rng.random()


def backoff_schedule(policy: RetryPolicy, seed: int,
                     n: Optional[int] = None) -> list[float]:
    """The full backoff schedule a fresh executor with ``seed`` would
    produce — the reference the determinism property tests pin against."""
    rng = random.Random(_derive(seed, "retry"))
    count = policy.max_attempts - 1 if n is None else n
    return [policy.backoff(a, rng) for a in range(1, count + 1)]


@dataclass
class RetryStats:
    """Counters across every call routed through one executor."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    errors: int = 0              # DeviceErrors observed (any kind)
    exhausted: int = 0           # gave up: attempt budget
    deadline_exceeded: int = 0   # gave up: deadline
    nonretryable: int = 0        # gave up: persistent/media
    by_kind: dict = field(default_factory=dict)

    def note(self, err: DeviceError) -> None:
        self.errors += 1
        self.by_kind[err.kind] = self.by_kind.get(err.kind, 0) + 1

    def as_dict(self) -> dict:
        return {
            "calls": self.calls, "attempts": self.attempts,
            "retries": self.retries, "timeouts": self.timeouts,
            "errors": self.errors, "exhausted": self.exhausted,
            "deadline_exceeded": self.deadline_exceeded,
            "nonretryable": self.nonretryable,
            "by_kind": dict(self.by_kind),
        }


def _derive(seed: int, name: str) -> str:
    """A stable per-executor RNG seed.  Strings seed ``random.Random``
    through SHA-512 (deterministic across processes, unlike ``hash``)."""
    return f"{seed}:{name}"


def _default_seed(env: Environment) -> int:
    reg = getattr(env, "faults", None)
    if reg is not None:
        return reg.seed
    from ..faults.registry import DEFAULT_SEED
    raw = os.environ.get("REPRO_FAULT_SEED")
    if raw:
        try:
            return int(raw, 0)
        except ValueError:
            pass
    return DEFAULT_SEED


class RetryExecutor:
    """Runs command generators under a :class:`RetryPolicy`.

    One executor per device facade (``ssd.kv.retry``, ``ssd.block.retry``)
    so their jitter streams are independent but individually seeded.
    """

    def __init__(self, env: Environment, policy: Optional[RetryPolicy] = None,
                 seed: Optional[int] = None, name: str = "retry"):
        self.env = env
        self.policy = policy or RetryPolicy()
        self.name = name
        self.seed = _default_seed(env) if seed is None else seed
        self.rng = random.Random(_derive(self.seed, name))
        self.stats = RetryStats()

    def __repr__(self) -> str:
        return (f"RetryExecutor({self.name}, seed={self.seed:#x}, "
                f"calls={self.stats.calls}, retries={self.stats.retries})")

    # -- the wrapper ---------------------------------------------------------
    def call(self, factory: Callable[[], Generator], site: str = "") -> Generator:
        """``yield from executor.call(lambda: self._put(...), "kv.put")``.

        ``factory`` must build a *fresh* command generator per attempt —
        a generator can only run once.
        """
        env = self.env
        policy = self.policy
        start = env.now
        attempt = 0
        self.stats.calls += 1
        while True:
            attempt += 1
            self.stats.attempts += 1
            try:
                result = yield from self._attempt(factory, site)
            except BaseException as exc:
                err = as_device_error(exc, site)
                if err is None:
                    raise                      # a real bug, not a device status
                self.stats.note(err)
                tel = env.telemetry
                if tel is not None:
                    tel.add("resil.device_errors", 1.0)
                if not err.retryable:
                    self.stats.nonretryable += 1
                    raise err from None
                if attempt >= policy.max_attempts:
                    self.stats.exhausted += 1
                    raise err from None
                delay = policy.backoff(attempt, self.rng)
                if (policy.deadline is not None
                        and (env.now - start) + delay > policy.deadline):
                    self.stats.deadline_exceeded += 1
                    raise err from None
                self.stats.retries += 1
                if tel is not None:
                    tel.add("resil.retries", 1.0)
                lp = env.lineage
                if lp is not None:
                    lp.enter("retry")
                try:
                    yield env.timeout(delay)
                finally:
                    if lp is not None:
                        lp.leave()
            else:
                return result

    def _attempt(self, factory: Callable[[], Generator], site: str) -> Generator:
        """One attempt, with the per-command timeout race when configured."""
        env = self.env
        timeout_s = self.policy.command_timeout
        if timeout_s is None:
            result = yield from factory()
            return result
        proc = env.process(factory(), name=f"cmd:{site or self.name}")
        # Race the command against the deadline.  If the command *fails*
        # first, AnyOf defuses it and re-raises here — the retry loop
        # classifies it.  If it succeeds first, return its value.
        yield env.any_of([proc, env.timeout(timeout_s)])
        if proc.processed:
            return proc.value
        # Deadline won.  Cancel the in-flight command; yielding the dying
        # process both consumes the Interrupt cleanly (the kernel defuses
        # a failure a process is waiting on) and covers the boundary case
        # where the command completes at the exact deadline timestamp —
        # then its real result is simply used.
        self.stats.timeouts += 1
        if proc.is_alive:
            proc.interrupt("command-timeout")
        try:
            value = yield proc
        except Interrupt:
            raise DeviceError(
                TIMEOUT, site=site,
                detail=f"no completion within {timeout_s:g}s") from None
        return value
