"""Graceful degradation: HEALTHY -> DEGRADED -> RECOVERING -> HEALTHY.

The controller consults a :class:`DegradationManager` before admitting a
write to the Dev-LSM redirect path:

* **HEALTHY** — normal KVACCEL operation; redirect allowed.
* **DEGRADED** — the Dev-LSM device path is not trustworthy: admission is
  suspended, every write goes to the Main-LSM, and the rollback daemon is
  asked to drain whatever the Dev-LSM still holds (``wants_drain``).
  Entered when retryable-error handling gives up — ``degrade_error_threshold``
  device errors inside ``degrade_window`` simulated seconds — or on any
  error while RECOVERING (fast relapse, the hysteresis half of the
  machine).
* **RECOVERING** — the Dev-LSM is drained; redirects are allowed again as
  *probes*.  Only after ``recover_min_successes`` consecutive successful
  device commands **and** ``recover_probation`` seconds without an error
  does the machine declare HEALTHY.  A single error snaps straight back
  to DEGRADED.

State changes are visible three ways: fault sites (``resil.degraded.enter``
et al. — crash points for the sweep), the ``resil.state`` telemetry gauge
(which the ``degraded_mode_entered`` health rule watches), and the
``transitions`` list for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults.registry import touch
from ..sim import Environment
from .retry import RetryPolicy

__all__ = ["HEALTHY", "RECOVERING", "DEGRADED", "STATE_GAUGE",
           "ResilienceConfig", "DegradationManager"]

HEALTHY = "healthy"
RECOVERING = "recovering"
DEGRADED = "degraded"

# Encoding on the resil.state gauge channel (rules key off >= 2.0).
STATE_GAUGE = {HEALTHY: 0.0, RECOVERING: 1.0, DEGRADED: 2.0}


@dataclass(frozen=True)
class ResilienceConfig:
    """Profile-level knobs for the whole resilience stack."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degrade_error_threshold: int = 3     # errors within the window -> DEGRADED
    degrade_window: float = 1.0          # seconds
    recover_probation: float = 0.5       # seconds error-free in RECOVERING
    recover_min_successes: int = 8       # successful probes in RECOVERING

    def __post_init__(self) -> None:
        if self.degrade_error_threshold < 1:
            raise ValueError("degrade_error_threshold must be >= 1")
        if self.degrade_window <= 0 or self.recover_probation < 0:
            raise ValueError("windows must be positive")
        if self.recover_min_successes < 1:
            raise ValueError("recover_min_successes must be >= 1")


class DegradationManager:
    """The per-system state machine instance."""

    def __init__(self, env: Environment,
                 config: Optional[ResilienceConfig] = None):
        self.env = env
        self.config = config or ResilienceConfig()
        self.state = HEALTHY
        self.transitions: list[tuple[float, str]] = []
        self.device_errors = 0
        self.fallback_writes = 0
        self._error_times: list[float] = []    # recent, within window
        self._recover_started = 0.0
        self._successes = 0
        tel = env.telemetry
        if tel is not None:
            tel.gauge("resil.state", lambda: STATE_GAUGE[self.state])

    def __repr__(self) -> str:
        return (f"DegradationManager({self.state}, errors={self.device_errors},"
                f" fallbacks={self.fallback_writes})")

    def state_digest(self) -> dict:
        """Degradation-machine state for journal digest checkpoints."""
        return {
            "state": self.state,
            "transitions": [[t, s] for t, s in self.transitions],
            "device_errors": self.device_errors,
            "fallback_writes": self.fallback_writes,
        }

    # -- queries the controller / rollback make ------------------------------
    def allows_redirect(self) -> bool:
        """May the controller admit this write to the Dev-LSM?"""
        return self.state != DEGRADED

    def wants_drain(self) -> bool:
        """Should the rollback daemon drain the Dev-LSM now, regardless of
        the configured rollback scheme and even during a stall?"""
        return self.state == DEGRADED

    # -- inputs --------------------------------------------------------------
    def record_error(self, err: Optional[BaseException] = None) -> None:
        """A device command failed for good (post-retry)."""
        self.device_errors += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.add("resil.device_errors", 1.0)
        if self.state == DEGRADED:
            return
        if self.state == RECOVERING:
            # Hysteresis: any error during probation relapses immediately.
            self._enter(DEGRADED)
            return
        now = self.env.now
        horizon = now - self.config.degrade_window
        self._error_times = [t for t in self._error_times if t > horizon]
        self._error_times.append(now)
        if len(self._error_times) >= self.config.degrade_error_threshold:
            self._enter(DEGRADED)

    def record_success(self) -> None:
        """A device command on the redirect path completed cleanly."""
        if self.state != RECOVERING:
            return
        self._successes += 1
        if (self._successes >= self.config.recover_min_successes
                and self.env.now - self._recover_started
                >= self.config.recover_probation):
            self._enter(HEALTHY)

    def note_drained(self) -> None:
        """The rollback daemon finished draining the Dev-LSM."""
        if self.state == DEGRADED:
            self._enter(RECOVERING)

    def record_fallback(self) -> None:
        """A write intended for the Dev-LSM was served by the Main-LSM."""
        self.fallback_writes += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.add("resil.fallback_writes", 1.0)

    def force_degrade(self) -> None:
        """Operator override / test hook: suspend Dev-LSM admission now."""
        if self.state != DEGRADED:
            self._enter(DEGRADED)

    def reset(self) -> None:
        """Post-crash-recovery: the machine restarts HEALTHY (the crash
        recovery path already reconciled the Dev-LSM)."""
        self.state = HEALTHY
        self._error_times = []
        self._successes = 0

    # -- internals -----------------------------------------------------------
    def _enter(self, state: str) -> None:
        self.state = state
        now = self.env.now
        self.transitions.append((now, state))
        if state == RECOVERING:
            self._recover_started = now
            self._successes = 0
        elif state == HEALTHY:
            self._error_times = []
        touch(self.env, f"resil.{state}.enter")
        tr = getattr(self.env, "tracer", None)
        if tr is not None:
            tr.instant("resil", f"state.{state}", actor="resil")
