"""Typed device-error taxonomy.

Every failed device command completes with a :class:`DeviceError` carrying
one of four kinds, mirroring how NVMe status codes split into retryable
and fatal families:

* ``transient``  — the command failed this time but the medium is fine
  (bus glitch, controller hiccup, ECC soft error); reissuing is expected
  to succeed.
* ``persistent`` — the command will keep failing (firmware refuses the
  verb, region offline); retrying is pointless.
* ``media``      — the NAND itself failed (program/erase failure on a
  worn block, grown bad block); the FTL remaps, the host must not retry
  the same physical op.
* ``timeout``    — the host-side command deadline expired before a
  completion arrived; the command's effect on the device is *unknown*.

``retryable`` is the property the retry stack keys on: transient and
timeout errors are retried with backoff, persistent and media errors
surface immediately so the degradation state machine can react.

Injected faults (:class:`~repro.faults.registry.InjectedFault`) map onto
the taxonomy through :func:`classify_injected`: the fault action's ``note``
names the kind (``FaultAction(FAIL, note="persistent")``), defaulting to
``transient`` — so existing FAIL arms behave like soft errors under the
retry stack while still surfacing raw on stacks without one.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "TRANSIENT",
    "PERSISTENT",
    "MEDIA",
    "TIMEOUT",
    "ERROR_KINDS",
    "DeviceError",
    "FailoverInProgress",
    "classify_injected",
    "as_device_error",
]

TRANSIENT = "transient"
PERSISTENT = "persistent"
MEDIA = "media"
TIMEOUT = "timeout"

ERROR_KINDS = (TRANSIENT, PERSISTENT, MEDIA, TIMEOUT)

# Kinds worth reissuing the command for.  A timeout is retryable because
# the typical cause is queueing, not damage — but callers must tolerate
# duplicate execution (our KV verbs are idempotent under same-seq replay).
_RETRYABLE = frozenset({TRANSIENT, TIMEOUT})


class DeviceError(RuntimeError):
    """A device command completed with an error status."""

    def __init__(self, kind: str, site: str = "", detail: str = ""):
        if kind not in ERROR_KINDS:
            raise ValueError(f"kind must be one of {ERROR_KINDS}")
        msg = f"device error [{kind}]"
        if site:
            msg += f" at {site}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.kind = kind
        self.site = site
        self.detail = detail

    @property
    def retryable(self) -> bool:
        return self.kind in _RETRYABLE


class FailoverInProgress(DeviceError):
    """A cluster shard slot is mid-failover and not accepting requests.

    Classified ``transient`` so the retry stack reissues the request with
    backoff until the promoted backup finishes catch-up and the router
    repoints the slot — the caller observes elevated latency, never an
    error, as long as promotion completes within the retry budget.
    ``epoch`` is the replica group's promotion count when the request was
    rejected; a successful retry necessarily lands on a later epoch.
    """

    def __init__(self, sid: int, epoch: int = 0, detail: str = ""):
        super().__init__(
            TRANSIENT, site=f"cluster.shard{sid}",
            detail=detail or f"failover in progress (epoch {epoch})")
        self.sid = sid
        self.epoch = epoch


def classify_injected(exc: BaseException, site: str = "") -> DeviceError:
    """Map an :class:`InjectedFault` onto the taxonomy.

    The fault action's ``note`` names the kind; anything else (including
    the empty default) classifies as transient — the least surprising
    reading of "a fault fired here" for a stack that retries.
    """
    note = getattr(exc, "note", "") or TRANSIENT
    kind = note if note in ERROR_KINDS else TRANSIENT
    return DeviceError(kind, site=site or getattr(exc, "site", ""),
                       detail=str(exc))


def as_device_error(exc: BaseException, site: str = "") -> Optional[DeviceError]:
    """Return ``exc`` as a DeviceError, or None if it is neither a
    DeviceError nor an injected fault (real bugs must not be retried)."""
    if isinstance(exc, DeviceError):
        return exc
    if getattr(exc, "site", None) is not None and hasattr(exc, "occurrence"):
        return classify_injected(exc, site)
    return None
