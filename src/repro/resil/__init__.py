"""End-to-end failure handling for the KVACCEL stack (ISSUE 5 tentpole).

Four pieces threaded through the existing layers:

* :mod:`~repro.resil.errors` — the typed :class:`DeviceError` taxonomy
  (transient / persistent / media / timeout) that device commands complete
  with, plus the classifier that maps injected faults onto it;
* :mod:`~repro.resil.retry` — the deterministic, sim-clock retry/backoff
  executor wrapped around NVMe command issue in ``device/kv_dev.py`` and
  ``device/block_dev.py`` (exponential backoff + jitter from a seeded RNG,
  per-command deadlines and timeouts — never wall clock);
* :mod:`~repro.resil.degrade` — the HEALTHY → DEGRADED → RECOVERING
  graceful-degradation state machine the controller consults before
  admitting writes to the Dev-LSM;
* :mod:`~repro.resil.soak` — the long-horizon chaos-soak harness behind
  ``python -m repro.faults soak``.

Import note: ``repro.device`` and ``repro.lsm`` import
:mod:`~repro.resil.errors` for the exception type, which executes this
``__init__``.  To avoid an import cycle the eager re-exports stop at the
leaf modules (errors/retry/degrade); the soak harness — which imports the
whole stack — loads lazily on first attribute access, mirroring
``repro.faults``.
"""

from .degrade import (
    DEGRADED,
    HEALTHY,
    RECOVERING,
    DegradationManager,
    ResilienceConfig,
    STATE_GAUGE,
)
from .errors import (
    DeviceError,
    ERROR_KINDS,
    FailoverInProgress,
    MEDIA,
    PERSISTENT,
    TIMEOUT,
    TRANSIENT,
    as_device_error,
    classify_injected,
)
from .retry import RetryExecutor, RetryPolicy, RetryStats, backoff_schedule

_LAZY = {
    "SoakConfig": "soak",
    "SoakResult": "soak",
    "run_soak": "soak",
}

__all__ = [
    "TRANSIENT",
    "PERSISTENT",
    "MEDIA",
    "TIMEOUT",
    "ERROR_KINDS",
    "DeviceError",
    "FailoverInProgress",
    "classify_injected",
    "as_device_error",
    "RetryPolicy",
    "RetryStats",
    "RetryExecutor",
    "backoff_schedule",
    "HEALTHY",
    "RECOVERING",
    "DEGRADED",
    "STATE_GAUGE",
    "ResilienceConfig",
    "DegradationManager",
    *sorted(set(_LAZY)),
]


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
