"""Chaos soak: seeded fault storms against a full KVACCEL stack.

``python -m repro.faults soak`` drives a deterministic mixed workload
(stall windows, redirected writes, drains) while the fault registry
injects device command failures, and asserts the durability invariants
afterwards:

* ``transient`` mode — probabilistic failures with ``note="transient"``
  on the NVMe-KV submission sites, the PCIe link and NAND programs, plus
  the wear-driven NAND error model.  Every failure must be absorbed by
  the retry stack: zero data loss, the system ends HEALTHY, and the
  ``degraded_mode_entered`` health rule never fires.
* ``persistent`` mode — every Dev-LSM write command fails with
  ``note="persistent"``.  The degradation state machine must suspend
  Dev-LSM admission and serve every write from Main-LSM: zero data loss,
  the system ends DEGRADED, fallback writes are observed, and the final
  rollback leaves both the Dev-LSM and the metadata table empty.

Everything derives from one seed (workload stream, fault schedule, retry
jitter), so a failing storm reproduces exactly from the printed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Environment

__all__ = ["SoakConfig", "SoakResult", "run_soak", "SOAK_MODES"]

SOAK_MODES = ("transient", "persistent")


@dataclass(frozen=True)
class SoakConfig:
    """One soak run: mode, seed, and storm intensity."""

    mode: str = "transient"
    seed: int = 0xC0FFEE
    ops: int = 400                 # workload operations (x scale)
    scale: int = 1
    fault_rate: float = 0.02       # per-hit FAIL probability (transient)
    key_space: int = 64
    sample_period: float = 0.002   # telemetry bucket (sim seconds)

    def __post_init__(self) -> None:
        if self.mode not in SOAK_MODES:
            raise ValueError(f"mode must be one of {SOAK_MODES}")
        if self.ops < 1 or self.scale < 1 or self.key_space < 1:
            raise ValueError("ops/scale/key_space must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")


@dataclass
class SoakResult:
    """Outcome of one soak run (``ok`` gates CI)."""

    mode: str
    seed: int
    sim_time: float = 0.0
    acked_ops: int = 0
    aborted_ops: int = 0
    read_errors: int = 0
    final_state: str = ""
    device_errors: int = 0
    fallback_writes: int = 0
    kv_retries: int = 0
    block_retries: int = 0
    injected_faults: int = 0
    violations: list = field(default_factory=list)        # oracle Violations
    invariant_failures: list = field(default_factory=list)  # strings
    health: dict = field(default_factory=dict)            # rule -> enters
    health_events: list = field(default_factory=list)     # HealthEvent dicts

    @property
    def ok(self) -> bool:
        return not self.violations and not self.invariant_failures

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "ok": self.ok,
            "sim_time": self.sim_time,
            "acked_ops": self.acked_ops,
            "aborted_ops": self.aborted_ops,
            "read_errors": self.read_errors,
            "final_state": self.final_state,
            "device_errors": self.device_errors,
            "fallback_writes": self.fallback_writes,
            "kv_retries": self.kv_retries,
            "block_retries": self.block_retries,
            "injected_faults": self.injected_faults,
            "violations": [v.describe() for v in self.violations],
            "invariant_failures": list(self.invariant_failures),
            "health": dict(self.health),
            "health_events": list(self.health_events),
        }

    def summary_lines(self) -> list[str]:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"[{status}] soak mode={self.mode} seed={self.seed:#x} "
            f"sim_time={self.sim_time:.3f}s",
            f"  acked={self.acked_ops} aborted={self.aborted_ops} "
            f"read_errors={self.read_errors} final_state={self.final_state}",
            f"  injected={self.injected_faults} "
            f"retries(kv={self.kv_retries}, block={self.block_retries}) "
            f"device_errors={self.device_errors} "
            f"fallbacks={self.fallback_writes}",
        ]
        fired = {k: v for k, v in self.health.items() if v}
        lines.append(f"  health: {fired if fired else 'quiet'}")
        for v in self.violations:
            lines.append(f"  violation: {v.describe()}")
        for msg in self.invariant_failures:
            lines.append(f"  invariant: {msg}")
        return lines


def _build_stack(config: SoakConfig):
    """A small seeded KVACCEL stack with the resilience layer on."""
    # Local imports: this module is loaded lazily from ``repro.resil`` to
    # keep the package importable from the device layer (which only needs
    # errors/retry) without a cycle through repro.core.
    from ..core import DetectorConfig, KvaccelDb
    from ..device import (
        CpuModel,
        DevLsmConfig,
        HybridSsd,
        HybridSsdConfig,
        KiB,
        MiB,
        NandGeometry,
    )
    from ..device.error_model import NandErrorConfig
    from ..faults.oracle import DifferentialOracle
    from ..faults.registry import FaultRegistry
    from ..lsm import LsmOptions
    from ..obs import HealthMonitor, TelemetryHub, default_rules
    from .degrade import ResilienceConfig

    env = Environment()
    registry = FaultRegistry(config.seed).install(env)
    hub = TelemetryHub(env, period=config.sample_period).install(env)
    # The soak runs on a compressed millisecond timescale, so the absolute
    # retries/second threshold is recalibrated: ~10 retries per bucket
    # marks a storm, well above what fault_rate-sized transient glitches
    # produce and well below a flapping device.
    monitor = HealthMonitor(hub, default_rules(
        period=config.sample_period,
        retry_storm_rate=10.0 / config.sample_period))

    cpu = CpuModel(env, cores=8, name="host")
    geometry = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                            pages_per_block=32, page_size=4096)
    nand_errors = None
    if config.mode == "transient":
        # Wear-driven NAND error model: small base rates so a fresh device
        # still sees program failures and ECC read-retry latency tails.
        nand_errors = NandErrorConfig(seed=config.seed,
                                      program_fail_base=0.002,
                                      read_retry_base=0.02)
    ssd = HybridSsd(env, cpu, HybridSsdConfig(
        geometry=geometry,
        peak_nand_bandwidth=200 * MiB,
        pcie_bandwidth=1024 * MiB,
        devlsm=DevLsmConfig(memtable_bytes=8 * KiB),
        nand_errors=nand_errors,
    ))
    options = LsmOptions(
        write_buffer_size=16 * KiB,
        level0_file_num_compaction_trigger=2,
        level0_slowdown_writes_trigger=6,
        level0_stop_writes_trigger=10,
        max_bytes_for_level_base=64 * KiB,
        max_bytes_for_level_multiplier=4,
        target_file_size_base=16 * KiB,
        soft_pending_compaction_bytes_limit=256 * KiB,
        hard_pending_compaction_bytes_limit=1 * MiB,
        compaction_io_chunk=16 * KiB,
        wal_group_commit_bytes=4 * KiB,
        block_size=4 * KiB,
    )
    resil = ResilienceConfig(degrade_error_threshold=3,
                             degrade_window=0.05,
                             recover_probation=1e-5,
                             recover_min_successes=4)
    db = KvaccelDb(env, options, ssd, cpu, rollback="disabled",
                   detector_config=DetectorConfig(period=0.002),
                   resilience=resil)
    # The soak scripts its own stall windows and drains (deterministic
    # site sequence); the polling daemons would only add timer noise.
    db.detector.stop()
    db.rollback_manager.stop()
    return env, registry, db, monitor, DifferentialOracle(seed=config.seed)


def _arm_storm(registry, config: SoakConfig) -> None:
    from ..faults.plan import AlwaysPlan, ProbabilisticPlan
    from ..faults.registry import FAIL, FaultAction

    if config.mode == "transient":
        act = FaultAction(FAIL, note="transient")
        p = config.fault_rate
        for site in ("kv.put.submit", "kv.put_batch.submit",
                     "kv.delete.submit", "kv.get.submit"):
            registry.arm(site, ProbabilisticPlan(p, rng=registry.rng), act)
        # Lower-probability faults on the shared fabric: these sites are
        # hit many times per command (per transfer / per NAND op), so the
        # per-hit rate is scaled down to keep whole-command retry budgets
        # realistic.
        registry.arm("pcie.transfer",
                     ProbabilisticPlan(p / 10, rng=registry.rng), act)
        registry.arm("nand.program",
                     ProbabilisticPlan(p / 10, rng=registry.rng), act)
    else:
        act = FaultAction(FAIL, note="persistent")
        for site in ("kv.put.submit", "kv.put_batch.submit",
                     "kv.delete.submit"):
            registry.arm(site, AlwaysPlan(), act)


def run_soak(config: SoakConfig) -> SoakResult:
    """Run one seeded fault storm and check the durability invariants."""
    import random

    from .degrade import DEGRADED, HEALTHY
    from .errors import DeviceError

    env, registry, db, monitor, oracle = _build_stack(config)
    _arm_storm(registry, config)
    result = SoakResult(mode=config.mode, seed=config.seed)
    rng = random.Random(f"{config.seed}:soak-workload")
    value_of = lambda i: (b"s:%08d;" % i) * 32          # ~352 B per value

    def put(key, value):
        oracle.begin_put(key, value)
        try:
            yield from db.put(key, value)
        except DeviceError:
            oracle.abort()                 # refused: known not-committed
            result.aborted_ops += 1
            if db.main.background_error is not None:
                db.main.resume()           # operator action: clear + retry later
        else:
            oracle.ack()
            result.acked_ops += 1

    def delete(key):
        oracle.begin_delete(key)
        try:
            yield from db.delete(key)
        except DeviceError:
            oracle.abort()
            result.aborted_ops += 1
            if db.main.background_error is not None:
                db.main.resume()
        else:
            oracle.ack()
            result.acked_ops += 1

    def get(key):
        try:
            got = yield from db.get(key)
        except DeviceError:
            result.read_errors += 1        # e.g. uncorrectable media error
            return
        oracle.check_read(key, got)

    def workload():
        from ..types import encode_key

        total = config.ops * config.scale
        window = max(1, total // 8)
        for i in range(total):
            w, r = divmod(i, window)
            if r == 0:
                stalled = w % 2 == 1
                db.detector.stall_condition = stalled
                if not stalled and (not db.ssd.kv.is_empty
                                    or db.resil.wants_drain()):
                    # Window-boundary drain: the eager rollback the
                    # daemons would run between stalls (DEGRADED ->
                    # RECOVERING when the state machine asked for it).
                    yield from db.rollback_manager.rollback_once()
            roll = rng.random()
            key = encode_key(rng.randrange(config.key_space))
            if roll < 0.65:
                yield from put(key, value_of(i))
            elif roll < 0.75:
                yield from delete(key)
            else:
                yield from get(key)
        # Closing stall probe: a deterministic tail of redirected writes
        # so the final state reflects the storm itself, not whichever
        # window parity the op count happened to end on.
        db.detector.stall_condition = True
        for j in range(4):
            yield from put(encode_key(config.key_space + j),
                           value_of(total + j))
        db.detector.stall_condition = False

    env.run(until=env.process(workload()))
    result.injected_faults = len(registry.injected)
    # Storm over: disarm before the assessment phase so the drain and the
    # differential read-back measure what the storm left behind.
    registry.clear_arms()
    if db.main.background_error is not None:
        db.main.resume()
    env.run(until=env.process(db.main.wait_for_quiesce()))
    env.run(until=env.process(db.final_rollback()))
    result.violations = env.run(
        until=env.process(oracle.verify(db, allow_inflight=True)))

    result.sim_time = env.now
    result.final_state = db.resil.state
    result.device_errors = db.resil.device_errors
    result.fallback_writes = db.resil.fallback_writes
    result.kv_retries = db.ssd.kv.retry.stats.retries
    result.block_retries = db.ssd.block.retry.stats.retries
    result.health = monitor.summary()
    result.health_events = [e.to_dict() for e in monitor.events]

    fail = result.invariant_failures.append
    if not db.ssd.kv.is_empty:
        fail("Dev-LSM not empty after the final rollback")
    if len(db.metadata) != 0:
        fail("metadata table not empty after the final rollback")
    if config.mode == "transient":
        if result.final_state != HEALTHY:
            fail(f"transient storm must end HEALTHY, got {result.final_state}")
        if monitor.fired("degraded_mode_entered"):
            fail("degraded_mode_entered fired during a transient-only storm")
        if monitor.fired("retry_storm"):
            fail("retry_storm fired during a transient-only storm")
    else:
        if result.final_state != DEGRADED:
            fail(f"persistent storm must end DEGRADED, got "
                 f"{result.final_state}")
        if not monitor.fired("degraded_mode_entered"):
            fail("degraded_mode_entered never fired under persistent faults")
        if result.fallback_writes == 0:
            fail("no fallback writes observed under persistent faults")
    db.close()
    return result
