"""The catalogue of fault-site names, and arm-time validation.

Fault probes identify themselves with string site names; before this
module existed a typo'd pattern in a plan ("kv.putbatch.submit") armed
successfully and then never fired — a silent no-op that looks exactly
like "the system survived the fault".  :func:`validate_pattern` closes
that hole: :meth:`FaultRegistry.arm` rejects patterns that cannot match
any site the stack actually probes.

``KNOWN_SITES`` is the hand-maintained list of every static site name in
the tree (``tests/faults/test_sites.py`` greps the source to keep it
honest).  A few sites are built dynamically — per-link PCIe transfer
probes are ``f"{link.name}.transfer"`` — so any name ending in a
``DYNAMIC_SUFFIXES`` entry is accepted too.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

__all__ = ["KNOWN_SITES", "DYNAMIC_SUFFIXES", "UnknownSiteError",
           "validate_pattern", "matching_sites"]

KNOWN_SITES = frozenset({
    # device/nand.py — f"nand.{op}"
    "nand.read", "nand.program", "nand.erase",
    # device/pcie.py — f"{self.name}.transfer"; the default link name is
    # "pcie", other names are covered by the dynamic suffix.
    "pcie.transfer",
    # device/kv_dev.py
    "kv.put.submit", "kv.put.complete",
    "kv.put_batch.submit", "kv.put_batch.complete",
    "kv.delete.submit", "kv.delete.complete",
    "kv.get.submit",
    "kv.bulk_scan.start", "kv.bulk_scan.complete",
    "kv.reset.start", "kv.reset.complete",
    # device/devlsm.py
    "devlsm.put.applied", "devlsm.flush.start", "devlsm.flush.complete",
    "devlsm.get", "devlsm.reset",
    # lsm/fs.py + lsm/wal.py
    "fs.append.alloc", "fs.append.complete", "fs.read.start",
    "wal.segment.switch", "wal.append",
    "wal.flush.start", "wal.flush.complete",
    # lsm/db.py
    "db.write.gate", "db.write.applied", "db.memtable.seal",
    "db.flush.start", "db.flush.install",
    "db.compact.start", "db.compact.install",
    "db.bg_error.set", "db.resume",
    # core/controller.py + core/rollback.py + core/recovery.py
    "ctl.put.redirect", "ctl.put.normal",
    "ctl.delete.redirect", "ctl.delete.normal",
    "ctl.get.dev", "ctl.get.main",
    "rollback.start", "rollback.scan.done", "rollback.merge.batch",
    "rollback.metadata.cleared", "rollback.complete",
    "recovery.start", "recovery.scan.done", "recovery.merge.batch",
    "recovery.complete",
    # resil/degrade.py + core/controller.py fallback path
    "resil.healthy.enter", "resil.recovering.enter", "resil.degraded.enter",
    "resil.fallback",
    # cluster/replica.py — replication link, apply paths, failure detector
    # and the promotion protocol (the replication pipe itself is a PcieLink
    # named "shard<N>.repl", so it also probes the dynamic
    # "shard<N>.repl.transfer" site per frame).
    "repl.link.send", "repl.apply", "repl.ship.install",
    "repl.primary.kill", "repl.heartbeat.miss",
    "repl.failover.start", "repl.catchup.start", "repl.catchup.batch",
    "repl.promote", "repl.failover.complete",
    # cluster/cluster.py — live resharding (router seed bump + migration)
    "reshard.start", "reshard.migrate.batch", "reshard.forward.read",
    "reshard.complete",
})

# Site-name families built at runtime: any name with one of these suffixes
# is a real probe even if not listed above (e.g. "host-link.transfer").
DYNAMIC_SUFFIXES = (".transfer",)

_GLOB_CHARS = set("*?[")


class UnknownSiteError(ValueError):
    """An armed pattern cannot match any fault site in the stack."""

    def __init__(self, pattern: str):
        super().__init__(
            f"fault pattern {pattern!r} matches no known fault site "
            f"(typo'd sites silently never fire; pass validate=False to "
            f"arm a site outside the built-in stack)")
        self.pattern = pattern


def matching_sites(pattern: str) -> list[str]:
    """Known static sites the glob ``pattern`` matches."""
    return sorted(s for s in KNOWN_SITES if fnmatchcase(s, pattern))


def validate_pattern(pattern: str) -> None:
    """Raise :class:`UnknownSiteError` unless ``pattern`` can fire.

    Exact names must be a known site or carry a dynamic suffix; glob
    patterns must match at least one known site (a glob aimed only at a
    dynamic family, e.g. ``"mylink.*"``, cannot be proven reachable and
    is rejected — arm the full dynamic name instead).
    """
    if not _GLOB_CHARS.isdisjoint(pattern):
        if matching_sites(pattern):
            return
        raise UnknownSiteError(pattern)
    if pattern in KNOWN_SITES or pattern.endswith(DYNAMIC_SUFFIXES):
        return
    raise UnknownSiteError(pattern)
