"""Injection registry: named fault points threaded through the stack.

Every durability-relevant step in the device and LSM layers calls
:func:`fault_point` (in generator code) or :func:`touch` (in synchronous
code) with a stable site name — ``"nand.program"``, ``"wal.flush.start"``,
``"kv.put_batch.submit"``, ``"rollback.metadata.cleared"``...  With no
registry installed on the :class:`~repro.sim.Environment` these probes are
near-free no-ops, so production simulations pay one attribute read per
site.

With a :class:`FaultRegistry` installed (``registry.install(env)``), each
probe:

* counts the hit and (optionally) appends it to an ordered **trace** —
  the raw material of the crash-point scheduler;
* consults the armed ``(pattern, plan, action)`` triples and, when a plan
  fires, executes the action:

  - ``FAIL``       raise :class:`InjectedFault` at the site,
  - ``CRASH``      latch the crash point and succeed the registry's crash
                   event (the harness then interrupts the workload and
                   runs recovery),
  - ``DELAY``      stretch the op by ``action.delay`` simulated seconds,
  - ``DROP`` /
    ``DUPLICATE``  returned to the call site, which interprets them
                   (e.g. a lost or doubled NVMe-KV command).

Site naming convention: sites ending in ``.submit`` are hit *before* any
device-visible mutation of the op; a crash there must leave the op
invisible.  Other sites may be post-mutation, so the interrupted op's
value is allowed (but not required) to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Generator, Optional

from ..sim import Environment, Event
from .plan import FaultPlan

__all__ = [
    "FAIL",
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "FaultAction",
    "InjectedFault",
    "SiteHit",
    "FaultRegistry",
    "fault_point",
    "touch",
]

FAIL = "fail"
CRASH = "crash"
DELAY = "delay"
DROP = "drop"
DUPLICATE = "duplicate"

_KINDS = (FAIL, CRASH, DELAY, DROP, DUPLICATE)

DEFAULT_SEED = 0xC0FFEE


class InjectedFault(RuntimeError):
    """Raised at a fault site armed with a ``FAIL`` action.

    ``note`` carries :attr:`FaultAction.note` through to the handler —
    the resilience layer reads it as the device-error kind (see
    :func:`repro.resil.errors.classify_injected`).
    """

    def __init__(self, site: str, occurrence: int, note: str = ""):
        super().__init__(f"injected fault at {site} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence
        self.note = note


@dataclass
class FaultAction:
    """What happens when a plan fires at a site."""

    kind: str = FAIL
    delay: float = 0.0       # seconds, for DELAY
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


@dataclass(frozen=True)
class SiteHit:
    """One traced visit of a fault site."""

    site: str
    occurrence: int      # 1-based per-site hit count
    time: float


@dataclass
class _Arm:
    pattern: str
    plan: FaultPlan
    action: FaultAction
    fired: int = 0


class FaultRegistry:
    """Holds armed faults, hit counters, the trace, and the crash latch."""

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = seed
        self.rng = random.Random(seed)
        self.hits: dict[str, int] = {}
        self.record_trace = False
        self.trace: list[SiteHit] = []
        self.injected: list[tuple[str, int, str, float]] = []
        self.crash_event: Optional[Event] = None
        self.crashed_at: Optional[SiteHit] = None
        self._arms: list[_Arm] = []
        self._env: Optional[Environment] = None

    def __repr__(self) -> str:
        return (f"FaultRegistry(seed={self.seed:#x}, sites={len(self.hits)}, "
                f"arms={len(self._arms)}, injected={len(self.injected)})")

    # -- wiring ------------------------------------------------------------
    def install(self, env: Environment) -> "FaultRegistry":
        """Attach to an Environment; probes find us via ``env.faults``."""
        env.faults = self
        self._env = env
        return self

    @staticmethod
    def of(env: Environment) -> Optional["FaultRegistry"]:
        return getattr(env, "faults", None)

    # -- arming ------------------------------------------------------------
    def arm(self, pattern: str, plan: FaultPlan,
            action: Optional[FaultAction] = None,
            validate: bool = True) -> "FaultRegistry":
        """Arm ``plan``/``action`` on every site matching the glob
        ``pattern`` (exact names match themselves).

        Patterns are validated against the site catalogue
        (:mod:`repro.faults.sites`) — a typo'd site used to arm fine and
        then silently never fire.  ``validate=False`` opts out for sites
        outside the built-in stack (synthetic test probes, extensions).
        """
        if validate:
            from .sites import validate_pattern
            validate_pattern(pattern)
        self._arms.append(_Arm(pattern, plan, action or FaultAction()))
        return self

    def clear_arms(self) -> None:
        """Disarm everything (the scheduler does this after its crash fires
        so recovery-path sites cannot re-trigger the same plan)."""
        self._arms = []

    def new_crash_event(self, env: Environment) -> Event:
        """Fresh latch for one crash run; fires with the SiteHit."""
        self.crash_event = Event(env)
        self.crashed_at = None
        return self.crash_event

    # -- introspection -----------------------------------------------------
    @property
    def distinct_sites(self) -> list[str]:
        return sorted(self.hits)

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    # -- the probe ---------------------------------------------------------
    def reach(self, site: str, now: float) -> Optional[FaultAction]:
        """Record a visit of ``site``; return a fired action (or None).

        ``FAIL`` raises here; ``CRASH`` latches and triggers the crash
        event, then returns None so the visiting process proceeds to its
        next yield (where the harness interrupts it).  Other kinds are
        returned for the call site / wrapper to interpret.
        """
        n = self.hits.get(site, 0) + 1
        self.hits[site] = n
        if self.record_trace:
            self.trace.append(SiteHit(site, n, now))
        for arm in self._arms:
            if not fnmatchcase(site, arm.pattern):
                continue
            if not arm.plan.should_fire(n, now):
                continue
            arm.fired += 1
            self.injected.append((site, n, arm.action.kind, now))
            if arm.action.kind == CRASH:
                self.crashed_at = SiteHit(site, n, now)
                ev = self.crash_event
                if ev is not None and not ev.triggered:
                    ev.succeed(self.crashed_at)
                return None
            if arm.action.kind == FAIL:
                raise InjectedFault(site, n, note=arm.action.note)
            return arm.action
        return None


def fault_point(env: Environment, site: str) -> Generator:
    """Probe ``site`` from generator code: ``yield from fault_point(...)``.

    Handles ``DELAY`` inline (stretches the op); returns the action for
    site-specific kinds (``DROP``/``DUPLICATE``) or None.  ``FAIL`` raises
    out of the site; ``CRASH`` latches and lets execution continue to the
    next yield.
    """
    jr = env.journal
    if jr is not None:
        # Before the registry guard: site records exist with or without a
        # FaultRegistry, so the bisector can name sites on clean runs too.
        proc = env._active_process
        jr.site(env._now, proc.name if proc is not None else "", site)
    reg = env.faults
    if reg is None:
        return None
    action = reg.reach(site, env.now)
    if action is not None and action.kind == DELAY and action.delay > 0:
        yield env.timeout(action.delay)
        return None
    return action


def touch(env: Environment, site: str) -> Optional[FaultAction]:
    """Probe ``site`` from synchronous code (cannot honor DELAY)."""
    jr = env.journal
    if jr is not None:
        proc = env._active_process
        jr.site(env._now, proc.name if proc is not None else "", site)
    reg = env.faults
    if reg is None:
        return None
    return reg.reach(site, env.now)
