"""Fault plans: *when* an armed fault fires.

A plan is a small stateful policy consulted every time simulation code
reaches the fault site it is armed on.  Separating "when" (the plan) from
"what" (the :class:`~repro.faults.registry.FaultAction`) and "where" (the
site name) lets one registry express NAND glitches (probabilistic), a
crash-point schedule (nth-occurrence) and scripted scenarios
(at-sim-time) with the same machinery.

Plans are stateful and single-use: arm a fresh instance per run.  All
randomness flows through an explicit ``random.Random`` so a printed seed
reproduces a failing schedule exactly.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

__all__ = [
    "FaultPlan",
    "NeverPlan",
    "AlwaysPlan",
    "NthOccurrencePlan",
    "ProbabilisticPlan",
    "AtTimePlan",
    "ScriptedPlan",
]


class FaultPlan:
    """Decides, per site hit, whether the armed fault fires."""

    def should_fire(self, occurrence: int, now: float) -> bool:
        """``occurrence`` is the 1-based hit count of the site; ``now`` is
        simulated time."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NeverPlan(FaultPlan):
    """A pure probe: never fires (useful to keep a site traced but inert)."""

    def should_fire(self, occurrence: int, now: float) -> bool:
        return False


class AlwaysPlan(FaultPlan):
    """Fires on every hit."""

    def should_fire(self, occurrence: int, now: float) -> bool:
        return True


class NthOccurrencePlan(FaultPlan):
    """Fires on the ``n``-th hit (1-based); with ``repeat`` on every
    multiple of ``n``.  The crash-point scheduler arms exactly this plan:
    "crash the system the k-th time execution reaches site S"."""

    def __init__(self, n: int, repeat: bool = False):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.repeat = repeat

    def should_fire(self, occurrence: int, now: float) -> bool:
        if self.repeat:
            return occurrence % self.n == 0
        return occurrence == self.n

    def __repr__(self) -> str:
        return f"NthOccurrencePlan(n={self.n}, repeat={self.repeat})"


class ProbabilisticPlan(FaultPlan):
    """Fires independently with probability ``p`` per hit.

    Pass the registry's ``rng`` (or any seeded ``random.Random``) so the
    schedule is reproducible from the run's seed.
    """

    def __init__(self, p: float, rng: Optional[random.Random] = None,
                 seed: Optional[int] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self.rng = rng if rng is not None else random.Random(seed)
        self.fired = 0

    def should_fire(self, occurrence: int, now: float) -> bool:
        fire = self.rng.random() < self.p
        if fire:
            self.fired += 1
        return fire

    def __repr__(self) -> str:
        return f"ProbabilisticPlan(p={self.p})"


class AtTimePlan(FaultPlan):
    """Fires on the first hit at or after simulated time ``t`` (once)."""

    def __init__(self, t: float):
        if t < 0:
            raise ValueError("t must be >= 0")
        self.t = t
        self._done = False

    def should_fire(self, occurrence: int, now: float) -> bool:
        if self._done or now < self.t:
            return False
        self._done = True
        return True

    def __repr__(self) -> str:
        return f"AtTimePlan(t={self.t})"


class ScriptedPlan(FaultPlan):
    """Fires once per scripted simulated time, on the first hit at or
    after each: ``ScriptedPlan([0.5, 1.2])`` injects twice."""

    def __init__(self, times: Iterable[float]):
        self._times = sorted(float(t) for t in times)
        if any(t < 0 for t in self._times):
            raise ValueError("times must be >= 0")

    def should_fire(self, occurrence: int, now: float) -> bool:
        if self._times and now >= self._times[0]:
            self._times.pop(0)
            return True
        return False

    def __repr__(self) -> str:
        return f"ScriptedPlan(pending={self._times!r})"
