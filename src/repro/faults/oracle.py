"""Differential oracle: an in-memory shadow of every acknowledged write.

The oracle is the ground truth both the crash-point scheduler and the
model-based fault tests check the system against.  It records three
things per user key:

* the **committed** value — the newest acknowledged ``put`` (or ``None``
  after an acknowledged ``delete``);
* the **attempt history** — every value any submitted operation ever
  carried, acked or not (the no-phantom check: nothing outside this set
  may ever be read back);
* the single **in-flight** operation at crash time — the one the crash
  interrupted between submission and acknowledgement.

Crash-consistency contract checked by :meth:`verify`:

1. *Acked-write durability*: each key reads back its committed value —
   except that the in-flight op's value is also legal when the crash hit
   at or after the op's persistence point (``allow_inflight=True``).
2. *No phantom writes*: when the crash site is pre-persistence (site name
   ends in ``.submit``, or any route/decision site), the interrupted op
   must be invisible: only the committed value is legal.

Reads issued while the workload runs are checked inline (strict equality
with the committed view), so divergence is caught at the op that caused
it, not at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

__all__ = ["DifferentialOracle", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach found after crash recovery."""

    key: bytes
    got: Optional[bytes]
    allowed: tuple
    kind: str            # "durability" | "phantom"

    def describe(self) -> str:
        return (f"{self.kind}: key={self.key!r} read back {self.got!r}, "
                f"allowed {self.allowed!r}")


class DifferentialOracle:
    """Dict-shadow of acked puts/deletes with in-flight tracking."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self.committed: dict[bytes, Optional[bytes]] = {}
        self.history: dict[bytes, set] = {}
        self.inflight: Optional[dict[bytes, Optional[bytes]]] = None
        self.acked_ops = 0
        self.checked_reads = 0

    # -- write tracking ----------------------------------------------------
    def begin_put(self, key: bytes, value: bytes) -> None:
        self.begin_batch([(key, value)])

    def begin_delete(self, key: bytes) -> None:
        self.begin_batch([(key, None)])

    def begin_batch(self, pairs: list) -> None:
        """Mark a write batch as submitted (``value=None`` = delete)."""
        if self.inflight is not None:
            raise RuntimeError("previous op never acked")
        self.inflight = {}
        for key, value in pairs:
            self.inflight[key] = value
            self.history.setdefault(key, set()).add(value)

    def ack(self) -> None:
        """The in-flight batch completed: fold it into the committed view."""
        if self.inflight is None:
            raise RuntimeError("no op in flight")
        self.committed.update(self.inflight)
        self.acked_ops += 1
        self.inflight = None

    def abort(self) -> None:
        """The in-flight op failed cleanly (e.g. InjectedFault surfaced to
        the caller): it is known not-committed, drop it."""
        self.inflight = None

    # -- read checking -----------------------------------------------------
    def check_read(self, key: bytes, got: Optional[bytes]) -> None:
        """Inline differential check for a read during the workload."""
        want = self.committed.get(key)
        self.checked_reads += 1
        assert got == want, (
            f"divergence at live read: key={key!r} got={got!r} want={want!r}"
            + (f" (seed={self.seed:#x})" if self.seed is not None else "")
        )

    def check_scan(self, start_key: bytes, rows: list, count: int) -> None:
        """Inline differential check for a range scan during the workload."""
        want = [(k, v) for k, v in sorted(self.committed.items())
                if k >= start_key and v is not None][:count]
        assert rows == want, (
            f"divergence at live scan from {start_key!r}: got {len(rows)} "
            f"rows, want {len(want)}"
        )

    # -- post-recovery verification -----------------------------------------
    def tracked_keys(self) -> list[bytes]:
        return sorted(self.history)

    def expected(self, key: bytes, allow_inflight: bool) -> tuple:
        allowed = [self.committed.get(key)]
        if (allow_inflight and self.inflight is not None
                and key in self.inflight
                and self.inflight[key] not in allowed):
            allowed.append(self.inflight[key])
        return tuple(allowed)

    def verify(self, db, allow_inflight: bool = True) -> Generator:
        """Drive post-recovery point reads of every tracked key; returns
        the list of :class:`Violation` (empty = all invariants hold)."""
        violations: list[Violation] = []
        for key in self.tracked_keys():
            got = yield from db.get(key)
            allowed = self.expected(key, allow_inflight)
            if got in allowed:
                continue
            inflight_val = (self.inflight or {}).get(key, _MISSING)
            kind = ("phantom" if (not allow_inflight and got == inflight_val)
                    else "durability")
            violations.append(Violation(key=key, got=got,
                                        allowed=allowed, kind=kind))
        return violations


_MISSING = object()
