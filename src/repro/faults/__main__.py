"""CLI for the crash-point sweep: ``python -m repro.faults``.

Runs the deterministic harness workload, enumerates every injection site
it reaches, crashes at each one (bounded by ``--faults-budget``), recovers
and checks the crash-consistency invariants.  Exit status is non-zero if
any run violates an invariant, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import os
import sys

from .harness import KvaccelFaultHarness
from .registry import DEFAULT_SEED
from .scheduler import sweep_crash_points


def _parse_seed(value: str) -> int:
    return int(value, 0)


_parse_seed.__name__ = "seed"  # argparse: "invalid seed value", not _parse_seed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic crash-point sweep over a KVACCEL stack.")
    parser.add_argument(
        "--faults-budget", type=int, default=None, metavar="N",
        help="cap the number of crash runs (default: every distinct site)")
    parser.add_argument(
        "--seed", type=_parse_seed,
        default=_parse_seed(os.environ.get("REPRO_FAULT_SEED",
                                           str(DEFAULT_SEED))),
        help="workload/fault seed (default: $REPRO_FAULT_SEED or "
             f"{DEFAULT_SEED:#x})")
    parser.add_argument(
        "--scale", type=int, default=1,
        help="workload size multiplier (default: 1)")
    parser.add_argument(
        "--site-filter", default=None, metavar="SUBSTR",
        help="only crash at sites containing SUBSTR")
    parser.add_argument(
        "--summary", default=None, metavar="FILE",
        help="write a markdown summary (for CI job summaries)")
    parser.add_argument(
        "--list-sites", action="store_true",
        help="trace the workload, list reachable sites, and exit")
    parser.add_argument(
        "--trace-tail", type=int, default=0, metavar="N",
        help="record the last N trace records before each crash and print "
             "them for failing runs (default: 0 = off)")
    args = parser.parse_args(argv)

    harness = KvaccelFaultHarness(seed=args.seed, scale=args.scale,
                                  trace_tail=args.trace_tail)

    if args.list_sites:
        trace = harness.trace()
        counts: dict[str, int] = {}
        for hit in trace:
            counts[hit.site] = counts.get(hit.site, 0) + 1
        print(f"{len(counts)} distinct sites, {len(trace)} total hits "
              f"(seed={args.seed:#x}):")
        for site in sorted(counts):
            print(f"  {site:32s} x{counts[site]}")
        return 0

    report = sweep_crash_points(harness, budget=args.faults_budget,
                                site_filter=args.site_filter)
    for line in report.summary_lines():
        print(line)
    if args.trace_tail > 0:
        for rep in report.reports:
            if rep.ok or not rep.trace_tail:
                continue
            print(f"\ntrace tail before crash at {rep.site}"
                  f"#{rep.occurrence} (last {len(rep.trace_tail)}):")
            for rec in rep.trace_tail:
                if rec["kind"] == "span":
                    t1 = rec["t1"]
                    end = f"{t1:.6f}" if t1 is not None else "open"
                    print(f"  [{rec['t0']:.6f}..{end}] "
                          f"{rec['cat']}/{rec['name']} ({rec['actor']})")
                elif rec["kind"] == "instant":
                    print(f"  [{rec['t']:.6f}] {rec['cat']}/{rec['name']} "
                          f"({rec['actor']}) {rec['args'] or ''}")
    if args.site_filter is not None and not report.reports:
        print(f"error: --site-filter {args.site_filter!r} matched none of "
              f"the {report.sites_traced} traced sites", file=sys.stderr)
        return 2
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as fh:
            fh.write(report.to_markdown())
        print(f"summary written to {args.summary}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
