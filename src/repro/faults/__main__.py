"""CLI for the fault tooling: ``python -m repro.faults``.

Three entry points:

* (default)  — the crash-point sweep: run the deterministic harness
  workload, enumerate every injection site it reaches, crash at each one
  (bounded by ``--faults-budget``), recover and check the
  crash-consistency invariants;
* ``sites``  — print the static fault-site catalogue (``--json`` for
  machines);
* ``soak``   — seeded chaos storms against a full resilience-enabled
  stack (``--mode transient|persistent``), asserting the durability
  invariants.

Exit status is non-zero if any run violates an invariant, so CI gates on
all three directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .harness import KvaccelFaultHarness
from .registry import DEFAULT_SEED
from .scheduler import sweep_crash_points


def _parse_seed(value: str) -> int:
    return int(value, 0)


_parse_seed.__name__ = "seed"  # argparse: "invalid seed value", not _parse_seed


def _sites_main(argv) -> int:
    from .sites import DYNAMIC_SUFFIXES, KNOWN_SITES

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults sites",
        description="Print the static fault-site catalogue.")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of a site-per-line listing")
    args = parser.parse_args(argv)
    sites = sorted(KNOWN_SITES)
    if args.json:
        print(json.dumps({"sites": sites,
                          "dynamic_suffixes": list(DYNAMIC_SUFFIXES)},
                         indent=2))
    else:
        print(f"{len(sites)} static sites "
              f"(+ dynamic suffixes: {', '.join(DYNAMIC_SUFFIXES)}):")
        for site in sites:
            print(f"  {site}")
    return 0


def _soak_main(argv) -> int:
    from ..resil.soak import SOAK_MODES, SoakConfig, run_soak

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults soak",
        description="Seeded chaos storm against a resilience-enabled "
                    "KVACCEL stack.")
    parser.add_argument("--mode", choices=SOAK_MODES, default="transient",
                        help="fault storm flavour (default: transient)")
    parser.add_argument(
        "--seed", type=_parse_seed,
        default=_parse_seed(os.environ.get("REPRO_FAULT_SEED",
                                           str(DEFAULT_SEED))),
        help="workload/fault seed (default: $REPRO_FAULT_SEED or "
             f"{DEFAULT_SEED:#x})")
    parser.add_argument("--ops", type=int, default=400,
                        help="workload operations (default: 400)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload size multiplier (default: 1)")
    parser.add_argument("--fault-rate", type=float, default=0.02,
                        help="per-hit FAIL probability for transient "
                             "storms (default: 0.02)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the full result (incl. health events) "
                             "as JSON")
    args = parser.parse_args(argv)
    result = run_soak(SoakConfig(mode=args.mode, seed=args.seed,
                                 ops=args.ops, scale=args.scale,
                                 fault_rate=args.fault_rate))
    for line in result.summary_lines():
        print(line)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"result written to {args.json}")
    return 0 if result.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch first; the bare invocation stays the crash-point
    # sweep for backwards compatibility with existing CI pipelines.
    if argv and argv[0] == "sites":
        return _sites_main(argv[1:])
    if argv and argv[0] == "soak":
        return _soak_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic crash-point sweep over a KVACCEL stack.")
    parser.add_argument(
        "--faults-budget", type=int, default=None, metavar="N",
        help="cap the number of crash runs (default: every distinct site)")
    parser.add_argument(
        "--seed", type=_parse_seed,
        default=_parse_seed(os.environ.get("REPRO_FAULT_SEED",
                                           str(DEFAULT_SEED))),
        help="workload/fault seed (default: $REPRO_FAULT_SEED or "
             f"{DEFAULT_SEED:#x})")
    parser.add_argument(
        "--scale", type=int, default=1,
        help="workload size multiplier (default: 1)")
    parser.add_argument(
        "--site-filter", default=None, metavar="SUBSTR",
        help="only crash at sites containing SUBSTR")
    parser.add_argument(
        "--summary", default=None, metavar="FILE",
        help="write a markdown summary (for CI job summaries)")
    parser.add_argument(
        "--list-sites", action="store_true",
        help="trace the workload, list reachable sites, and exit")
    parser.add_argument(
        "--trace-tail", type=int, default=0, metavar="N",
        help="record the last N trace records before each crash and print "
             "them for failing runs (default: 0 = off)")
    args = parser.parse_args(argv)

    harness = KvaccelFaultHarness(seed=args.seed, scale=args.scale,
                                  trace_tail=args.trace_tail)

    if args.list_sites:
        trace = harness.trace()
        counts: dict[str, int] = {}
        for hit in trace:
            counts[hit.site] = counts.get(hit.site, 0) + 1
        print(f"{len(counts)} distinct sites, {len(trace)} total hits "
              f"(seed={args.seed:#x}):")
        for site in sorted(counts):
            print(f"  {site:32s} x{counts[site]}")
        return 0

    report = sweep_crash_points(harness, budget=args.faults_budget,
                                site_filter=args.site_filter)
    for line in report.summary_lines():
        print(line)
    if args.trace_tail > 0:
        for rep in report.reports:
            if rep.ok or not rep.trace_tail:
                continue
            print(f"\ntrace tail before crash at {rep.site}"
                  f"#{rep.occurrence} (last {len(rep.trace_tail)}):")
            for rec in rep.trace_tail:
                if rec["kind"] == "span":
                    t1 = rec["t1"]
                    end = f"{t1:.6f}" if t1 is not None else "open"
                    print(f"  [{rec['t0']:.6f}..{end}] "
                          f"{rec['cat']}/{rec['name']} ({rec['actor']})")
                elif rec["kind"] == "instant":
                    print(f"  [{rec['t']:.6f}] {rec['cat']}/{rec['name']} "
                          f"({rec['actor']}) {rec['args'] or ''}")
    if args.site_filter is not None and not report.reports:
        print(f"error: --site-filter {args.site_filter!r} matched none of "
              f"the {report.sites_traced} traced sites", file=sys.stderr)
        return 2
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as fh:
            fh.write(report.to_markdown())
        print(f"summary written to {args.summary}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
