"""Crash-point scheduler: enumerate injection sites, crash at each one.

The sweep is a two-pass protocol over a :class:`KvaccelFaultHarness`:

1. **Trace pass** — run the workload fault-free with trace recording on;
   the registry's ordered :class:`~repro.faults.registry.SiteHit` list is
   the universe of reachable crash points for that workload.
2. **Crash passes** — for each distinct site (first-reached order, first
   occurrence), rebuild the system from the same seed, arm a CRASH at
   exactly that hit, run, recover, and check the oracle invariants.

Because the simulation is deterministic, the crash run retraces the trace
run's site sequence bit-for-bit up to the armed hit, so "the k-th hit of
site S" names the same program state in both passes.

``budget`` bounds the number of crash runs (CI uses it); skipped sites
are reported, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .harness import CrashReport, KvaccelFaultHarness
from .registry import SiteHit

__all__ = ["SweepReport", "sweep_crash_points"]


@dataclass
class SweepReport:
    """Aggregate outcome of one crash-point sweep."""

    seed: int
    trace_hits: int                    # total site hits in the trace pass
    sites_traced: int                  # distinct sites in the trace pass
    skipped_for_budget: int
    reports: list = field(default_factory=list)

    @property
    def crash_runs(self) -> int:
        return len(self.reports)

    @property
    def crashed(self) -> list:
        return [r for r in self.reports if r.crashed]

    @property
    def failed(self) -> list:
        return [r for r in self.reports if not r.ok]

    @property
    def passed(self) -> int:
        return sum(1 for r in self.reports if r.crashed and r.ok)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary_lines(self) -> list[str]:
        lines = [
            f"crash-point sweep: seed={self.seed:#x}",
            f"  trace: {self.trace_hits} hits over {self.sites_traced} "
            f"distinct sites",
            f"  crash runs: {self.crash_runs} "
            f"({len(self.crashed)} crashed, {self.passed} passed, "
            f"{len(self.failed)} failed, "
            f"{self.skipped_for_budget} skipped for budget)",
        ]
        for r in self.failed:
            lines.append("  " + r.describe())
        return lines

    def to_markdown(self) -> str:
        """Render for CI job summaries."""
        out = [
            "## Crash-point sweep",
            "",
            f"- seed: `{self.seed:#x}`",
            f"- trace: **{self.trace_hits}** hits over "
            f"**{self.sites_traced}** distinct injection sites",
            f"- crash runs: **{self.crash_runs}** · passed: "
            f"**{self.passed}** · failed: **{len(self.failed)}** · "
            f"skipped (budget): **{self.skipped_for_budget}**",
            "",
            "| site | occurrence | crashed | result |",
            "|---|---|---|---|",
        ]
        for r in self.reports:
            result = ("PASS" if r.ok and r.crashed
                      else "no-crash" if not r.crashed
                      else "**FAIL** " + "; ".join(
                          v.describe() for v in r.violations[:2])
                      + (f" {r.error}" if r.error else ""))
            out.append(f"| `{r.site}` | {r.occurrence} | "
                       f"{'yes' if r.crashed else 'no'} | {result} |")
        return "\n".join(out) + "\n"


def sweep_crash_points(harness: KvaccelFaultHarness,
                       budget: Optional[int] = None,
                       site_filter: Optional[str] = None) -> SweepReport:
    """Run the full two-pass sweep over ``harness``'s workload.

    ``budget`` caps crash runs (first-reached sites win); ``site_filter``
    restricts to sites containing the substring (debugging aid).
    """
    trace = harness.trace()
    chosen: list[SiteHit] = []
    seen: set[str] = set()
    for hit in trace:
        if hit.site in seen:
            continue
        seen.add(hit.site)
        chosen.append(hit)
    if site_filter:
        chosen = [h for h in chosen if site_filter in h.site]
    skipped = 0
    if budget is not None and len(chosen) > budget:
        skipped = len(chosen) - budget
        chosen = chosen[:budget]
    reports: list[CrashReport] = [
        harness.crash_at(hit.site, hit.occurrence) for hit in chosen
    ]
    return SweepReport(
        seed=harness.seed,
        trace_hits=len(trace),
        sites_traced=len(seen),
        skipped_for_budget=skipped,
        reports=reports,
    )
