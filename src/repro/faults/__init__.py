"""Deterministic fault injection & crash-consistency testing for KVACCEL.

Three pieces (ISSUE 1 tentpole):

* :mod:`~repro.faults.registry` — named injection sites threaded through
  the device and LSM layers, armed with pluggable
  :mod:`~repro.faults.plan` policies;
* :mod:`~repro.faults.scheduler` — the crash-point sweep (enumerate every
  reached site, crash at each, recover, verify);
* :mod:`~repro.faults.oracle` — the differential oracle shadowing every
  acknowledged operation.

Import note: simulation modules (``repro.device``, ``repro.lsm``) import
``repro.faults.registry`` for the probe helpers, which executes this
``__init__``.  To avoid an import cycle it eagerly re-exports only the
leaf modules (plan/registry/oracle); the harness and scheduler — which
import the whole stack — load lazily on first attribute access.
"""

from .oracle import DifferentialOracle, Violation
from .plan import (
    AlwaysPlan,
    AtTimePlan,
    FaultPlan,
    NeverPlan,
    NthOccurrencePlan,
    ProbabilisticPlan,
    ScriptedPlan,
)
from .registry import (
    CRASH,
    DEFAULT_SEED,
    DELAY,
    DROP,
    DUPLICATE,
    FAIL,
    FaultAction,
    FaultRegistry,
    InjectedFault,
    SiteHit,
    fault_point,
    touch,
)

_LAZY = {
    "KvaccelFaultHarness": "harness",
    "CrashReport": "harness",
    "PRE_PERSIST_SITES": "harness",
    "broken_recovery_skip_drain": "harness",
    "broken_recovery_skip_reset": "harness",
    "SweepReport": "scheduler",
    "sweep_crash_points": "scheduler",
}

__all__ = [
    "FaultPlan",
    "NeverPlan",
    "AlwaysPlan",
    "NthOccurrencePlan",
    "ProbabilisticPlan",
    "AtTimePlan",
    "ScriptedPlan",
    "FAIL",
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "DEFAULT_SEED",
    "FaultAction",
    "FaultRegistry",
    "InjectedFault",
    "SiteHit",
    "fault_point",
    "touch",
    "DifferentialOracle",
    "Violation",
    *sorted(set(_LAZY)),
]


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
