"""Crash-consistency harness: one KVACCEL stack + workload + oracle.

The harness owns everything a crash-point run needs:

* a deterministic small KVACCEL system (fresh per run, seeded);
* a scripted workload that exercises every layer — normal writes through
  flush and compaction, a forced stall window with redirected writes and
  Dev-LSM flushes, reads over both interfaces, deletes, a scripted
  rollback, and a post-rollback phase;
* a :class:`~repro.faults.oracle.DifferentialOracle` shadowing every
  acknowledged operation;
* the crash choreography: run the workload until the armed fault site
  fires, interrupt the in-flight op, run recovery
  (:func:`~repro.core.recovery.recover_after_crash` via ``db.recover()``),
  then verify the oracle's invariants against the recovered store.

Crash model ("metadata crash", paper Section VI-D): the KVACCEL host
module dies — the volatile metadata table is lost and the in-flight
operation is abandoned — while Main-LSM memory state and the device
survive.  Full host power loss (WAL tail loss, torn SSTs) is exercised
separately by ``DbImpl.crash_and_recover`` and its property tests; see
MODEL.md for the modeled-vs-out-of-scope matrix.

Determinism: the stack, workload and fault schedule derive from one seed,
so any failure reproduces from the seed printed in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..core import DetectorConfig, KvaccelDb
from ..device import (
    CpuModel,
    DevLsmConfig,
    HybridSsd,
    HybridSsdConfig,
    KiB,
    MiB,
    NandGeometry,
)
from ..lsm import LsmOptions
from ..obs import Journal, Tracer, write_divergence_artifact
from ..resil import DeviceError, ResilienceConfig, TRANSIENT
from ..sim import Environment, Interrupt
from ..types import encode_key
from .oracle import DifferentialOracle, Violation
from .plan import NthOccurrencePlan
from .registry import CRASH, DEFAULT_SEED, FaultAction, FaultRegistry, SiteHit

__all__ = [
    "KvaccelFaultHarness",
    "CrashReport",
    "PRE_PERSIST_SITES",
    "broken_recovery_skip_drain",
    "broken_recovery_skip_reset",
]

# Sites hit strictly before any device-visible mutation of the op that
# reaches them first: a crash there must leave the in-flight op invisible.
PRE_PERSIST_SITES = frozenset({
    "ctl.put.redirect",
    "ctl.put.normal",
    "ctl.delete.redirect",
    "ctl.delete.normal",
    "db.write.gate",
    "wal.append",
})


def _pre_persist(site: str) -> bool:
    return site in PRE_PERSIST_SITES or site.endswith(".submit")


@dataclass
class CrashReport:
    """Outcome of one crash-at-site run."""

    site: str
    occurrence: int
    crashed: bool
    violations: list = field(default_factory=list)
    recovery: Optional[object] = None      # RecoveryReport when crashed
    sim_time: float = 0.0
    seed: int = DEFAULT_SEED
    error: Optional[str] = None
    # Last N spans/instants before the crash (ring-buffered), when the
    # harness was built with ``trace_tail > 0``.  Each item is a dict:
    # {"cat", "name", "actor", "t0", "t1"|None, "args"}.
    trace_tail: list = field(default_factory=list)
    # Last N journal records before the crash (flight-recorder ring), when
    # built with ``journal_tail > 0``.  Each item is a record dict:
    # {"kind", "idx", "t", "proc"|"layer", "class"|"site"|"digest"}.
    journal_tail: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def describe(self) -> str:
        status = ("no-crash" if not self.crashed
                  else "ok" if self.ok else "FAIL")
        extra = ""
        if self.violations:
            extra = " " + "; ".join(v.describe() for v in self.violations[:3])
        if self.error:
            extra += f" error={self.error}"
        return (f"[{status}] {self.site}#{self.occurrence} "
                f"(seed={self.seed:#x}){extra}")


@dataclass
class _Run:
    env: Environment
    registry: FaultRegistry
    db: KvaccelDb
    oracle: DifferentialOracle


# -- deliberately broken recovery variants (harness self-tests) -----------
def broken_recovery_skip_drain(db: KvaccelDb) -> Generator:
    """A recovery that forgets to drain the Dev-LSM back into Main-LSM:
    it resets the device buffer without merging.  Every acked redirected
    write still parked in the Dev-LSM is silently lost — the harness must
    flag this as a durability violation."""
    db.controller.metadata.drop()
    yield from db.controller.kv.reset()
    return None


def broken_recovery_skip_reset(db: KvaccelDb) -> Generator:
    """A recovery that merges but forgets step 8 (Dev-LSM reset): the
    two LSMs' metadata disagree afterwards — Dev-LSM still holds entries
    while the rebuilt metadata table says it holds none."""
    from ..types import entry_size

    controller = db.controller
    controller.metadata.drop()
    scanned = yield from controller.kv.bulk_scan()
    merge = []
    for e in scanned:
        current = yield from controller.main.get_internal(e[0])
        if current is None or e[1] > current[1]:
            merge.append(e)
    if merge:
        yield from controller.main.write_entries(merge)
    controller.metadata.clear()
    return None


class KvaccelFaultHarness:
    """Builds fresh seeded systems and runs trace / crash-at-site passes."""

    def __init__(self, seed: int = DEFAULT_SEED, scale: int = 1,
                 recovery: Optional[Callable[[KvaccelDb], Generator]] = None,
                 trace_tail: int = 0, resilience: bool = False,
                 journal_tail: int = 0):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if trace_tail < 0:
            raise ValueError("trace_tail must be >= 0")
        if journal_tail < 0:
            raise ValueError("journal_tail must be >= 0")
        self.seed = seed
        self.scale = scale
        self.trace_tail = trace_tail   # ring-buffer span tail per crash run
        self.journal_tail = journal_tail   # flight-recorder ring per run
        self._recovery = recovery   # None = the real db.recover()
        # With resilience on, the stack runs the repro.resil layer and the
        # workload gains two phases: a forced degraded episode (DEGRADED ->
        # drain -> RECOVERING -> HEALTHY) and a Main-LSM background-error /
        # resume() episode — exposing the state-machine sites to the crash
        # sweep.  Off (the default) keeps the trace byte-identical to
        # previous sweeps.
        self.resilience = resilience

    # -- system construction ----------------------------------------------
    def _build(self, record_trace: bool = False) -> _Run:
        env = Environment()
        registry = FaultRegistry(self.seed).install(env)
        registry.record_trace = record_trace
        if self.trace_tail > 0:
            # Ring-buffered: keeps only the last N records, so the sweep's
            # memory stays bounded while every crash report carries the
            # spans leading up to its injected fault.
            Tracer(max_events=self.trace_tail).install(env)
        if self.journal_tail > 0:
            # Flight-recorder ring: the crash report carries the last N
            # executed events / site visits leading up to the fault.
            Journal(ring=self.journal_tail).install(env)
        cpu = CpuModel(env, cores=8, name="host")
        geometry = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                                pages_per_block=32, page_size=4096)
        ssd = HybridSsd(env, cpu, HybridSsdConfig(
            geometry=geometry,
            peak_nand_bandwidth=200 * MiB,
            pcie_bandwidth=1024 * MiB,
            devlsm=DevLsmConfig(memtable_bytes=8 * KiB),
        ))
        options = LsmOptions(
            write_buffer_size=16 * KiB,
            level0_file_num_compaction_trigger=2,
            level0_slowdown_writes_trigger=6,
            level0_stop_writes_trigger=10,
            max_bytes_for_level_base=64 * KiB,
            max_bytes_for_level_multiplier=4,
            target_file_size_base=16 * KiB,
            soft_pending_compaction_bytes_limit=256 * KiB,
            hard_pending_compaction_bytes_limit=1 * MiB,
            compaction_io_chunk=16 * KiB,
            wal_group_commit_bytes=4 * KiB,
            block_size=4 * KiB,
        )
        resil_cfg = None
        if self.resilience:
            # Windows sized to the harness's millisecond timescale so the
            # RECOVERING -> HEALTHY probation completes inside the script.
            resil_cfg = ResilienceConfig(degrade_error_threshold=3,
                                         degrade_window=0.05,
                                         recover_probation=1e-5,
                                         recover_min_successes=4)
        db = KvaccelDb(env, options, ssd, cpu, rollback="disabled",
                       detector_config=DetectorConfig(period=0.002),
                       resilience=resil_cfg)
        # The workload scripts stall windows itself (deterministic site
        # sequence); the polling daemons would only add timer noise.
        db.detector.stop()
        db.rollback_manager.stop()
        return _Run(env, registry, db,
                    DifferentialOracle(seed=self.seed))

    # -- oracle-wrapped operations ------------------------------------------
    @staticmethod
    def _put(run: _Run, key: bytes, value: bytes) -> Generator:
        run.oracle.begin_put(key, value)
        yield from run.db.put(key, value)
        run.oracle.ack()

    @staticmethod
    def _delete(run: _Run, key: bytes) -> Generator:
        run.oracle.begin_delete(key)
        yield from run.db.delete(key)
        run.oracle.ack()

    @staticmethod
    def _get(run: _Run, key: bytes) -> Generator:
        got = yield from run.db.get(key)
        run.oracle.check_read(key, got)

    @staticmethod
    def _scan(run: _Run, start: bytes, count: int) -> Generator:
        rows = yield from run.db.scan(start, count)
        run.oracle.check_scan(start, rows, count)

    # -- the scripted workload ----------------------------------------------
    @staticmethod
    def _value(phase: bytes, i: int) -> bytes:
        return (b"%s:%06d;" % (phase, i)) * 40    # ~400 B per value

    def _workload(self, run: _Run) -> Generator:
        """Deterministic mixed workload touching every layer's sites."""
        s = self.scale
        db = run.db
        # Phase 1 — normal writes: flushes, WAL groups, compactions.
        for i in range(120 * s):
            yield from self._put(run, encode_key(i % 48), self._value(b"a", i))
        for k in (3, 9, 15):
            yield from self._delete(run, encode_key(k))
        for k in (0, 7, 21, 35, 47, 3):
            yield from self._get(run, encode_key(k))
        yield from self._scan(run, encode_key(10), 8)

        # Phase 2 — forced stall window: redirected writes + Dev-LSM reads.
        db.detector.stall_condition = True
        for i in range(40 * s):
            yield from self._put(run, encode_key(20 + (i % 30)),
                                 self._value(b"b", i))
        for k in (22, 31):
            yield from self._delete(run, encode_key(k))
        for k in (20, 25, 31, 49):
            yield from self._get(run, encode_key(k))

        # Phase 3 — stall clears; scripted rollback drains the Dev-LSM.
        db.detector.stall_condition = False
        yield from db.rollback_manager.rollback_once()
        for k in (20, 31, 45):
            yield from self._get(run, encode_key(k))

        # Phase 4 — post-rollback writes land normally again.
        for i in range(30 * s):
            yield from self._put(run, encode_key(30 + (i % 25)),
                                 self._value(b"c", i))
        yield from self._scan(run, encode_key(0), 16)
        for k in (30, 40, 54):
            yield from self._get(run, encode_key(k))

        if db.resil is None:
            return

        # Phase 5 — forced degraded episode: admission to the Dev-LSM is
        # suspended, writes land on Main-LSM despite the stall, a drain
        # moves DEGRADED -> RECOVERING and redirected probes close the
        # loop back to HEALTHY.
        db.detector.stall_condition = True
        for i in range(10 * s):    # a few redirected writes to strand
            yield from self._put(run, encode_key(60 + (i % 10)),
                                 self._value(b"d", i))
        db.resil.force_degrade()
        for i in range(10 * s):    # degraded: Main-LSM despite the stall
            yield from self._put(run, encode_key(70 + (i % 10)),
                                 self._value(b"e", i))
        yield from db.rollback_manager.rollback_once()   # drain -> RECOVERING
        for i in range(10 * s):    # redirected probes -> HEALTHY
            yield from self._put(run, encode_key(60 + (i % 10)),
                                 self._value(b"f", i))
        db.detector.stall_condition = False
        yield from db.rollback_manager.rollback_once()
        for k in (60, 65, 70, 75):
            yield from self._get(run, encode_key(k))

        # Phase 6 — Main-LSM background error: writes are refused while the
        # DB is read-only, then resume() clears the latch.
        db.main.set_background_error(DeviceError(
            TRANSIENT, site="wal.sync", detail="scripted background error"))
        for i in range(3):
            key = encode_key(80 + i)
            value = self._value(b"g", i)
            run.oracle.begin_put(key, value)
            try:
                yield from db.put(key, value)
            except DeviceError:
                run.oracle.abort()   # refused at the gate: not committed
            else:
                run.oracle.ack()
        db.main.resume()
        for i in range(8 * s):
            yield from self._put(run, encode_key(80 + (i % 8)),
                                 self._value(b"h", i))
        for k in (80, 84):
            yield from self._get(run, encode_key(k))

    def _driver(self, run: _Run) -> Generator:
        try:
            yield from self._workload(run)
        except Interrupt:
            return   # crash: abandon the in-flight op mid-yield

    # -- passes --------------------------------------------------------------
    def trace(self) -> list[SiteHit]:
        """Fault-free pass recording the ordered site-hit trace."""
        run = self._build(record_trace=True)
        run.env.run(until=run.env.process(self._driver(run)))
        run.db.close()
        return run.registry.trace

    def run_clean(self) -> _Run:
        """Fault-free pass returning the full run (tests poke at it)."""
        run = self._build()
        run.env.run(until=run.env.process(self._driver(run)))
        return run

    def crash_at(self, site: str, occurrence: int = 1) -> CrashReport:
        """Re-run the workload, crash at the given site hit, recover, and
        check the oracle's crash-consistency invariants."""
        run = self._build()
        # Sites come from a recorded trace, so they are real by
        # construction — skip catalogue validation.
        run.registry.arm(site, NthOccurrencePlan(occurrence),
                         FaultAction(CRASH), validate=False)
        crash_ev = run.registry.new_crash_event(run.env)
        proc = run.env.process(self._driver(run))
        report = CrashReport(site=site, occurrence=occurrence,
                             crashed=False, seed=self.seed)
        try:
            run.env.run(until=run.env.any_of([proc, crash_ev]))
            if run.registry.crashed_at is None:
                # Workload finished without reaching the armed hit.
                run.db.close()
                report.sim_time = run.env.now
                return report
            report.crashed = True
            if proc.is_alive and proc._target is not None:
                proc.interrupt("crash")
                run.env.run(until=proc)
            run.registry.clear_arms()
            if run.env.tracer is not None:
                # Snapshot the span tail before recovery adds its own
                # records.  Open spans (the abandoned in-flight op, plus
                # background flush/compaction still running) appear with
                # t1=None — they are not closed here because surviving
                # processes will end theirs normally during recovery.
                report.trace_tail = run.env.tracer.tail(self.trace_tail)
            if run.env.journal is not None:
                # Same snapshot point as the trace tail: the records
                # leading up to the crash, before recovery appends more.
                report.journal_tail = run.env.journal.tail()

            # -- recovery ------------------------------------------------
            recovery = self._recovery or (lambda db: db.recover())
            report.recovery = run.env.run(
                until=run.env.process(recovery(run.db)))
            run.env.run(until=run.env.process(run.db.wait_for_quiesce()))

            # -- invariants ------------------------------------------------
            violations: list[Violation] = run.env.run(
                until=run.env.process(run.oracle.verify(
                    run.db, allow_inflight=not _pre_persist(site))))
            # Dev-LSM and Main-LSM metadata must agree post-recovery: the
            # rebuilt (empty) table says no key is device-resident, so the
            # Dev-LSM must be empty too.
            if len(run.db.metadata) != 0 or not run.db.ssd.kv.is_empty:
                violations.append(Violation(
                    key=b"", got=None, allowed=(),
                    kind="metadata-disagreement"))
            report.violations = violations
            report.sim_time = run.env.now
            if violations:
                # Oracle mismatch: emit a divergence artifact (report +
                # the flight-recorder ring, when enabled) so the failing
                # site points straight at the evidence.  No-op unless
                # REPRO_DIVERGENCE_DIR is set.
                safe = site.replace(".", "_")
                write_divergence_artifact(
                    f"oracle_{safe}_{occurrence}",
                    {"divergent": True,
                     "violations": [v.describe() for v in violations],
                     "journal_tail": report.journal_tail},
                    journal=run.env.journal,
                    meta={"site": site, "occurrence": occurrence,
                          "seed": self.seed, "sim_time": run.env.now})
        except AssertionError as exc:
            report.error = f"assertion: {exc}"
        except Exception as exc:   # surface per-run, keep the sweep going
            report.error = f"{type(exc).__name__}: {exc}"
        finally:
            run.db.close()
        return report
