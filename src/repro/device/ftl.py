"""Page-level Flash Translation Layer with region disaggregation.

Section V-D of the paper: the logical NAND address space is split at a
*disaggregation point* into a block region (Main-LSM / file system) and a
key-value region (Dev-LSM).  The FTL maps each region's logical pages onto
physical pages drawn from disjoint block pools, so "there are no issues of
overlapping logical NAND pages between the two interfaces".

This FTL is functional: it tracks logical->physical maps, page validity,
per-region free-block pools, and performs greedy garbage collection when a
region runs out of free blocks.  Data payloads are optional (tests use
them; the large simulations map metadata only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .geometry import NandGeometry

__all__ = ["Ftl", "Region", "FtlError", "GcStats"]

_INVALID = -1


class FtlError(RuntimeError):
    """Raised on invalid FTL operations (out-of-range LPN, full region)."""


@dataclass
class GcStats:
    invocations: int = 0
    pages_moved: int = 0
    blocks_erased: int = 0


@dataclass
class Region:
    """A contiguous logical-page range bound to a private physical pool."""

    name: str
    lpn_start: int
    lpn_count: int
    free_blocks: list[int] = field(default_factory=list)
    used_blocks: set[int] = field(default_factory=set)
    open_block: int = _INVALID
    next_page_in_block: int = 0

    def contains(self, lpn: int) -> bool:
        return self.lpn_start <= lpn < self.lpn_start + self.lpn_count


class Ftl:
    """Disaggregated page-mapping FTL over a :class:`NandGeometry`."""

    def __init__(self, geometry: NandGeometry, split_fraction: float = 0.75,
                 op_fraction: float = 0.07):
        """``split_fraction`` of the logical space goes to the block region,
        the rest to the KV region.  ``op_fraction`` of physical blocks are
        over-provisioning (GC headroom)."""
        if not 0.0 < split_fraction < 1.0:
            raise ValueError("split_fraction must be in (0, 1)")
        if not 0.0 <= op_fraction < 0.5:
            raise ValueError("op_fraction must be in [0, 0.5)")
        self.geometry = geometry
        g = geometry
        op_blocks = max(2, int(g.total_blocks * op_fraction))
        logical_pages = (g.total_blocks - op_blocks) * g.pages_per_block

        block_pages = int(logical_pages * split_fraction)
        kv_pages = logical_pages - block_pages
        self.disaggregation_point = block_pages

        block_phys = int(g.total_blocks * split_fraction)
        all_blocks = list(range(g.total_blocks))
        self.regions: dict[str, Region] = {
            "block": Region("block", 0, block_pages,
                            free_blocks=all_blocks[:block_phys]),
            "kv": Region("kv", block_pages, kv_pages,
                         free_blocks=all_blocks[block_phys:]),
        }

        self._l2p: dict[int, int] = {}
        self._p2l: dict[int, int] = {}  # valid physical page -> owning lpn
        self._data: dict[int, Any] = {}
        self.gc_stats = {"block": GcStats(), "kv": GcStats()}

        # Wear / reliability bookkeeping for the NAND error model
        # (repro.device.error_model).  Pure counters — they never alter
        # allocation order or timing, so attaching them is trajectory-free.
        self.program_counts: dict[int, int] = {}   # block -> pages programmed
        self.erase_counts: dict[int, int] = {}     # block -> P/E cycles
        self.retired_blocks: set[int] = set()      # grown bad blocks
        self.last_programmed_block = _INVALID
        self.last_erased_block = _INVALID

    # -- lookup ----------------------------------------------------------
    @property
    def total_logical_pages(self) -> int:
        return sum(r.lpn_count for r in self.regions.values())

    def state_digest(self) -> dict:
        """FTL occupancy + wear for journal digest checkpoints.

        Aggregates (counts and sums) rather than raw maps keep the dict
        cheap to hash at every checkpoint while still flipping on any
        divergent program, erase, GC move or block retirement.
        """
        return {
            "mapped": len(self._l2p),
            "programs": sum(self.program_counts.values()),
            "erases": sum(self.erase_counts.values()),
            "retired": sorted(self.retired_blocks),
            "last_programmed": self.last_programmed_block,
            "last_erased": self.last_erased_block,
            "regions": {
                name: [len(r.free_blocks), len(r.used_blocks),
                       r.open_block, r.next_page_in_block]
                for name, r in self.regions.items()
            },
            "gc": {
                name: [s.invocations, s.pages_moved, s.blocks_erased]
                for name, s in self.gc_stats.items()
            },
        }

    def region_of(self, lpn: int) -> Region:
        for r in self.regions.values():
            if r.contains(lpn):
                return r
        raise FtlError(f"LPN {lpn} outside logical space")

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise FtlError(f"unknown region {name!r}") from None

    # -- allocation --------------------------------------------------------
    def _alloc_ppn(self, region: Region) -> int:
        g = self.geometry
        tried_gc = False
        while True:
            if (region.open_block != _INVALID
                    and region.next_page_in_block < g.pages_per_block):
                blk = region.open_block
                ppn = blk * g.pages_per_block + region.next_page_in_block
                region.next_page_in_block += 1
                self.program_counts[blk] = self.program_counts.get(blk, 0) + 1
                self.last_programmed_block = blk
                return ppn
            if region.free_blocks:
                blk = region.free_blocks.pop(0)
                if blk in self.retired_blocks:
                    continue          # grown bad block: never reused
                region.open_block = blk
                region.used_blocks.add(blk)
                region.next_page_in_block = 0
                continue
            if tried_gc:
                raise FtlError(f"region {region.name!r} out of space")
            # GC's page moves recurse into _alloc_ppn and may consume the
            # freed block immediately, so re-evaluate the open block after.
            self._collect(region)
            tried_gc = True

    # -- public API ----------------------------------------------------------
    def write(self, lpn: int, data: Any = None) -> int:
        """Map ``lpn`` to a fresh physical page; returns the PPN."""
        region = self.region_of(lpn)
        old = self._l2p.get(lpn, _INVALID)
        ppn = self._alloc_ppn(region)
        if old != _INVALID:
            self._p2l.pop(old, None)
            self._data.pop(old, None)
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        if data is not None:
            self._data[ppn] = data
        return ppn

    def write_batch(self, lpns: Iterable[int]) -> list[int]:
        """Map a batch of logical pages; returns the PPNs in order.

        Metadata companion of the device layers' macro events (channel
        bursts map whole page runs at once).  Strictly equivalent to
        calling :meth:`write` per LPN — same allocation order, same wear
        counters, same ``state_digest`` — so batching call sites cannot
        perturb golden trajectories.
        """
        return [self.write(lpn) for lpn in lpns]

    def read(self, lpn: int) -> Any:
        """Return the payload at ``lpn`` (None if written without payload)."""
        ppn = self._l2p.get(lpn, _INVALID)
        if ppn == _INVALID:
            raise FtlError(f"LPN {lpn} unmapped")
        return self._data.get(ppn)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._l2p

    def trim(self, lpn: int) -> None:
        """Unmap a logical page (discard)."""
        ppn = self._l2p.pop(lpn, _INVALID)
        if ppn != _INVALID:
            self._p2l.pop(ppn, None)
            self._data.pop(ppn, None)

    def mapped_pages(self, region_name: str) -> int:
        region = self.region(region_name)
        return sum(1 for lpn in self._l2p if region.contains(lpn))

    def free_pages(self, region_name: str) -> int:
        region = self.region(region_name)
        g = self.geometry
        free = len(region.free_blocks) * g.pages_per_block
        if region.open_block != _INVALID:
            free += g.pages_per_block - region.next_page_in_block
        return free

    # -- reliability ------------------------------------------------------------
    def retire_block(self, block: int) -> None:
        """Mark ``block`` as a grown bad block: it is withdrawn from the
        free pool and never allocated again.  Valid pages it still holds
        stay mapped (readable) until GC moves them off; the block simply
        never returns to the pool after its final erase."""
        if not 0 <= block < self.geometry.total_blocks:
            raise FtlError(f"block {block} outside device")
        self.retired_blocks.add(block)
        for r in self.regions.values():
            if block in r.free_blocks:
                r.free_blocks.remove(block)
            if r.open_block == block:
                # Close it: remaining free pages in a bad block are unusable.
                r.open_block = _INVALID
                r.next_page_in_block = 0

    def wear(self, block: int) -> int:
        """P/E cycles block has seen (erase count)."""
        return self.erase_counts.get(block, 0)

    # -- garbage collection ----------------------------------------------------
    def _valid_pages_by_block(self, region: Region) -> dict[int, list[int]]:
        g = self.geometry
        out: dict[int, list[int]] = {b: [] for b in region.used_blocks}
        for ppn, lpn in self._p2l.items():
            if region.contains(lpn):
                out.setdefault(ppn // g.pages_per_block, []).append(ppn)
        return out

    def _collect(self, region: Region) -> None:
        """Greedy GC: erase the block with the fewest valid pages.

        Valid pages are copied forward.  This is metadata-only; callers
        model GC I/O time if they care (our simulations size regions so GC
        stays rare, matching the paper's 600 s runs on a 1 TB device).
        """
        stats = self.gc_stats[region.name]
        stats.invocations += 1
        by_block = self._valid_pages_by_block(region)
        victims = sorted(
            (b for b in region.used_blocks if b != region.open_block),
            key=lambda b: (len(by_block.get(b, [])), b),
        )
        if not victims:
            return
        victim = victims[0]
        valid = by_block.get(victim, [])
        if len(valid) >= self.geometry.pages_per_block:
            return  # nothing reclaimable
        region.used_blocks.discard(victim)
        stats.blocks_erased += 1
        self.erase_counts[victim] = self.erase_counts.get(victim, 0) + 1
        self.last_erased_block = victim
        # Detach valid pages first so their copies cannot land on the victim.
        moved = []
        for ppn in valid:
            lpn = self._p2l.pop(ppn)
            moved.append((lpn, self._data.pop(ppn, None)))
            self._l2p.pop(lpn, None)
        if victim not in self.retired_blocks:
            region.free_blocks.append(victim)
        for lpn, data in moved:
            new_ppn = self._alloc_ppn(region)
            self._l2p[lpn] = new_ppn
            self._p2l[new_ppn] = lpn
            if data is not None:
                self._data[new_ppn] = data
            stats.pages_moved += 1
