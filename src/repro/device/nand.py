"""NAND flash array timing model.

The array is the shared backend behind both interfaces of the hybrid SSD.
Service of an I/O of ``n`` bytes takes ``op-latency + n / op-bandwidth``
where the bandwidths derive from geometry (channel/way pipelining) clamped
to a measured device peak (the Cosmos+ peaks at ~630 MB/s, Section III-A).

Requests are served FIFO through a shared channel resource — this is what
makes host flush/compaction I/O and redirected KV writes contend for the
same NAND, a first-order effect for KVACCEL (the KV region shares the NAND
with the block region).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..faults.registry import fault_point
from ..sim import Environment, PriorityResource, Resource
from .geometry import MiB, NandGeometry
from .pcie import MACRO_MAX, TrafficLedger

__all__ = ["NandArray"]


class NandArray:
    """Timing front-end for the raw NAND behind the FTL."""

    def __init__(
        self,
        env: Environment,
        geometry: NandGeometry,
        peak_bandwidth: Optional[float] = 630 * MiB,
        lanes: Optional[int] = None,
        priority_scheduling: bool = False,
    ):
        self.env = env
        self.geometry = geometry
        cap = peak_bandwidth if peak_bandwidth else float("inf")
        self.read_bw = min(geometry.peak_read_bw, cap)
        self.program_bw = min(geometry.peak_program_bw, cap)
        # Default: one FIFO lane at full array bandwidth.  The FTL stripes
        # any single request across all channels/ways, so one sequential
        # stream already reaches device peak; concurrency shows up as
        # queueing, which is how a saturated SSD behaves.  Pass ``lanes`` to
        # model per-stream channel partitioning instead.
        # ``priority_scheduling`` swaps the queue for a priority queue
        # (SILK-style: latency-critical flush/WAL I/O jumps ahead of
        # background compaction I/O).
        self.priority_scheduling = priority_scheduling
        if priority_scheduling:
            self._res = PriorityResource(env, capacity=lanes or 1)
        else:
            self._res = Resource(env, capacity=lanes or 1)
        self.ledger = TrafficLedger(bucket=1.0)
        self.busy_time = 0.0
        # Optional repro.device.error_model.NandErrorModel; None keeps the
        # array perfect and the io() path zero-cost (one attribute read).
        self.error_model = None
        tel = env.telemetry
        if tel is not None:
            # Per-bucket busy seconds; divide by the bucket period for the
            # busy fraction the paper quotes for the Cosmos+ channels.
            tel.deriv("nand.busy_time", lambda: self.busy_time)
        t = geometry.timing
        self._lat_read = t.t_read
        self._lat_program = t.t_program
        self._lat_erase = t.t_erase

    def service_time(self, op: str, nbytes: float) -> float:
        if op == "read":
            return self._lat_read + nbytes / self.read_bw
        if op == "program":
            return self._lat_program + nbytes / self.program_bw
        if op == "erase":
            return self._lat_erase
        raise ValueError(f"unknown NAND op {op!r}")

    def io(self, op: str, nbytes: float, priority: int = 0) -> Generator:
        """Perform a NAND operation (blocking process generator).

        With multiple lanes, the effective per-request bandwidth is the
        whole-array bandwidth divided by the lane count, so aggregate
        concurrent throughput equals the array peak.

        ``priority`` matters only with ``priority_scheduling``: lower
        values are served first (0 = latency-critical, e.g. flush/WAL;
        higher = background, e.g. compaction).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        tr = self.env.tracer
        # Span actor defaults to the calling process, so NAND time nests
        # inside the flush / compaction / Dev-LSM span that issued it.
        _sp = (tr.begin("nand", f"nand.{op}",
                        args={"bytes": nbytes, "priority": priority})
               if tr is not None else None)
        if self.env.faults is not None or self.env.journal is not None:
            # Fault sites: nand.read / nand.program / nand.erase.
            yield from fault_point(self.env, f"nand.{op}")
        dt = self.service_time(op, nbytes)
        if self._res.capacity > 1 and op != "erase":
            lat = {"read": self._lat_read, "program": self._lat_program}[op]
            dt = lat + (dt - lat) * self._res.capacity
        err = None
        if self.error_model is not None:
            # Wear-driven failures + ECC read-retry latency tails.  The
            # command occupies the media for its (stretched) service time
            # and then completes with the error status, like real NAND.
            extra, err = self.error_model.on_io(op, nbytes)
            dt += extra
        req = (self._res.request(priority=priority) if self.priority_scheduling
               else self._res.request())
        lp = self.env.lineage
        with req:
            if lp is not None:
                lp.enter("queue")
            try:
                yield req
            finally:
                if lp is not None:
                    lp.leave()
            t0 = self.env.now
            if lp is not None:
                lp.enter("nand")
            try:
                yield self.env.timeout(dt)
            finally:
                if lp is not None:
                    lp.leave()
            self.busy_time += dt
            self.ledger.record(t0, self.env.now, nbytes)
        if err is not None:
            raise err
        if _sp is not None:
            tr.end(_sp)

    def io_burst(self, ops, priority: int = 0) -> Generator:
        """Serve a channel burst of NAND operations as macro events.

        ``ops`` is a sequence of ``(op, nbytes)`` pairs served in order.
        Groups of up to :data:`~repro.device.pcie.MACRO_MAX` operations
        share one scheduled kernel event (one channel grant + one timeout
        for the summed service time); the channel is re-requested between
        groups so concurrent flush/compaction traffic interleaves at group
        granularity, like the scalar FIFO.  Per-op semantics are preserved:
        every op hits its ``nand.<op>`` fault site, is ledgered over the
        exact sub-interval it held the channel, and consults the error
        model.  An op that errors truncates the burst — it occupies the
        media for its (stretched) service time and then the burst completes
        with the error status, exactly like :meth:`io`.
        """
        if not ops:
            return
        if len(ops) == 1:
            op, nbytes = ops[0]
            yield from self.io(op, nbytes, priority=priority)
            return
        env = self.env
        tr = env.tracer
        _sp = (tr.begin("nand", "nand.burst",
                        args={"ops": len(ops),
                              "bytes": sum(nb for _o, nb in ops),
                              "priority": priority})
               if tr is not None else None)
        macro = env.macro
        macro.bursts += 1
        probes = env.faults is not None or env.journal is not None
        lanes = self._res.capacity
        lat = {"read": self._lat_read, "program": self._lat_program}
        lp = env.lineage
        err = None
        i = 0
        n = len(ops)
        while i < n and err is None:
            group = ops[i:i + MACRO_MAX]
            i += len(group)
            served = []          # (nbytes, dt) actually occupying the media
            for op, nbytes in group:
                if nbytes < 0:
                    raise ValueError("nbytes must be >= 0")
                if probes:
                    yield from fault_point(env, f"nand.{op}")
                dt = self.service_time(op, nbytes)
                if lanes > 1 and op != "erase":
                    dt = lat[op] + (dt - lat[op]) * lanes
                if self.error_model is not None:
                    extra, err = self.error_model.on_io(op, nbytes)
                    dt += extra
                served.append((nbytes, dt))
                macro.ops += 1
                if err is not None:
                    break        # truncate: ops after the failure never ran
            req = (self._res.request(priority=priority)
                   if self.priority_scheduling else self._res.request())
            with req:
                if lp is not None:
                    lp.enter("queue")
                try:
                    yield req
                finally:
                    if lp is not None:
                        lp.leave()
                t0 = env.now
                total_dt = 0.0
                for _nb, dt in served:
                    total_dt += dt
                if lp is not None:
                    lp.enter("nand")
                try:
                    yield env.timeout(total_dt)
                finally:
                    if lp is not None:
                        lp.leave()
                macro.events += 1
                self.busy_time += total_dt
                a = t0
                for nbytes, dt in served:
                    b = a + dt
                    self.ledger.record(a, b, nbytes)
                    a = b
        if err is not None:
            raise err
        if _sp is not None:
            tr.end(_sp)

    @property
    def queue_len(self) -> int:
        return len(self._res.queue)
