"""Block interface of the hybrid SSD.

Byte-extent reads/writes over the FTL's block region: the traditional NVMe
path the host file system and Main-LSM live on.  Every operation charges
the PCIe link (host<->device DMA) and the NAND array (media time), which is
what lets the experiments observe PCIe idle windows during compaction's
merge phases.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Environment
from .ftl import Ftl, FtlError
from .nand import NandArray
from .pcie import PcieLink

__all__ = ["BlockDevice"]


class BlockDevice:
    """Page-granular block device over one FTL region."""

    def __init__(self, env: Environment, ftl: Ftl, nand: NandArray, pcie: PcieLink,
                 region: str = "block"):
        self.env = env
        self.ftl = ftl
        self.nand = nand
        self.pcie = pcie
        self.region_name = region
        self._region = ftl.region(region)
        self.page_size = ftl.geometry.page_size
        self.bytes_written = 0
        self.bytes_read = 0
        # Optional repro.resil.RetryExecutor; None keeps I/O issue direct.
        # A retried write re-runs the FTL mapping, so the reissued program
        # lands on freshly allocated pages (how real drives recover from a
        # program failure).
        self.retry = None

    def _call(self, factory, site: str) -> Generator:
        if self.retry is None:
            result = yield from factory()
        else:
            result = yield from self.retry.call(factory, site=site)
        return result

    @property
    def capacity_bytes(self) -> int:
        return self._region.lpn_count * self.page_size

    def _pages(self, offset: int, nbytes: int) -> range:
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")
        if offset + nbytes > self.capacity_bytes:
            raise FtlError(
                f"extent [{offset}, {offset + nbytes}) beyond device capacity "
                f"{self.capacity_bytes}"
            )
        first = offset // self.page_size
        last = (offset + max(nbytes, 1) - 1) // self.page_size
        base = self._region.lpn_start
        return range(base + first, base + last + 1)

    def write(self, offset: int, nbytes: int, priority: int = 0) -> Generator:
        """Write ``nbytes`` at byte ``offset`` (blocking process generator).

        Host DMA over PCIe happens first, then the NAND program; the two
        stages pipeline across requests but serialize within one request,
        matching a simple non-overlapped controller.  ``priority`` is
        honored when the NAND array runs priority scheduling.
        """
        return self._call(lambda: self._write(offset, nbytes, priority),
                          "block.write")

    def _write(self, offset: int, nbytes: int, priority: int = 0) -> Generator:
        pages = self._pages(offset, nbytes)
        self.ftl.write_batch(pages)
        self.bytes_written += nbytes
        yield from self.pcie.transfer(nbytes)
        yield from self.nand.io("program", nbytes, priority=priority)

    def read(self, offset: int, nbytes: int, priority: int = 0) -> Generator:
        """Read ``nbytes`` at byte ``offset`` (blocking process generator)."""
        return self._call(lambda: self._read(offset, nbytes, priority),
                          "block.read")

    def _read(self, offset: int, nbytes: int, priority: int = 0) -> Generator:
        self._pages(offset, nbytes)  # bounds check
        self.bytes_read += nbytes
        yield from self.nand.io("read", nbytes, priority=priority)
        yield from self.pcie.transfer(nbytes, direction="rx")

    def trim(self, offset: int, nbytes: int) -> None:
        """Discard an extent (file deletion punches holes here)."""
        for lpn in self._pages(offset, nbytes):
            self.ftl.trim(lpn)
