"""Wear-driven NAND failure model.

Real NAND fails in three host-visible ways, all of which get likelier as
blocks accumulate P/E cycles:

* **program failures** — a page program reports bad status; the FTL
  allocates a different page on reissue, and a block that keeps failing
  programs is *retired* as a grown bad block.  Surfaced to the host as a
  ``transient`` :class:`DeviceError` (the retry stack reissues, and the
  FTL's next allocation lands elsewhere).
* **erase failures** — GC's erase reports bad status; the block is
  retired on the spot.  Masked from the host (the FTL just eats a block
  of capacity), matching how real drives handle them.
* **ECC read retries** — a worn page needs extra sensing rounds, each
  costing ``read_retry_latency``: the latency *tail* of an aging drive.
  A read that exhausts its retry rounds may come back uncorrectable —
  a ``media`` error, non-retryable by the host.

The model hangs off :class:`~repro.device.nand.NandArray` (``error_model``
attribute, None by default — the usual zero-cost guard) and reads per-block
wear from the FTL's counters (``program_counts`` / ``erase_counts`` /
``last_programmed_block``).  Failure draws come from a private
``random.Random`` seeded from the fault seed, so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..resil.errors import DeviceError, MEDIA, TRANSIENT
from ..sim import Environment
from .ftl import Ftl

__all__ = ["NandErrorConfig", "NandErrorModel"]


@dataclass(frozen=True)
class NandErrorConfig:
    """Failure probabilities, each interpolated from ``*_base`` at zero
    wear to ``*_max`` at ``pe_cycle_limit`` erases."""

    seed: Optional[int] = None            # default: the env's fault seed
    pe_cycle_limit: int = 3000            # rated P/E cycles
    program_fail_base: float = 0.0
    program_fail_max: float = 0.02
    erase_fail_base: float = 0.0
    erase_fail_max: float = 0.02
    read_retry_base: float = 0.0          # chance a read needs extra sensing
    read_retry_max: float = 0.5
    read_retry_latency: float = 60e-6     # seconds per extra sensing round
    read_retry_rounds: int = 3            # max extra rounds before giving up
    uncorrectable_prob: float = 0.05      # read that exhausted its rounds
    retire_after_program_fails: int = 2   # consecutive fails -> grown bad

    def __post_init__(self) -> None:
        if self.pe_cycle_limit < 1:
            raise ValueError("pe_cycle_limit must be >= 1")
        for name in ("program_fail_base", "program_fail_max",
                     "erase_fail_base", "erase_fail_max",
                     "read_retry_base", "read_retry_max",
                     "uncorrectable_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.read_retry_latency < 0 or self.read_retry_rounds < 0:
            raise ValueError("read-retry parameters must be >= 0")
        if self.retire_after_program_fails < 1:
            raise ValueError("retire_after_program_fails must be >= 1")


class NandErrorModel:
    """Stochastic failure source consulted by :meth:`NandArray.io`."""

    def __init__(self, env: Environment, ftl: Ftl,
                 config: Optional[NandErrorConfig] = None):
        self.env = env
        self.ftl = ftl
        self.config = config or NandErrorConfig()
        seed = self.config.seed
        if seed is None:
            reg = getattr(env, "faults", None)
            if reg is not None:
                seed = reg.seed
            else:
                from ..faults.registry import DEFAULT_SEED
                seed = DEFAULT_SEED
        # String seeding goes through SHA-512: stable across processes.
        self.rng = random.Random(f"{seed}:nand-errors")
        self.program_fails = 0
        self.erase_fails = 0
        self.read_retry_rounds = 0
        self.uncorrectable_reads = 0
        self.grown_bad_blocks = 0
        self._fail_streak: dict[int, int] = {}   # block -> consecutive fails

    def __repr__(self) -> str:
        return (f"NandErrorModel(program_fails={self.program_fails}, "
                f"erase_fails={self.erase_fails}, "
                f"bad_blocks={self.grown_bad_blocks})")

    # -- wear ----------------------------------------------------------------
    def _wear_frac(self, block: int) -> float:
        if block < 0:
            return 0.0
        return min(1.0, self.ftl.wear(block) / self.config.pe_cycle_limit)

    def _prob(self, base: float, peak: float, block: int) -> float:
        return base + (peak - base) * self._wear_frac(block)

    # -- the hook ------------------------------------------------------------
    def on_io(self, op: str, nbytes: float) -> Tuple[float, Optional[DeviceError]]:
        """Called once per NAND op; returns (extra latency seconds, error
        to complete the command with, or None)."""
        cfg = self.config
        rng = self.rng
        if op == "program":
            block = self.ftl.last_programmed_block
            if rng.random() < self._prob(cfg.program_fail_base,
                                         cfg.program_fail_max, block):
                self.program_fails += 1
                streak = self._fail_streak.get(block, 0) + 1
                self._fail_streak[block] = streak
                if streak >= cfg.retire_after_program_fails and block >= 0:
                    self._retire(block)
                return 0.0, DeviceError(
                    TRANSIENT, site="nand.program",
                    detail=f"program failure in block {block}")
            if block >= 0:
                self._fail_streak.pop(block, None)
            return 0.0, None
        if op == "erase":
            block = self.ftl.last_erased_block
            if rng.random() < self._prob(cfg.erase_fail_base,
                                         cfg.erase_fail_max, block):
                self.erase_fails += 1
                if block >= 0:
                    self._retire(block)
                # Masked: the FTL loses the block, the host sees nothing.
            return 0.0, None
        if op == "read":
            p = self._prob(cfg.read_retry_base, cfg.read_retry_max,
                           self.ftl.last_programmed_block)
            rounds = 0
            while rounds < cfg.read_retry_rounds and rng.random() < p:
                rounds += 1
            if rounds == 0:
                return 0.0, None
            self.read_retry_rounds += rounds
            extra = rounds * cfg.read_retry_latency
            tel = self.env.telemetry
            if tel is not None:
                tel.add("nand.read_retries", float(rounds))
            if (rounds == cfg.read_retry_rounds
                    and rng.random() < cfg.uncorrectable_prob):
                self.uncorrectable_reads += 1
                return extra, DeviceError(MEDIA, site="nand.read",
                                          detail="uncorrectable ECC error")
            return extra, None
        return 0.0, None

    def _retire(self, block: int) -> None:
        if block not in self.ftl.retired_blocks:
            self.ftl.retire_block(block)
            self.grown_bad_blocks += 1
        self._fail_streak.pop(block, None)

    def snapshot(self) -> dict:
        return {
            "program_fails": self.program_fails,
            "erase_fails": self.erase_fails,
            "read_retry_rounds": self.read_retry_rounds,
            "uncorrectable_reads": self.uncorrectable_reads,
            "grown_bad_blocks": self.grown_bad_blocks,
            "retired_blocks": sorted(self.ftl.retired_blocks),
        }
