"""PCIe link model and byte-traffic accounting.

The paper measures host<->device PCIe traffic at 1-second granularity with
Intel PCM (Figs 4, 5, 14).  :class:`TrafficLedger` is our PCM: every
transfer records its byte count spread over the simulated-time interval it
occupied, so per-second buckets can be read back as a time series.

:class:`BandwidthPipe` models a shared, FIFO link: a transfer of ``n`` bytes
holds the pipe for ``latency + n / bandwidth`` seconds.  The PCIe pipe and
the NAND backend pipe are both instances; the PCIe pipe also owns a ledger.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from ..faults.registry import DELAY, touch
from ..sim import Environment, Resource

__all__ = ["TrafficLedger", "BandwidthPipe", "PcieLink", "MACRO_MAX"]

# Macro-event group size: burst APIs (transfer_burst, NandArray.io_burst)
# coalesce at most this many operations into one scheduled kernel event,
# releasing and re-requesting their channel between groups so a burst can
# never starve concurrent traffic for more than one group's service time.
MACRO_MAX = 16


class TrafficLedger:
    """Per-second byte accounting, PCM-style.

    Bytes of a transfer spanning [t0, t1) are attributed to 1-second buckets
    proportionally to the overlap, matching how a hardware counter sampled
    once a second would see a long DMA.
    """

    def __init__(self, bucket: float = 1.0):
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self._buckets: dict[int, float] = {}
        self.total_bytes = 0.0

    def record(self, t0: float, t1: float, nbytes: float) -> None:
        """Attribute ``nbytes`` transferred during [t0, t1)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if t1 < t0:
            raise ValueError("t1 < t0")
        self.total_bytes += nbytes
        if nbytes == 0:
            return
        if t1 == t0:
            self._buckets[int(t0 / self.bucket)] = (
                self._buckets.get(int(t0 / self.bucket), 0.0) + nbytes
            )
            return
        rate = nbytes / (t1 - t0)
        first = int(t0 / self.bucket)
        last = int(math.ceil(t1 / self.bucket)) - 1
        for b in range(first, last + 1):
            lo = max(t0, b * self.bucket)
            hi = min(t1, (b + 1) * self.bucket)
            if hi > lo:
                self._buckets[b] = self._buckets.get(b, 0.0) + rate * (hi - lo)

    def series(self, t_end: Optional[float] = None) -> tuple[list[float], list[float]]:
        """Return (times, bytes-per-bucket) from t=0 to t_end (or max seen)."""
        if not self._buckets and t_end is None:
            return [], []
        last = int(math.ceil((t_end or 0) / self.bucket)) - 1 if t_end else max(self._buckets)
        if self._buckets:
            last = max(last, max(self._buckets))
        times = [(b + 1) * self.bucket for b in range(0, last + 1)]
        values = [self._buckets.get(b, 0.0) for b in range(0, last + 1)]
        return times, values

    def bytes_in(self, t0: float, t1: float) -> float:
        """Total bytes attributed to [t0, t1), prorating edge buckets."""
        total = 0.0
        for b, v in self._buckets.items():
            lo, hi = b * self.bucket, (b + 1) * self.bucket
            overlap = min(hi, t1) - max(lo, t0)
            if overlap > 0:
                total += v * overlap / self.bucket
        return total


class BandwidthPipe:
    """A FIFO bandwidth-limited channel with optional per-transfer latency.

    ``transfer`` is a process generator: ``yield from pipe.transfer(n)``
    blocks the calling process for queueing + service time and records the
    service interval in the ledger (if any).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        ledger: Optional[TrafficLedger] = None,
        name: str = "pipe",
        lanes: int = 1,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.env = env
        self.bandwidth = bandwidth
        self.latency = latency
        self.ledger = ledger
        self.name = name
        self._res = Resource(env, capacity=max(1, lanes))
        self.busy_time = 0.0

    def service_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float, direction: str = "tx") -> Generator:
        """Move ``nbytes`` through the pipe (blocking process generator).

        ``direction`` is accounting-only ("tx" = host->device, "rx" =
        device->host); the pipe itself is symmetric, but telemetry keeps
        per-direction byte channels the way PCM reports the link.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if direction not in ("tx", "rx"):
            raise ValueError(f"direction must be tx or rx, not {direction!r}")
        tr = self.env.tracer
        _sp = (tr.begin("pcie", f"{self.name}.transfer",
                        args={"bytes": nbytes, "dir": direction})
               if tr is not None else None)
        injected_delay = 0.0
        if self.env.faults is not None or self.env.journal is not None:
            # Fault site: e.g. "pcie.transfer" (modeled transfer drop/delay).
            # DELAY is folded into the service interval below — the slowed
            # transfer holds the link and the ledger/busy-time/telemetry
            # attribute its bytes across the stretched window, instead of
            # the extra latency vanishing between samples.
            action = touch(self.env, f"{self.name}.transfer")
            if action is not None and action.kind == DELAY:
                injected_delay = action.delay
        lp = self.env.lineage
        with self._res.request() as req:
            if lp is not None:
                lp.enter("queue")
            try:
                yield req
            finally:
                if lp is not None:
                    lp.leave()
            t0 = self.env.now
            dt = self.service_time(nbytes) + injected_delay
            if lp is not None:
                lp.enter("pcie")
            try:
                yield self.env.timeout(dt)
            finally:
                if lp is not None:
                    lp.leave()
            self.busy_time += dt
            if self.ledger is not None:
                self.ledger.record(t0, self.env.now, nbytes)
            tel = self.env.telemetry
            if tel is not None:
                tel.add(f"{self.name}.{direction}_bytes", nbytes)
        if _sp is not None:
            tr.end(_sp)

    def transfer_burst(self, sizes, direction: str = "tx") -> Generator:
        """Move a sequence of transfers as macro events (one scheduled
        kernel event per group of up to :data:`MACRO_MAX` chunks).

        Semantics match a back-to-back sequence of :meth:`transfer` calls:
        every chunk still hits its fault probe, is recorded individually in
        the ledger over the exact sub-interval it occupied the pipe, and is
        reported to telemetry — only the kernel-event count changes.  The
        pipe is released between groups whenever other requesters are
        queued, preserving FIFO fairness at group granularity.
        """
        if not sizes:
            return
        if len(sizes) == 1:
            yield from self.transfer(sizes[0], direction)
            return
        if direction not in ("tx", "rx"):
            raise ValueError(f"direction must be tx or rx, not {direction!r}")
        for nbytes in sizes:
            if nbytes < 0:
                raise ValueError("nbytes must be >= 0")
        env = self.env
        tr = env.tracer
        _sp = (tr.begin("pcie", f"{self.name}.transfer_burst",
                        args={"bytes": sum(sizes), "chunks": len(sizes),
                              "dir": direction})
               if tr is not None else None)
        macro = env.macro
        macro.bursts += 1
        macro.ops += len(sizes)
        probes = env.faults is not None or env.journal is not None
        lp = env.lineage
        i = 0
        n = len(sizes)
        while i < n:
            group = sizes[i:i + MACRO_MAX]
            i += len(group)
            # Per-chunk service times, fault delays folded in (same site
            # and DELAY semantics as the scalar path).
            dts = []
            for nbytes in group:
                injected = 0.0
                if probes:
                    action = touch(env, f"{self.name}.transfer")
                    if action is not None and action.kind == DELAY:
                        injected = action.delay
                dts.append(self.service_time(nbytes) + injected)
            with self._res.request() as req:
                if lp is not None:
                    lp.enter("queue")
                try:
                    yield req
                finally:
                    if lp is not None:
                        lp.leave()
                t0 = env.now
                total_dt = 0.0
                for dt in dts:
                    total_dt += dt
                if lp is not None:
                    lp.enter("pcie")
                try:
                    yield env.timeout(total_dt)
                finally:
                    if lp is not None:
                        lp.leave()
                macro.events += 1
                self.busy_time += total_dt
                if self.ledger is not None:
                    # Per-chunk attribution over the exact sub-interval
                    # each chunk held the pipe within the macro event.
                    a = t0
                    for nbytes, dt in zip(group, dts):
                        b = a + dt
                        self.ledger.record(a, b, nbytes)
                        a = b
                tel = env.telemetry
                if tel is not None:
                    tel.add(f"{self.name}.{direction}_bytes", sum(group))
        if _sp is not None:
            tr.end(_sp)

    @property
    def queue_len(self) -> int:
        return len(self._res.queue)


class PcieLink(BandwidthPipe):
    """The host<->device PCIe link.

    Defaults to PCIe Gen2 x8 (4 GB/s theoretical, as in the paper's setup).
    All host-visible transfers — block reads/writes, NVMe-KV command
    payloads, bulk-scan DMA — go through here, so its ledger is exactly what
    Intel PCM measured in the paper.
    """

    GEN2_X8 = 4 * 1024**3  # bytes/s

    def __init__(
        self,
        env: Environment,
        bandwidth: float = GEN2_X8,
        latency: float = 5e-6,
        bucket: float = 1.0,
    ):
        super().__init__(
            env,
            bandwidth=bandwidth,
            latency=latency,
            ledger=TrafficLedger(bucket=bucket),
            name="pcie",
        )
        tel = env.telemetry
        if tel is not None:
            # Pre-declare both directions so an idle link still exports
            # zero-valued series (the zero-traffic health rule reads them).
            tel.rate("pcie.tx_bytes")
            tel.rate("pcie.rx_bytes")
