"""Multi-tenant key-value interface (paper Section V-D).

"Multi-tenancy on the block interface is supported by namespaces as
specified in the NVMe standard, while previous works on supporting
namespaces and multi-tenancy on the key-value interface are compatible
with KVACCEL's key-value interface implementation."

:class:`NamespacedKvInterface` realizes that: each KV namespace owns a
private :class:`~repro.device.DevLsm` (its own device-DRAM memtable quota
and runs), while all namespaces share the physical NAND array, the FTL's
KV region, the ARM core, and the PCIe link — so tenants are *logically*
isolated but *physically* contended, exactly the property the paper's
cited KV-SSD namespace work (HotStorage '21) provides.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..sim import Environment
from .cpu import CpuModel
from .devlsm import DevLsm, DevLsmConfig
from .ftl import Ftl
from .kv_dev import KvDevice, KvDeviceConfig
from .nand import NandArray
from .pcie import PcieLink

__all__ = ["NamespacedKvInterface", "KvNamespace"]


class KvNamespace:
    """One tenant's slice of the key-value interface."""

    def __init__(self, nsid: int, name: str, kv: KvDevice, quota_bytes: int):
        self.nsid = nsid
        self.name = name
        self.kv = kv
        self.quota_bytes = quota_bytes

    @property
    def used_bytes(self) -> int:
        return self.kv.devlsm.total_bytes

    @property
    def over_quota(self) -> bool:
        return self.used_bytes > self.quota_bytes


class NamespacedKvInterface:
    """Factory + registry of per-tenant KV namespaces on one device."""

    def __init__(
        self,
        env: Environment,
        ftl: Ftl,
        nand: NandArray,
        arm: CpuModel,
        pcie: PcieLink,
        host_cpu: CpuModel,
        devlsm_config: Optional[DevLsmConfig] = None,
        kv_config: Optional[KvDeviceConfig] = None,
    ):
        self.env = env
        self.ftl = ftl
        self.nand = nand
        self.arm = arm
        self.pcie = pcie
        self.host_cpu = host_cpu
        self.devlsm_config = devlsm_config or DevLsmConfig()
        self.kv_config = kv_config or KvDeviceConfig()
        self._namespaces: dict[int, KvNamespace] = {}
        self._next_nsid = 1
        self._kv_capacity = (ftl.region("kv").lpn_count
                             * ftl.geometry.page_size)

    # -- management --------------------------------------------------------
    def create(self, name: str, quota_bytes: int,
               memtable_bytes: Optional[int] = None) -> KvNamespace:
        """Create a tenant namespace with a KV-region quota.

        ``memtable_bytes`` optionally overrides the device-DRAM share of
        this tenant's Dev-LSM (the device DRAM is partitioned, so the sum
        over tenants should stay within the configured default budget).
        """
        if quota_bytes <= 0:
            raise ValueError("quota must be positive")
        allocated = sum(ns.quota_bytes for ns in self._namespaces.values())
        if allocated + quota_bytes > self._kv_capacity:
            raise ValueError(
                f"KV region exhausted: {allocated} + {quota_bytes} "
                f"> {self._kv_capacity}")
        cfg = self.devlsm_config
        if memtable_bytes is not None:
            cfg = replace(cfg, memtable_bytes=memtable_bytes)
        devlsm = DevLsm(self.env, self.ftl, self.nand, self.arm, config=cfg)
        kv = KvDevice(self.env, devlsm, self.pcie, self.host_cpu,
                      config=self.kv_config)
        ns = KvNamespace(self._next_nsid, name, kv, quota_bytes)
        self._namespaces[ns.nsid] = ns
        self._next_nsid += 1
        return ns

    def delete(self, nsid: int) -> None:
        ns = self._namespaces.pop(nsid, None)
        if ns is None:
            raise KeyError(f"no KV namespace {nsid}")
        ns.kv.devlsm.reset()

    def get(self, nsid: int) -> KvNamespace:
        try:
            return self._namespaces[nsid]
        except KeyError:
            raise KeyError(f"no KV namespace {nsid}") from None

    def namespaces(self) -> list:
        return sorted(self._namespaces.values(), key=lambda n: n.nsid)

    @property
    def total_used_bytes(self) -> int:
        return sum(ns.used_bytes for ns in self._namespaces.values())
