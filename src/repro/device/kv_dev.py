"""NVMe-KV command interface of the hybrid SSD.

The host talks to the Dev-LSM through these verbs (Section IV): PUT, GET,
DELETE, EXIST, iterator SEEK/NEXT, and the bulk range scan used by rollback.
Each command charges the PCIe link for the command capsule plus payload and
then executes inside the device (ARM core + NAND via :class:`DevLsm`).

This is the "stall path" of Figure 7(a): commands bypass the host file
system and block layer entirely — their only host-side cost is the NVMe
submission, modelled as ``host_submit_cost`` seconds of host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..faults.registry import DROP, DUPLICATE, fault_point
from ..sim import Environment
from ..types import KIND_DELETE, KIND_PUT, Entry, entry_size, make_entry, value_size
from .cpu import CpuModel
from .devlsm import DevIterator, DevLsm
from .pcie import PcieLink

__all__ = ["KvDevice", "KvDeviceConfig"]

# NVMe command capsule + completion overhead on the wire, bytes.
_CAPSULE_BYTES = 64 + 16


@dataclass
class KvDeviceConfig:
    host_submit_cost: float = 1.5e-6   # host CPU per NVMe-KV command (s)


class KvDevice:
    """Host-facing NVMe-KV endpoint wired to the in-device LSM."""

    def __init__(
        self,
        env: Environment,
        devlsm: DevLsm,
        pcie: PcieLink,
        host_cpu: CpuModel,
        config: Optional[KvDeviceConfig] = None,
    ):
        self.env = env
        self.devlsm = devlsm
        self.pcie = pcie
        self.host_cpu = host_cpu
        self.config = config or KvDeviceConfig()
        self.command_counts: dict[str, int] = {}
        # Fault-injection accounting: commands dropped on the wire and
        # compound commands executed twice by the device.
        self.lost_commands = 0
        self.duplicated_commands = 0
        # Optional repro.resil.RetryExecutor; None keeps command issue
        # direct (zero-cost).  With one installed, each verb re-executes
        # whole on retryable DeviceErrors — at-least-once issue, safe
        # because every verb is idempotent under same-seq replay.
        self.retry = None

    def _call(self, factory, site: str) -> Generator:
        """Dispatch one command through the retry executor when present."""
        if self.retry is None:
            result = yield from factory()
        else:
            result = yield from self.retry.call(factory, site=site)
        return result

    def _count(self, verb: str) -> None:
        self.command_counts[verb] = self.command_counts.get(verb, 0) + 1
        self.host_cpu.charge(self.config.host_submit_cost, tag="nvme_kv")
        tel = self.env.telemetry
        if tel is not None:
            tel.add("kv.commands")

    def _submit(self, site: str) -> Generator:
        """Probe the per-verb submission fault site; returns the fired
        action so the verb can honor DROP/DUPLICATE semantics."""
        if self.env.faults is None and self.env.journal is None:
            return None
        action = yield from fault_point(self.env, site)
        return action

    # -- point commands -----------------------------------------------------
    def put(self, key: bytes, seq: int, value) -> Generator:
        """KV PUT: ship key+value over PCIe, insert into Dev-LSM."""
        return self._call(lambda: self._put(key, seq, value), "kv.put")

    def _put(self, key: bytes, seq: int, value) -> Generator:
        self._count("put")
        action = yield from self._submit("kv.put.submit")
        if action is not None and action.kind == DROP:
            self.lost_commands += 1        # command lost on the wire
            return
        payload = _CAPSULE_BYTES + len(key) + value_size(value)
        tr = self.env.tracer
        _sp = (tr.begin("kv", "kv.put", args={"bytes": payload})
               if tr is not None else None)
        yield from self.pcie.transfer(payload)
        entry = make_entry(key, seq, value, kind=KIND_PUT)
        for _ in range(2 if action is not None
                       and action.kind == DUPLICATE else 1):
            yield from self.devlsm.put(entry)
        if action is not None and action.kind == DUPLICATE:
            self.duplicated_commands += 1
        if _sp is not None:
            tr.end(_sp)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "kv.put.complete")

    def put_batch(self, triples: list) -> Generator:
        """Batched KV PUT via a compound command (HotStorage '19 style).

        ``triples`` is a list of (key, seq, value).  One capsule + one
        payload transfer covers the batch; the Dev-LSM still ingests each
        record (per-op ARM cost, flush when the device memtable fills).
        """
        return self._call(lambda: self._put_batch(triples), "kv.put_batch")

    def _put_batch(self, triples: list) -> Generator:
        self._count("put_batch")
        action = yield from self._submit("kv.put_batch.submit")
        if action is not None and action.kind == DROP:
            self.lost_commands += 1        # whole compound command lost
            return
        payload = _CAPSULE_BYTES + sum(
            len(k) + value_size(v) for k, _s, v in triples)
        tr = self.env.tracer
        _sp = (tr.begin("kv", "kv.put_batch",
                        args={"bytes": payload, "records": len(triples)})
               if tr is not None else None)
        yield from self.pcie.transfer(payload)
        duplicate = action is not None and action.kind == DUPLICATE
        for _ in range(2 if duplicate else 1):
            for key, seq, value in triples:
                entry = make_entry(key, seq, value, kind=KIND_PUT)
                yield from self.devlsm.put(entry)
        if duplicate:
            self.duplicated_commands += 1
        if _sp is not None:
            tr.end(_sp)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "kv.put_batch.complete")

    def delete(self, key: bytes, seq: int) -> Generator:
        """KV DELETE: a tombstone entry in the Dev-LSM."""
        return self._call(lambda: self._delete(key, seq), "kv.delete")

    def _delete(self, key: bytes, seq: int) -> Generator:
        self._count("delete")
        action = yield from self._submit("kv.delete.submit")
        if action is not None and action.kind == DROP:
            self.lost_commands += 1
            return
        payload = _CAPSULE_BYTES + len(key)
        tr = self.env.tracer
        _sp = (tr.begin("kv", "kv.delete", args={"bytes": payload})
               if tr is not None else None)
        yield from self.pcie.transfer(payload)
        entry = make_entry(key, seq, None, kind=KIND_DELETE)
        for _ in range(2 if action is not None
                       and action.kind == DUPLICATE else 1):
            yield from self.devlsm.put(entry)
        if action is not None and action.kind == DUPLICATE:
            self.duplicated_commands += 1
        if _sp is not None:
            tr.end(_sp)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "kv.delete.complete")

    def get(self, key: bytes) -> Generator:
        """KV GET: returns the newest entry or None."""
        return self._call(lambda: self._get(key), "kv.get")

    def _get(self, key: bytes) -> Generator:
        self._count("get")
        yield from self._submit("kv.get.submit")
        yield from self.pcie.transfer(_CAPSULE_BYTES + len(key))
        entry = yield from self.devlsm.get(key)
        if entry is not None:
            yield from self.pcie.transfer(value_size(entry[3]),
                                          direction="rx")
        return entry

    def exist(self, key: bytes) -> Generator:
        """KV EXIST: membership probe without value transfer."""
        self._count("exist")
        yield from self.pcie.transfer(_CAPSULE_BYTES + len(key))
        entry = yield from self.devlsm.get(key)
        return entry is not None and entry[2] != KIND_DELETE

    # -- iterators ------------------------------------------------------------
    def create_iterator(self) -> Generator:
        """Open a device iterator (SEEK/NEXT served per-command)."""
        self._count("iter_open")
        yield from self.pcie.transfer(_CAPSULE_BYTES)
        it = yield from self.devlsm.create_iterator()
        return it

    def iter_seek(self, it: DevIterator, key: bytes) -> Generator:
        self._count("iter_seek")
        yield from self.pcie.transfer(_CAPSULE_BYTES + len(key))
        it.seek(key)
        if it.valid:
            yield from self.pcie.transfer(entry_size(it.entry()),
                                          direction="rx")
            return it.entry()
        return None

    def iter_next(self, it: DevIterator) -> Generator:
        """Advance and return the next entry (uncached — Table V's cost)."""
        self._count("iter_next")
        yield from self.pcie.transfer(_CAPSULE_BYTES)
        yield from self.devlsm.iter_next_cost()
        it.next()
        if it.valid:
            yield from self.pcie.transfer(entry_size(it.entry()),
                                          direction="rx")
            return it.entry()
        return None

    # -- bulk ops --------------------------------------------------------------
    def bulk_scan(self) -> Generator:
        """Bulky range scan of the whole Dev-LSM (rollback step 3-6)."""
        return self._call(self._bulk_scan, "kv.bulk_scan")

    def _bulk_scan(self) -> Generator:
        self._count("bulk_scan")
        yield from self._submit("kv.bulk_scan.start")
        tr = self.env.tracer
        _sp = (tr.begin("kv", "kv.bulk_scan") if tr is not None else None)
        yield from self.pcie.transfer(_CAPSULE_BYTES)
        entries = yield from self.devlsm.bulk_scan(self.pcie)
        if _sp is not None:
            tr.end(_sp, args={"entries": len(entries),
                              "bytes": sum(entry_size(e) for e in entries)})
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "kv.bulk_scan.complete")
        return entries

    def reset(self) -> Generator:
        """Reset the Dev-LSM (rollback step 8)."""
        return self._call(self._reset, "kv.reset")

    def _reset(self) -> Generator:
        self._count("reset")
        yield from self._submit("kv.reset.start")
        yield from self.pcie.transfer(_CAPSULE_BYTES)
        self.devlsm.reset()
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "kv.reset.complete")
        return None

    # -- introspection ----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.devlsm.is_empty

    @property
    def entry_count(self) -> int:
        return self.devlsm.entry_count
