"""CPU busy-time model for host cores and the device ARM core.

The paper's efficiency metric (Eq. 1) is throughput / average host CPU
utilisation, and ADOC's main cost is extra compaction threads burning host
CPU.  We therefore model CPUs as busy-time accounting with a simple
processor-sharing slowdown when more threads want CPU than cores exist.

``consume`` is a process generator: the calling simulated thread blocks for
the (possibly stretched) duration and the busy seconds land in a per-second
ledger so CPU% can be reported for any window.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Environment
from .pcie import TrafficLedger

__all__ = ["CpuModel"]


class CpuModel:
    """N-core CPU with per-second busy-time accounting."""

    def __init__(self, env: Environment, cores: int = 8, name: str = "cpu"):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.env = env
        self.cores = cores
        self.name = name
        self.ledger = TrafficLedger(bucket=1.0)  # "bytes" = busy core-seconds
        self.busy_by_tag: dict[str, float] = {}
        self._active = 0

    def consume(self, seconds: float, tag: str = "anon") -> Generator:
        """Burn ``seconds`` of CPU time on one core (process generator).

        If more threads are runnable than cores, wall time stretches by the
        oversubscription factor at entry (processor-sharing approximation);
        busy core-seconds recorded stay at ``seconds``.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        if seconds == 0:
            return
        self._active += 1
        stretch = max(1.0, self._active / self.cores)
        t0 = self.env.now
        lp = self.env.lineage
        if lp is not None:
            lp.enter("cpu")
        try:
            yield self.env.timeout(seconds * stretch)
        finally:
            if lp is not None:
                lp.leave()
            self._active -= 1
            self.ledger.record(t0, self.env.now, seconds)
            self.busy_by_tag[tag] = self.busy_by_tag.get(tag, 0.0) + seconds

    def charge(self, seconds: float, tag: str = "anon") -> None:
        """Record busy time without blocking (for sub-microsecond costs).

        Used for very small costs (Table VI metadata ops) where scheduling
        an event per call would swamp the kernel; the time is accounted as
        if it happened instantaneously at ``env.now``.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.ledger.record(self.env.now, self.env.now, seconds)
        self.busy_by_tag[tag] = self.busy_by_tag.get(tag, 0.0) + seconds

    @property
    def total_busy(self) -> float:
        return self.ledger.total_bytes

    def utilization(self, t0: float, t1: float) -> float:
        """Average CPU utilisation (0..1) over [t0, t1)."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        return self.ledger.bytes_in(t0, t1) / (self.cores * (t1 - t0))
