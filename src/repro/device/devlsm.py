"""Dev-LSM: the PinK-style LSM-KVS running inside the hybrid SSD.

Section IV/V of the paper: the KV region of the dual-interface SSD is
managed by an in-device LSM run on one ARM Cortex-A9 core of the Cosmos+.
It acts as the temporary write buffer during host write stalls.

Model highlights mirroring the paper:

* device-DRAM memtable, flushed as sorted *runs* into the KV region NAND
  (runs may overlap in key range, like L0 of a host LSM);
* point GETs are slow — no read cache, so every run probed costs a NAND
  page read plus ARM CPU (this is the paper's explanation for Table V's
  range-query gap and for preferring eager rollback under reads);
* an iterator with ``seek``/``next`` and the *bulky range scan*: the whole
  Dev-LSM is serialized and shipped to the host in 512 KB DMA chunks
  (Section V-E, step 5-6), which is what makes rollback fast;
* ``reset`` clears everything after a rollback (step 8).

In-device flush and (optional) compaction use NAND + ARM core only — no
PCIe — so they never contend with the host link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional

from ..faults.registry import fault_point, touch
from ..sim import Environment
from ..types import KIND_PUT, Entry, entry_size
from .cpu import CpuModel
from .ftl import Ftl
from .geometry import KiB, MiB
from .nand import NandArray

__all__ = ["DevLsm", "DevLsmConfig", "Run", "DevIterator"]


@dataclass
class DevLsmConfig:
    """Tuning knobs for the in-device LSM."""

    memtable_bytes: int = 16 * MiB
    dma_chunk_bytes: int = 512 * KiB          # max DMA unit on the platform
    arm_op_cost: float = 15e-6                # ARM CPU per point op (s);
                                              # one ~1 GHz Cortex-A9 core
    arm_byte_cost: float = 8e-9               # ARM CPU per byte (~125 MB/s)
    read_page_bytes: int = 16 * KiB           # NAND read per uncached probe
    read_cache_enabled: bool = False          # the paper's Dev-LSM has none;
                                              # True models the "what if"
                                              # behind Table V's bottleneck
    compaction_enabled: bool = False          # paper disables it for wkld A
    compaction_trigger_runs: int = 8

    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0 or self.dma_chunk_bytes <= 0:
            raise ValueError("sizes must be positive")


@dataclass
class Run:
    """One sorted run flushed into the KV region."""

    entries: list  # sorted by (key, -seq)
    smallest: bytes
    largest: bytes
    nbytes: int


def _sort_key(e: Entry):
    return (e[0], -e[1])


class DevIterator:
    """Snapshot iterator over the Dev-LSM (memtable + runs), newest-wins.

    Built eagerly over a merged snapshot — device iterators in the paper
    walk NAND with no cache, so the *cost* is charged by the owner; the
    functional view here is exact.
    """

    def __init__(self, entries: list):
        self._entries = entries  # deduped, key-ascending
        self._pos = 0

    def seek(self, key: bytes) -> None:
        """Position at the first entry with key >= ``key``."""
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo

    def seek_to_first(self) -> None:
        self._pos = 0

    @property
    def valid(self) -> bool:
        return self._pos < len(self._entries)

    def entry(self) -> Entry:
        return self._entries[self._pos]

    def next(self) -> None:
        self._pos += 1


class DevLsm:
    """The in-device LSM over the FTL's KV region."""

    def __init__(
        self,
        env: Environment,
        ftl: Ftl,
        nand: NandArray,
        arm: CpuModel,
        config: Optional[DevLsmConfig] = None,
    ):
        self.env = env
        self.ftl = ftl
        self.nand = nand
        self.arm = arm
        self.config = config or DevLsmConfig()
        self._region = ftl.region("kv")
        self.page_size = ftl.geometry.page_size

        self._memtable: dict[bytes, Entry] = {}
        self._memtable_bytes = 0
        self.runs: list[Run] = []          # newest first
        self._next_lpn = self._region.lpn_start
        self.flush_count = 0
        self.compaction_count = 0
        tel = env.telemetry
        if tel is not None:
            tel.gauge("devlsm.bytes", lambda: self.total_bytes)
            tel.gauge("devlsm.entries", lambda: self.entry_count)
            tel.gauge("devlsm.runs", lambda: len(self.runs))

    # -- capacity / stats ------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Upper bound: live memtable entries + run entries (may overlap)."""
        return len(self._memtable) + sum(len(r.entries) for r in self.runs)

    @property
    def total_bytes(self) -> int:
        return self._memtable_bytes + sum(r.nbytes for r in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self._memtable and not self.runs

    def state_digest(self) -> dict:
        """Dev-LSM occupancy for journal digest checkpoints: memtable
        fill plus the per-run shape (newest first)."""
        return {
            "memtable_entries": len(self._memtable),
            "memtable_bytes": self._memtable_bytes,
            "runs": [[len(r.entries), r.nbytes] for r in self.runs],
            "flushes": self.flush_count,
            "compactions": self.compaction_count,
        }

    def key_range(self) -> Optional[tuple[bytes, bytes]]:
        """(smallest, largest) over the whole Dev-LSM, or None if empty."""
        if self.is_empty:
            return None
        smalls, larges = [], []
        if self._memtable:
            keys = self._memtable.keys()
            smalls.append(min(keys))
            larges.append(max(keys))
        for r in self.runs:
            smalls.append(r.smallest)
            larges.append(r.largest)
        return min(smalls), max(larges)

    # -- write path ---------------------------------------------------------
    def put(self, entry: Entry) -> Generator:
        """Insert a PUT or DELETE entry (blocking process generator)."""
        cfg = self.config
        tr = self.env.tracer
        _sp = (tr.begin("devlsm", "devlsm.put", actor="devlsm",
                        args={"bytes": entry_size(entry)})
               if tr is not None else None)
        self.arm.charge(cfg.arm_op_cost, tag="devlsm.put")
        key = entry[0]
        old = self._memtable.get(key)
        if old is not None:
            self._memtable_bytes -= entry_size(old)
        self._memtable[key] = entry
        self._memtable_bytes += entry_size(entry)
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "devlsm.put.applied")
        if self._memtable_bytes >= cfg.memtable_bytes:
            yield from self._flush()
        if _sp is not None:
            tr.end(_sp)
        return None

    def _flush(self) -> Generator:
        """Flush the device memtable as one sorted run into KV NAND."""
        if not self._memtable:
            return
        tr = self.env.tracer
        _sp = (tr.begin("devlsm", "devlsm.flush", actor="devlsm",
                        args={"bytes": self._memtable_bytes})
               if tr is not None else None)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "devlsm.flush.start")
        # Snapshot, don't swap: the memtable must stay intact until the run
        # is installed.  The flush runs on the calling host process, so a
        # host crash interrupts it mid-I/O — but the device itself did not
        # lose power, and its DRAM must not forget entries a half-finished
        # flush had merely staged.
        snapshot = list(self._memtable.items())
        entries = sorted((e for _k, e in snapshot), key=_sort_key)
        nbytes = sum(entry_size(e) for e in entries)
        run = Run(entries=entries, smallest=entries[0][0],
                  largest=entries[-1][0], nbytes=nbytes)
        # Map pages in the KV region and charge NAND program + ARM copy.
        pages = max(1, -(-nbytes // self.page_size))
        self.ftl.write_batch(self._alloc_lpn() for _ in range(pages))
        yield from self.arm.consume(nbytes * self.config.arm_byte_cost,
                                    tag="devlsm.flush")
        yield from self.nand.io("program", nbytes)
        # Commit point: install the run, then retire exactly the flushed
        # entries (a concurrent put may have replaced one mid-flush).
        self.runs.insert(0, run)
        for key, entry in snapshot:
            if self._memtable.get(key) is entry:
                del self._memtable[key]
                self._memtable_bytes -= entry_size(entry)
        self.flush_count += 1
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "devlsm.flush.complete")
        if _sp is not None:
            tr.end(_sp, args={"runs": len(self.runs)})
        if (self.config.compaction_enabled
                and len(self.runs) >= self.config.compaction_trigger_runs):
            yield from self._compact()

    def _alloc_lpn(self) -> int:
        lpn = self._next_lpn
        nxt = lpn + 1
        end = self._region.lpn_start + self._region.lpn_count
        self._next_lpn = self._region.lpn_start if nxt >= end else nxt
        return lpn

    def _compact(self) -> Generator:
        """Merge all runs into one (device-internal, NAND + ARM only)."""
        merged = self._merged_entries(include_memtable=False)
        nbytes = sum(entry_size(e) for e in merged)
        old_bytes = sum(r.nbytes for r in self.runs)
        tr = self.env.tracer
        _sp = (tr.begin("devlsm", "devlsm.compact", actor="devlsm",
                        args={"runs": len(self.runs), "bytes": old_bytes})
               if tr is not None else None)
        yield from self.arm.consume((old_bytes + nbytes) * self.config.arm_byte_cost,
                                    tag="devlsm.compact")
        # Channel burst: the read-back of the old runs and the program of
        # the merged run ride one macro event (device-internal NAND, no
        # PCIe), halving the kernel events per compaction.
        yield from self.nand.io_burst([("read", old_bytes),
                                       ("program", nbytes)])
        if merged:
            self.runs = [Run(entries=merged, smallest=merged[0][0],
                             largest=merged[-1][0], nbytes=nbytes)]
        else:
            self.runs = []
        self.compaction_count += 1

    # -- read path ----------------------------------------------------------
    def get(self, key: bytes) -> Generator:
        """Point lookup; returns the newest entry or None (yields I/O).

        Every run probed costs a NAND page read — there is no device read
        cache (Table V's explanation).
        """
        cfg = self.config
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "devlsm.get")
        self.arm.charge(cfg.arm_op_cost, tag="devlsm.get")
        hit = self._memtable.get(key)
        if hit is not None:
            return hit
        for run in self.runs:
            if run.smallest <= key <= run.largest:
                if not cfg.read_cache_enabled:
                    yield from self.nand.io("read", cfg.read_page_bytes)
                e = _binary_search_run(run.entries, key)
                if e is not None:
                    return e
        return None

    # -- iteration / bulk scan --------------------------------------------
    def _merged_entries(self, include_memtable: bool = True) -> list:
        """Newest-wins merge of memtable + runs, key ascending.

        DELETE tombstones are retained — the host must see them during
        rollback so deletions propagate into Main-LSM.
        """
        best: dict[bytes, Entry] = {}
        for run in reversed(self.runs):  # oldest first, newer overwrite
            for e in run.entries:
                cur = best.get(e[0])
                if cur is None or e[1] > cur[1]:
                    best[e[0]] = e
        if include_memtable:
            for key, e in self._memtable.items():
                cur = best.get(key)
                if cur is None or e[1] > cur[1]:
                    best[key] = e
        return sorted(best.values(), key=_sort_key)

    def create_iterator(self) -> Generator:
        """Open a snapshot iterator.

        Opening reads one page per run to position run cursors; the real
        cost is paid per SEEK/NEXT (``iter_next_cost``) because there is no
        device read cache.
        """
        self.arm.charge(self.config.arm_op_cost, tag="devlsm.iter")
        merged = self._merged_entries()
        if self.runs:
            yield from self.nand.io(
                "read", self.config.read_page_bytes * len(self.runs))
        return DevIterator(merged)

    def iter_next_cost(self) -> Generator:
        """I/O+CPU cost of one Next() on a device iterator.

        Without a device read cache (the paper's hardware), every Next
        pays a NAND page read — the Table V bottleneck.
        """
        self.arm.charge(self.config.arm_op_cost, tag="devlsm.iter")
        if not self.config.read_cache_enabled:
            yield from self.nand.io("read", self.config.read_page_bytes)

    def bulk_scan(self, pcie) -> Generator:
        """Serialize the whole Dev-LSM to the host in 512 KB DMA chunks.

        Returns the full entry list (sorted, newest-wins, tombstones
        included).  Charges: one streaming NAND read of all run bytes, ARM
        serialisation, and one PCIe transfer per chunk.
        """
        merged = self._merged_entries()
        if not merged:
            return []
        total = sum(entry_size(e) for e in merged)
        run_bytes = sum(r.nbytes for r in self.runs)
        if run_bytes:
            yield from self.nand.io("read", run_bytes)
        yield from self.arm.consume(total * self.config.arm_byte_cost,
                                    tag="devlsm.scan")
        chunk = self.config.dma_chunk_bytes
        sizes = []
        remaining = total
        while remaining > 0:
            this = min(chunk, remaining)
            sizes.append(this)
            remaining -= this
        # Macro events: the whole chunk sequence is known up front, so the
        # DMA stream coalesces into one scheduled event per chunk group
        # while the ledger still sees each 512 KB chunk individually.
        yield from pcie.transfer_burst(sizes, direction="rx")
        return merged

    # -- reset / recovery ----------------------------------------------------
    def reset(self) -> None:
        """Drop all state and trim the KV region (post-rollback step 8)."""
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "devlsm.reset")
        self._memtable = {}
        self._memtable_bytes = 0
        self.runs = []
        start = self._region.lpn_start
        for lpn in range(start, start + self._region.lpn_count):
            if self.ftl.is_mapped(lpn):
                self.ftl.trim(lpn)
        self._next_lpn = start


def _binary_search_run(entries: list, key: bytes) -> Optional[Entry]:
    """Find the newest entry for ``key`` in a sorted run."""
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(entries) and entries[lo][0] == key:
        return entries[lo]  # (key, -seq) sort puts newest first
    return None
