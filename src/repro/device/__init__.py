"""Simulated hybrid dual-interface SSD (NAND, FTL, PCIe, Dev-LSM)."""

from .block_dev import BlockDevice
from .cpu import CpuModel
from .devlsm import DevIterator, DevLsm, DevLsmConfig, Run
from .ftl import Ftl, FtlError, GcStats, Region
from .geometry import GiB, KiB, MiB, NandGeometry, NandTiming
from .hybrid import HybridSsd, HybridSsdConfig, MultiDeviceSetup, Namespace
from .multitenant import KvNamespace, NamespacedKvInterface
from .kv_dev import KvDevice, KvDeviceConfig
from .nand import NandArray
from .pcie import BandwidthPipe, PcieLink, TrafficLedger

__all__ = [
    "BlockDevice",
    "CpuModel",
    "DevIterator",
    "DevLsm",
    "DevLsmConfig",
    "Run",
    "Ftl",
    "FtlError",
    "GcStats",
    "Region",
    "GiB",
    "KiB",
    "MiB",
    "NandGeometry",
    "NandTiming",
    "HybridSsd",
    "HybridSsdConfig",
    "MultiDeviceSetup",
    "Namespace",
    "KvNamespace",
    "NamespacedKvInterface",
    "KvDevice",
    "KvDeviceConfig",
    "NandArray",
    "BandwidthPipe",
    "PcieLink",
    "TrafficLedger",
]
