"""The hybrid dual-interface SSD (Section V-D).

One physical device, one NAND array, one FTL — two interfaces:

* ``block``: a :class:`BlockDevice` over the FTL's block region, on which
  the host file system and Main-LSM live;
* ``kv``: a :class:`KvDevice` over the KV region, backed by the in-device
  :class:`DevLsm`.

Both interfaces share the PCIe link and the NAND array, so traffic on one
contends with the other exactly as on the real Cosmos+ prototype.  The
class also models NVMe namespaces on both interfaces for multi-tenancy
(Section V-D, "Multi-Tenancy and Multi-Device Support"): a tenant gets a
paired block+KV namespace carved out of each region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Environment
from .block_dev import BlockDevice
from .cpu import CpuModel
from .devlsm import DevLsm, DevLsmConfig
from .error_model import NandErrorConfig, NandErrorModel
from .ftl import Ftl
from .geometry import MiB, NandGeometry
from .kv_dev import KvDevice, KvDeviceConfig
from .nand import NandArray
from .pcie import PcieLink

__all__ = ["HybridSsd", "HybridSsdConfig", "Namespace"]


@dataclass
class HybridSsdConfig:
    """Top-level device configuration."""

    geometry: NandGeometry = field(default_factory=NandGeometry)
    split_fraction: float = 0.75          # share of logical space for block region
    peak_nand_bandwidth: float = 630 * MiB  # measured device peak (paper)
    pcie_bandwidth: float = PcieLink.GEN2_X8
    pcie_latency: float = 5e-6
    arm_cores: int = 1                    # one Cortex-A9 core runs Dev-LSM
    ledger_bucket: float = 1.0            # PCM-style traffic bucket (seconds)
    nand_priority_scheduling: bool = True   # latency-critical (WAL/flush)
                                            # I/O jumps background compaction
                                            # chunks, like NVMe's weighted queues
    devlsm: DevLsmConfig = field(default_factory=DevLsmConfig)
    kv: KvDeviceConfig = field(default_factory=KvDeviceConfig)
    # None -> perfect NAND (the default; production trajectories depend
    # on it).  Set to model wear-driven program/erase failures, grown bad
    # blocks, and ECC read-retry latency tails.
    nand_errors: Optional[NandErrorConfig] = None


@dataclass
class Namespace:
    """A paired (block, kv) namespace for one tenant."""

    nsid: int
    name: str
    block_offset: int
    block_bytes: int
    kv_quota_bytes: int


class HybridSsd:
    """The assembled dual-interface device."""

    def __init__(self, env: Environment, host_cpu: CpuModel,
                 config: Optional[HybridSsdConfig] = None):
        self.env = env
        self.config = config or HybridSsdConfig()
        cfg = self.config

        self.pcie = PcieLink(env, bandwidth=cfg.pcie_bandwidth,
                             latency=cfg.pcie_latency,
                             bucket=cfg.ledger_bucket)
        self.nand = NandArray(env, cfg.geometry,
                              peak_bandwidth=cfg.peak_nand_bandwidth,
                              priority_scheduling=cfg.nand_priority_scheduling)
        self.ftl = Ftl(cfg.geometry, split_fraction=cfg.split_fraction)
        if cfg.nand_errors is not None:
            self.nand.error_model = NandErrorModel(env, self.ftl,
                                                   cfg.nand_errors)
        self.arm = CpuModel(env, cores=cfg.arm_cores, name="arm")

        self.block = BlockDevice(env, self.ftl, self.nand, self.pcie)
        self.devlsm = DevLsm(env, self.ftl, self.nand, self.arm,
                             config=cfg.devlsm)
        self.kv = KvDevice(env, self.devlsm, self.pcie, host_cpu,
                           config=cfg.kv)

        self._namespaces: dict[int, Namespace] = {}
        self._next_nsid = 1
        self._ns_block_cursor = 0

    # -- geometry-facing ---------------------------------------------------
    @property
    def disaggregation_point(self) -> int:
        """Logical page number where the KV region begins."""
        return self.ftl.disaggregation_point

    @property
    def block_capacity_bytes(self) -> int:
        return self.block.capacity_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        return self.ftl.region("kv").lpn_count * self.config.geometry.page_size

    # -- namespaces ---------------------------------------------------------
    def create_namespace(self, name: str, block_bytes: int,
                         kv_quota_bytes: int) -> Namespace:
        """Carve a paired block+KV namespace for a tenant."""
        if block_bytes <= 0 or kv_quota_bytes <= 0:
            raise ValueError("namespace sizes must be positive")
        if self._ns_block_cursor + block_bytes > self.block_capacity_bytes:
            raise ValueError("block region exhausted for namespaces")
        allocated_kv = sum(ns.kv_quota_bytes for ns in self._namespaces.values())
        if allocated_kv + kv_quota_bytes > self.kv_capacity_bytes:
            raise ValueError("kv region exhausted for namespaces")
        ns = Namespace(
            nsid=self._next_nsid,
            name=name,
            block_offset=self._ns_block_cursor,
            block_bytes=block_bytes,
            kv_quota_bytes=kv_quota_bytes,
        )
        self._namespaces[ns.nsid] = ns
        self._next_nsid += 1
        self._ns_block_cursor += block_bytes
        return ns

    def delete_namespace(self, nsid: int) -> None:
        ns = self._namespaces.pop(nsid, None)
        if ns is None:
            raise KeyError(f"no namespace {nsid}")
        self.block.trim(ns.block_offset, ns.block_bytes)

    def namespaces(self) -> list[Namespace]:
        return sorted(self._namespaces.values(), key=lambda n: n.nsid)

    def kv_namespaces(self, host_cpu: CpuModel):
        """Per-tenant KV namespaces over this device's KV region.

        Lazily constructed; see :mod:`repro.device.multitenant`.
        """
        if not hasattr(self, "_kv_ns"):
            from .multitenant import NamespacedKvInterface
            self._kv_ns = NamespacedKvInterface(
                self.env, self.ftl, self.nand, self.arm, self.pcie,
                host_cpu, devlsm_config=self.config.devlsm,
                kv_config=self.config.kv)
        return self._kv_ns


class MultiDeviceSetup:
    """Two-device deployment (paper Section V-D, final paragraph).

    "The two interfaces can be used as separate devices, where one storage
    device utilizes the block region, while another the key-value
    interface."  The Main-LSM runs on device A's block interface while
    redirected writes land on device B's key-value interface — the two
    no longer contend for the same NAND array (each keeps its own PCIe
    link and controller), at the cost of a second device.

    Exposes the same ``block`` / ``kv`` / ``devlsm`` / ``pcie`` surface as
    :class:`HybridSsd`, so :class:`~repro.core.KvaccelDb` runs on either
    interchangeably.  ``pcie`` reports device A's link (where the
    PCM-style measurements of the paper were taken).
    """

    def __init__(self, env: Environment, host_cpu: CpuModel,
                 block_device_config: Optional[HybridSsdConfig] = None,
                 kv_device_config: Optional[HybridSsdConfig] = None):
        self.env = env
        self.block_ssd = HybridSsd(env, host_cpu, block_device_config)
        self.kv_ssd = HybridSsd(env, host_cpu, kv_device_config)

    @property
    def block(self):
        return self.block_ssd.block

    @property
    def kv(self):
        return self.kv_ssd.kv

    @property
    def devlsm(self):
        return self.kv_ssd.devlsm

    @property
    def pcie(self):
        return self.block_ssd.pcie

    @property
    def config(self):
        return self.block_ssd.config
