"""NAND flash geometry for the simulated SSD.

Defaults follow the Cosmos+ OpenSSD board used by the paper (Table I):
1 TB of NAND organised as 4 channels x 8 ways, PCIe Gen2 x8 host link, and a
measured peak device bandwidth of ~630 MB/s.

The geometry yields derived figures (page count, peak program/read
bandwidth) that the rest of the device model consumes, so a profile can
scale the device down (the `mini` profile) by changing a handful of numbers
here and everything else follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NandGeometry", "NandTiming", "KiB", "MiB", "GiB"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class NandTiming:
    """Raw NAND operation latencies (seconds) and channel transfer rate."""

    t_read: float = 90e-6        # page read (tR)
    t_program: float = 700e-6    # page program (tPROG)
    t_erase: float = 5e-3        # block erase (tBERS)
    channel_bw: float = 400 * MiB  # ONFI channel bandwidth, bytes/s

    def __post_init__(self) -> None:
        for name in ("t_read", "t_program", "t_erase", "channel_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class NandGeometry:
    """Physical layout of the NAND array."""

    channels: int = 4
    ways: int = 8
    blocks_per_way: int = 512
    pages_per_block: int = 256
    page_size: int = 16 * KiB
    timing: NandTiming = field(default_factory=NandTiming)

    def __post_init__(self) -> None:
        for name in ("channels", "ways", "blocks_per_way", "pages_per_block", "page_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- derived quantities -------------------------------------------------
    @property
    def total_blocks(self) -> int:
        return self.channels * self.ways * self.blocks_per_way

    @property
    def pages_per_way(self) -> int:
        return self.blocks_per_way * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def peak_program_bw(self) -> float:
        """Aggregate program bandwidth with all channels/ways pipelined.

        Each way can program a page every (transfer + tPROG); ways on a
        channel share the channel bus for transfers but overlap cell
        programming, so the steady-state per-channel rate is limited by
        max(transfer-serialisation, tPROG/ways).
        """
        t = self.timing
        xfer = self.page_size / t.channel_bw
        # transfers serialize on the channel; programs overlap across ways
        per_channel_rate = self.page_size / max(xfer, t.t_program / self.ways)
        return per_channel_rate * self.channels

    @property
    def peak_read_bw(self) -> float:
        t = self.timing
        xfer = self.page_size / t.channel_bw
        per_channel_rate = self.page_size / max(xfer, t.t_read / self.ways)
        return per_channel_rate * self.channels

    def scaled(self, factor: float) -> "NandGeometry":
        """Return a geometry with capacity scaled by ``factor`` (<1 shrinks).

        Scaling reduces blocks per way, preserving channel/way parallelism
        so bandwidth-vs-capacity ratios stay comparable.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        blocks = max(4, int(self.blocks_per_way * factor))
        return NandGeometry(
            channels=self.channels,
            ways=self.ways,
            blocks_per_way=blocks,
            pages_per_block=self.pages_per_block,
            page_size=self.page_size,
            timing=self.timing,
        )
