"""PCIe-bandwidth analysis during write stalls (Figs 4, 5, 14).

Given the PCIe :class:`~repro.device.TrafficLedger` series and the write
controller's stall intervals, these functions compute:

* the per-bucket utilisation series with stall-region annotation (Fig 4);
* the CDF of PCIe utilisation over stall buckets (Fig 5);
* zero-traffic interval counts inside stalls (Fig 14's 45 % reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["StallPcieStats", "analyze_stall_pcie", "utilization_cdf",
           "zero_traffic_buckets"]


@dataclass
class StallPcieStats:
    """Summary of link behaviour during stall periods."""

    stall_buckets: int
    zero_buckets: int
    above_90_buckets: int
    utilizations: list  # per stall-bucket utilisation in [0, 1]

    @property
    def zero_fraction(self) -> float:
        return self.zero_buckets / self.stall_buckets if self.stall_buckets else 0.0

    @property
    def above_90_fraction(self) -> float:
        return self.above_90_buckets / self.stall_buckets if self.stall_buckets else 0.0


def _stall_bucket_mask(times: Sequence[float], bucket: float,
                       stall_intervals: Sequence[tuple]) -> np.ndarray:
    """Boolean mask: bucket i (ending at times[i]) overlaps a stall.

    Both inputs may be empty — a run that never stalls (any healthy
    KVACCEL cell) yields an all-False mask, never an error.
    """
    t = np.asarray(times, dtype=float)
    mask = np.zeros(len(t), dtype=bool)
    if len(t) == 0 or len(stall_intervals) == 0:
        return mask
    starts = t - bucket
    for s0, s1 in stall_intervals:
        if s1 < s0:
            raise ValueError(f"stall interval ends before it starts: "
                             f"({s0}, {s1})")
        mask |= (starts < s1) & (t > s0)
    return mask


def _check_series(times: Sequence[float], traffic: Sequence[float]) -> None:
    if len(times) != len(traffic):
        raise ValueError(f"times and traffic length mismatch: "
                         f"{len(times)} vs {len(traffic)}")


def analyze_stall_pcie(times: Sequence[float], traffic: Sequence[float],
                       stall_intervals: Sequence[tuple], capacity: float,
                       bucket: float = 1.0,
                       zero_threshold: float = 0.005) -> StallPcieStats:
    """Classify stall-period buckets by link utilisation.

    ``capacity`` is the relevant peak bandwidth in bytes per bucket-second
    (the paper normalizes by the device's ~630 MB/s, not the PCIe ceiling).
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    _check_series(times, traffic)
    mask = _stall_bucket_mask(times, bucket, stall_intervals)
    vals = np.asarray(traffic, dtype=float)[mask] / (capacity * bucket)
    zero = int(np.sum(vals <= zero_threshold))
    hi = int(np.sum(vals >= 0.9))
    return StallPcieStats(
        stall_buckets=int(mask.sum()),
        zero_buckets=zero,
        above_90_buckets=hi,
        utilizations=vals.tolist(),
    )


def utilization_cdf(utilizations: Sequence[float],
                    points: int = 101) -> tuple[list, list]:
    """(x, F(x)) for utilisation in [0, 1] — the Fig 5 curve."""
    xs = np.linspace(0.0, 1.0, points)
    if len(utilizations) == 0:
        return xs.tolist(), [0.0] * points
    vals = np.sort(np.asarray(utilizations, dtype=float))
    cdf = np.searchsorted(vals, xs, side="right") / len(vals)
    return xs.tolist(), cdf.tolist()


def zero_traffic_buckets(times: Sequence[float], traffic: Sequence[float],
                         stall_intervals: Sequence[tuple],
                         bucket: float = 1.0,
                         zero_threshold_bytes: float = 1024.0) -> int:
    """Count stall-period buckets with (near-)zero link traffic."""
    _check_series(times, traffic)
    mask = _stall_bucket_mask(times, bucket, stall_intervals)
    vals = np.asarray(traffic, dtype=float)[mask]
    return int(np.sum(vals <= zero_threshold_bytes))
