"""The paper's efficiency metric (Eq. 1).

``Efficiency = avg throughput (MB/s) / avg host CPU usage (%)``

Higher is better: the same throughput from less CPU.  KVACCEL(1) scores
best in Fig 12(c) because redirection adds throughput without adding
compaction threads.
"""

from __future__ import annotations

__all__ = ["efficiency"]


def efficiency(throughput_bytes_per_s: float, cpu_utilization: float) -> float:
    """Eq. 1 with throughput in bytes/s and utilisation in [0, 1].

    Returns MB/s per CPU-percent, matching the paper's axis.
    """
    if throughput_bytes_per_s < 0:
        raise ValueError("throughput must be >= 0")
    if cpu_utilization < 0:
        raise ValueError("cpu utilization must be >= 0")
    if cpu_utilization == 0:
        return 0.0 if throughput_bytes_per_s == 0 else float("inf")
    mb_per_s = throughput_bytes_per_s / (1024 * 1024)
    cpu_percent = cpu_utilization * 100.0
    return mb_per_s / cpu_percent
