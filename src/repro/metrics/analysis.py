"""Post-run analysis: write amplification, stall causes, system accounting.

These reports answer the questions a storage engineer asks after a run:
where did every device byte go (WAL / flush / compaction / redirect), what
caused each stall, and how did the LSM shape evolve — the same accounting
the paper uses to argue KVACCEL's bandwidth reclamation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["WriteAmplification", "write_amplification", "StallBreakdown",
           "stall_breakdown", "device_byte_accounting"]


@dataclass
class WriteAmplification:
    """Device write bytes per user byte, by source."""

    user_bytes: int
    wal_bytes: int
    flush_bytes: int
    compaction_bytes: int
    redirect_bytes: int = 0

    @property
    def total_device_writes(self) -> int:
        return (self.wal_bytes + self.flush_bytes + self.compaction_bytes
                + self.redirect_bytes)

    @property
    def factor(self) -> float:
        """Classic WA: device write bytes / user bytes."""
        if self.user_bytes == 0:
            return 0.0
        return self.total_device_writes / self.user_bytes

    def breakdown(self) -> dict:
        if self.user_bytes == 0:
            return {}
        u = self.user_bytes
        return {
            "wal": self.wal_bytes / u,
            "flush": self.flush_bytes / u,
            "compaction": self.compaction_bytes / u,
            "redirect": self.redirect_bytes / u,
        }


def write_amplification(db, user_bytes: Optional[int] = None,
                        redirect_bytes: int = 0) -> WriteAmplification:
    """Compute WA for a DbImpl (or a KvaccelDb's main LSM).

    ``db`` may be a DbImpl or anything exposing ``.main`` (KvaccelDb).
    """
    main = getattr(db, "main", db)
    user = user_bytes if user_bytes is not None else main.stats.user_write_bytes
    wal = main.wal.durable_bytes if main.wal is not None else 0
    return WriteAmplification(
        user_bytes=user,
        wal_bytes=wal,
        flush_bytes=main.stats.flush_bytes_written,
        compaction_bytes=main.stats.compaction_bytes_written,
        redirect_bytes=redirect_bytes,
    )


@dataclass
class StallBreakdown:
    """Stall/slowdown accounting over one run."""

    duration: float
    stall_events: int
    stall_time: float
    delayed_time: float
    intervals: list = field(default_factory=list)

    @property
    def stall_fraction(self) -> float:
        return self.stall_time / self.duration if self.duration else 0.0

    @property
    def delayed_fraction(self) -> float:
        return self.delayed_time / self.duration if self.duration else 0.0

    @property
    def longest_stall(self) -> float:
        return max((t1 - t0 for t0, t1 in self.intervals), default=0.0)

    @property
    def mean_stall(self) -> float:
        if not self.intervals:
            return 0.0
        return sum(t1 - t0 for t0, t1 in self.intervals) / len(self.intervals)


def stall_breakdown(result) -> StallBreakdown:
    """Build a StallBreakdown from a RunResult."""
    return StallBreakdown(
        duration=result.duration,
        stall_events=result.stall_events,
        stall_time=result.total_stall_time,
        delayed_time=result.total_delayed_time,
        intervals=list(result.stall_intervals),
    )


def device_byte_accounting(ssd) -> dict:
    """Where the device's NAND and PCIe bytes went (HybridSsd or setup)."""
    return {
        "pcie_bytes": ssd.pcie.ledger.total_bytes,
        "nand_bytes": ssd.nand.ledger.total_bytes if hasattr(ssd, "nand")
        else None,
        "block_written": ssd.block.bytes_written,
        "block_read": ssd.block.bytes_read,
        "devlsm_bytes": ssd.devlsm.total_bytes,
        "devlsm_flushes": ssd.devlsm.flush_count,
    }
