"""Metrics: latency histograms, run collection, PCIe stall statistics."""

from .analysis import (
    StallBreakdown,
    WriteAmplification,
    device_byte_accounting,
    stall_breakdown,
    write_amplification,
)
from .collector import RunCollector, RunResult
from .efficiency import efficiency
from .histogram import LatencyHistogram
from .pcie_stats import (
    StallPcieStats,
    analyze_stall_pcie,
    utilization_cdf,
    zero_traffic_buckets,
)

__all__ = [
    "StallBreakdown",
    "WriteAmplification",
    "device_byte_accounting",
    "stall_breakdown",
    "write_amplification",
    "RunCollector",
    "RunResult",
    "efficiency",
    "LatencyHistogram",
    "StallPcieStats",
    "analyze_stall_pcie",
    "utilization_cdf",
    "zero_traffic_buckets",
]
