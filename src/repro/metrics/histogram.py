"""Log-bucketed latency histogram (HdrHistogram-style).

Values (microseconds in our usage) are recorded into geometric buckets,
giving bounded memory and O(1) recording with ~2% relative error on
percentile queries — the P99/P99.9 numbers of Figs 3 and 12.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Geometric-bucket histogram over positive values."""

    def __init__(self, min_value: float = 0.01, max_value: float = 1e9,
                 buckets_per_decade: int = 48):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.min_value = min_value
        self.max_value = max_value
        self._ratio = 10 ** (1 / buckets_per_decade)
        self._log_ratio = math.log(self._ratio)
        n = int(math.ceil(math.log(max_value / min_value) / self._log_ratio)) + 2
        self._counts = [0] * n
        self.total_count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        idx = int(math.log(value / self.min_value) / self._log_ratio) + 1
        return min(idx, len(self._counts) - 1)

    def record(self, value: float, count: int = 1) -> None:
        if value < 0:
            raise ValueError("latency cannot be negative")
        if count < 1:
            raise ValueError("count must be >= 1")
        v = max(value, self.min_value)
        self._counts[self._bucket(v)] += count
        self.total_count += count
        self._sum += value * count
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        if self.total_count == 0:
            return 0.0
        target = max(1, math.ceil(self.total_count * p / 100.0))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target:
                # representative value: geometric midpoint of the bucket
                if i == 0:
                    return min(self.min_value, self._max)
                lo = self.min_value * (self._ratio ** (i - 1))
                return min(lo * math.sqrt(self._ratio), self._max)
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self.total_count if self.total_count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.total_count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def merge(self, other: "LatencyHistogram") -> None:
        if len(other._counts) != len(self._counts):
            raise ValueError("histograms have different bucket layouts")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.total_count += other.total_count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def summary(self) -> dict:
        return {
            "count": self.total_count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p99.9": self.percentile(99.9),
        }
