"""Run-level metrics collection.

One :class:`RunCollector` per experiment run wires per-second samplers onto
a DB's counters and owns the latency histograms.  At the end of a run it
produces a :class:`RunResult` — the object every benchmark prints and
asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import MetricRegistry
from ..sim import Environment, PeriodicSampler, RateMeter
from .efficiency import efficiency
from .histogram import LatencyHistogram

__all__ = ["RunCollector", "RunResult"]


@dataclass
class RunResult:
    """Everything a bench needs to reproduce a paper table/figure row."""

    name: str
    duration: float
    write_ops: int
    read_ops: int
    write_bytes: int
    # time series (bucket-end timestamps shared)
    times: list = field(default_factory=list)
    write_ops_series: list = field(default_factory=list)
    read_ops_series: list = field(default_factory=list)
    pcie_times: list = field(default_factory=list)
    pcie_series: list = field(default_factory=list)
    # latency
    write_latency: Optional[dict] = None
    read_latency: Optional[dict] = None
    # stalls / slowdowns
    stall_intervals: list = field(default_factory=list)
    stall_events: int = 0
    slowdown_events: int = 0
    total_stall_time: float = 0.0
    total_delayed_time: float = 0.0
    # per-StallReason attribution: {"stalls": {reason: n}, "stall_time":
    # {reason: s}, "slowdowns": {reason: n}, "delayed_time": {reason: s}}
    stall_breakdown: dict = field(default_factory=dict)
    # resources
    cpu_utilization: float = 0.0
    # telemetry (populated when a TelemetryHub ran alongside the workload):
    # hub.export() dict and the HealthMonitor's event dicts, in time order
    telemetry: Optional[dict] = None
    health_events: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def write_throughput_ops(self) -> float:
        return self.write_ops / self.duration if self.duration else 0.0

    @property
    def read_throughput_ops(self) -> float:
        return self.read_ops / self.duration if self.duration else 0.0

    @property
    def write_throughput_bytes(self) -> float:
        return self.write_bytes / self.duration if self.duration else 0.0

    @property
    def efficiency(self) -> float:
        return efficiency(self.write_throughput_bytes, self.cpu_utilization)

    @property
    def write_p99_us(self) -> float:
        return self.write_latency["p99"] if self.write_latency else 0.0

    def health_summary(self) -> dict:
        """Per-rule count of health-rule firings (enter edges)."""
        out: dict[str, int] = {}
        for e in self.health_events:
            if e.get("phase") == "enter":
                out[e["rule"]] = out.get(e["rule"], 0) + 1
        return out

    # -- serialization ----------------------------------------------------
    # ``extra`` is excluded: it holds live objects (snapshots, specs,
    # profile dataclasses) that have no stable JSON form.  Everything a
    # baseline or a plot needs is in the declared fields.
    _JSON_FIELDS = (
        "name", "duration", "write_ops", "read_ops", "write_bytes",
        "times", "write_ops_series", "read_ops_series",
        "pcie_times", "pcie_series", "write_latency", "read_latency",
        "stall_intervals", "stall_events", "slowdown_events",
        "total_stall_time", "total_delayed_time", "stall_breakdown",
        "cpu_utilization", "telemetry", "health_events",
    )

    def to_json(self) -> dict:
        doc = {}
        for f in self._JSON_FIELDS:
            v = getattr(self, f)
            if f == "stall_intervals":
                v = [[t0, t1] for (t0, t1) in v]
            doc[f] = v
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "RunResult":
        kwargs = {f: doc[f] for f in cls._JSON_FIELDS if f in doc}
        kwargs["stall_intervals"] = [
            (t0, t1) for (t0, t1) in kwargs.get("stall_intervals", [])]
        return cls(**kwargs)


class RunCollector:
    """Wires samplers + histograms onto a run."""

    def __init__(self, env: Environment, name: str, sample_period: float = 1.0):
        self.env = env
        self.name = name
        self.sample_period = sample_period
        self.write_meter = RateMeter()
        self.read_meter = RateMeter()
        self.write_hist = LatencyHistogram()
        self.read_hist = LatencyHistogram()
        self._write_sampler = PeriodicSampler(
            env, self.write_meter.take_delta, sample_period, name=f"{name}.wr")
        self._read_sampler = PeriodicSampler(
            env, self.read_meter.take_delta, sample_period, name=f"{name}.rd")
        self._t0 = env.now
        # Typed registry over the same instruments — snapshot() gives one
        # uniform view, and a traced run streams counter samples into the
        # Chrome trace as "C" events.
        self.registry = MetricRegistry()
        self.registry.register(f"{name}.write_ops", self.write_meter)
        self.registry.register(f"{name}.read_ops", self.read_meter)
        self.registry.register(f"{name}.write_latency", self.write_hist)
        self.registry.register(f"{name}.read_latency", self.read_hist)
        self._trace_sampler = None
        if env.tracer is not None:
            registry, tracer = self.registry, env.tracer
            self._trace_sampler = PeriodicSampler(
                env, lambda: registry.sample_into(tracer),
                sample_period, name=f"{name}.trace")

    def attach_db_stats(self, stats) -> None:
        """Point a DbStats' latency hooks at our histograms."""
        stats.write_latencies = self.write_hist
        stats.read_latencies = self.read_hist

    def stop(self) -> None:
        self._write_sampler.stop()
        self._read_sampler.stop()
        if self._trace_sampler is not None:
            self._trace_sampler.stop()

    def result(
        self,
        write_ops: int,
        read_ops: int,
        write_bytes: int,
        write_controller=None,
        host_cpu=None,
        pcie_ledger=None,
    ) -> RunResult:
        duration = self.env.now - self._t0
        res = RunResult(
            name=self.name,
            duration=duration,
            write_ops=write_ops,
            read_ops=read_ops,
            write_bytes=write_bytes,
            times=list(self._write_sampler.times),
            write_ops_series=list(self._write_sampler.values),
            read_ops_series=list(self._read_sampler.values),
            write_latency=self.write_hist.summary() if self.write_hist.total_count else None,
            read_latency=self.read_hist.summary() if self.read_hist.total_count else None,
        )
        if write_controller is not None:
            write_controller.finalize()
            res.stall_intervals = list(write_controller.stall_intervals)
            res.stall_events = write_controller.stall_events
            res.slowdown_events = write_controller.slowdown_events
            res.total_stall_time = write_controller.total_stall_time
            res.total_delayed_time = write_controller.total_delayed_time
            res.stall_breakdown = write_controller.breakdown()
        if host_cpu is not None and duration > 0:
            res.cpu_utilization = host_cpu.utilization(self._t0, self.env.now)
        if pcie_ledger is not None:
            times, series = pcie_ledger.series(t_end=self.env.now)
            res.pcie_times = times
            res.pcie_series = series
        return res
