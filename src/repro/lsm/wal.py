"""Write-ahead log with group commit.

Each memtable generation owns one WAL segment file.  Appends accumulate in
a host-RAM buffer and hit the device once per ``group_commit_bytes``
(RocksDB's group-commit batching) — so the put path pays device I/O in
bursts rather than per record, exactly the pattern Intel PCM sees on the
real system.

Durability model: a record is durable once its group flush completed.  On
simulated crash-recovery the un-flushed tail is lost, which the recovery
tests assert.  Each segment keeps a *record journal* of the entries whose
groups reached the device; :meth:`durable_records` is what WAL replay
reads back after a crash.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..faults.registry import fault_point, touch
from .fs import FileSystem, SimFile

__all__ = ["Wal"]


class Wal:
    """One logical WAL split into per-memtable segments."""

    def __init__(self, fs: FileSystem, group_commit_bytes: int = 256 * 1024,
                 name_prefix: str = "wal"):
        if group_commit_bytes <= 0:
            raise ValueError("group_commit_bytes must be positive")
        self.fs = fs
        self.group_commit_bytes = group_commit_bytes
        self.name_prefix = name_prefix
        self._segment_seq = 0
        self._segment: Optional[SimFile] = None
        self._buffer = 0          # bytes accumulated since last flush
        self._buffered_records: list = []
        # segment name -> list of durable entries (the on-media journal)
        self._journals: dict[str, list] = {}
        self.durable_bytes = 0
        self.appended_bytes = 0
        self.flush_count = 0

    @property
    def current_segment(self) -> Optional[SimFile]:
        return self._segment

    @property
    def buffered_bytes(self) -> int:
        return self._buffer

    def new_segment(self) -> SimFile:
        """Open a fresh segment (called at memtable switch).

        Any buffered tail belongs to the *old* segment and must have been
        flushed by the caller (`sync`) before switching.
        """
        env = self.fs.device.env
        if env.faults is not None or env.journal is not None:
            touch(env, "wal.segment.switch")
        self._segment_seq += 1
        name = f"{self.name_prefix}.{self._segment_seq:06d}"
        self._segment = self.fs.create(name)
        self._journals[name] = []
        self._buffer = 0
        self._buffered_records = []
        return self._segment

    def append(self, nbytes: int, records: Optional[list] = None) -> Generator:
        """Log a record of ``nbytes``; flushes when the group fills.

        ``records`` (internal entries) join the segment's durable journal
        once their group reaches the device — the material WAL replay
        reads back after a crash.
        """
        if self._segment is None:
            self.new_segment()
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        env = self.fs.device.env
        tr = env.tracer
        _sp = (tr.begin("wal", "wal.append", args={"bytes": nbytes})
               if tr is not None else None)
        lp = env.lineage
        if lp is not None:
            lp.enter("wal")
        try:
            if env.faults is not None or env.journal is not None:
                # Pre-persistence: nothing of this record is buffered yet.
                yield from fault_point(env, "wal.append")
            self._buffer += nbytes
            self.appended_bytes += nbytes
            if records:
                self._buffered_records.extend(records)
            if self._buffer >= self.group_commit_bytes:
                yield from self._flush()
        finally:
            if lp is not None:
                lp.leave()
        if _sp is not None:
            tr.end(_sp)

    def sync(self) -> Generator:
        """Force the buffered tail to the device."""
        if self._buffer > 0:
            yield from self._flush()

    def _flush(self) -> Generator:
        nbytes, self._buffer = self._buffer, 0
        records, self._buffered_records = self._buffered_records, []
        self.flush_count += 1
        self.durable_bytes += nbytes
        env = self.fs.device.env
        tr = env.tracer
        _sp = (tr.begin("wal", "wal.group_commit",
                        args={"bytes": nbytes, "records": len(records)})
               if tr is not None else None)
        if env.faults is not None or env.journal is not None:
            # Between buffer hand-off and media write: a crash here tears
            # the whole commit group (none of its records become durable).
            yield from fault_point(env, "wal.flush.start")
        yield from self.fs.append(self._segment, nbytes)
        self._journals[self._segment.name].extend(records)
        if env.faults is not None or env.journal is not None:
            yield from fault_point(env, "wal.flush.complete")
        if _sp is not None:
            tr.end(_sp)

    def retire_segment(self, segment: SimFile) -> None:
        """Delete an old segment once its memtable reached an SST."""
        if self.fs.exists(segment.name):
            self.fs.delete(segment.name)
        self._journals.pop(segment.name, None)

    # -- crash recovery -----------------------------------------------------
    def live_segments(self) -> list:
        """Names of segments not yet retired, oldest first."""
        return sorted(self._journals)

    def durable_records(self, segment_name: str) -> list:
        """Entries whose group commit reached the device before a crash.

        Buffered-but-unflushed records are *not* here — they are exactly
        the writes a real crash loses when the WAL is not fsync'd per op.
        """
        return list(self._journals.get(segment_name, []))

    def drop_volatile_state(self) -> None:
        """Simulate a crash: the RAM-side buffer evaporates."""
        self._buffer = 0
        self._buffered_records = []
