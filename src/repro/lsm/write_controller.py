"""RocksDB-style write controller: stop, delay, and token-bucket throttling.

This is the machinery the paper's Section III-A dissects.  Three stall
classes (SILK/ADOC taxonomy):

1. memtable — all write buffers full (flush can't keep up);
2. L0 — file count at the stop trigger (L0->L1 compaction serialized);
3. pending compaction bytes — backlog above the hard limit.

The *slowdown* mechanism anticipates these: when the softer thresholds
(slowdown trigger / soft limit / buffers nearly full) are crossed, writes
are throttled to ``delayed_write_rate`` via 1 ms write-thread naps.  With
``slowdown_enabled=False`` the DB runs at full speed until it slams into a
hard stop — exactly the Fig 2 (a)/(b) vs (c)/(d) comparison.

The controller also keeps the stall/slowdown books the experiments read:
stall intervals (for the PCIe-during-stall CDF), slowdown event counts
(Fig 3's 258 / 433), and cumulative stalled/delayed time.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..sim import Environment, Event
from .options import LsmOptions

__all__ = ["WriteController", "WriteState", "StallReason"]


class WriteState:
    NORMAL = "normal"
    DELAYED = "delayed"
    STOPPED = "stopped"


class StallReason:
    NONE = "none"
    MEMTABLE = "memtable"
    L0 = "l0"
    PENDING_BYTES = "pending_bytes"


class WriteController:
    """Gates the write path according to LSM back-pressure."""

    def __init__(self, env: Environment, options: LsmOptions,
                 stats_fn: Callable[[], tuple[int, int, int, bool]]):
        """``stats_fn`` returns (immutable_memtables, l0_files,
        pending_bytes, active_memtable_full)."""
        self.env = env
        self.options = options
        self.stats_fn = stats_fn

        self.state = WriteState.NORMAL
        self.reason = StallReason.NONE
        self._clear_event: Optional[Event] = None
        self._next_allowed = 0.0   # token bucket cursor for delayed writes
        # Adaptive delayed-write rate (RocksDB WriteController): starts at
        # options.delayed_write_rate on entering DELAYED, then multiplies
        # down while the backlog worsens and up while it drains.  The
        # observable floor (paper Fig 2: "up to 2 Kops/s") is the min rate.
        self.current_delay_rate = options.delayed_write_rate
        self.min_delay_rate = options.delayed_write_rate / 2
        self.max_delay_rate = options.delayed_write_rate * 16
        self._last_backlog: Optional[tuple] = None

        # books
        self.stall_intervals: list[tuple[float, float]] = []
        self._stall_start: Optional[float] = None
        self.slowdown_events = 0
        self.stall_events = 0
        self.total_stall_time = 0.0
        self.total_delayed_time = 0.0
        # per-StallReason books (RunResult.stall_breakdown)
        self.stall_reason_counts: dict[str, int] = {}
        self.stall_reason_time: dict[str, float] = {}
        self.slowdown_reason_counts: dict[str, int] = {}
        self.delayed_reason_time: dict[str, float] = {}
        self._stall_reason: Optional[str] = None    # reason latched at entry
        self._stall_span = None                     # open obs span, if traced

        tel = env.telemetry
        if tel is not None:
            # wc.state gauge: 0=normal, 1=delayed, 2=stopped (the encoding
            # repro.obs.rules reads); stall/delayed time as per-bucket
            # deltas, counting an in-progress stall up to "now" so a
            # bucket-spanning stall shows in every bucket it covers.
            codes = {WriteState.NORMAL: 0.0, WriteState.DELAYED: 1.0,
                     WriteState.STOPPED: 2.0}
            tel.gauge("wc.state", lambda: codes[self.state])
            tel.deriv("wc.stall_time", lambda: self.total_stall_time + (
                (self.env.now - self._stall_start)
                if self._stall_start is not None else 0.0))
            tel.deriv("wc.delayed_time", lambda: self.total_delayed_time)
            tel.gauge("wc.delay_rate", lambda: self.current_delay_rate)
            tel.rate("wc.stalls")
            tel.rate("wc.slowdowns")

    # -- state machine -----------------------------------------------------
    def _conditions(self) -> tuple[str, str]:
        imm, l0, pending, mem_full = self.stats_fn()
        opt = self.options
        # RocksDB semantics: with N write buffers, one stays active and the
        # writer keeps filling it while up to N-1 immutables flush in the
        # background.  Writes stop only when the active buffer is full AND
        # the immutable backlog is at its limit (flush can't keep up).
        if mem_full and imm >= max(1, opt.max_write_buffer_number - 1):
            return WriteState.STOPPED, StallReason.MEMTABLE
        if l0 >= opt.level0_stop_writes_trigger:
            return WriteState.STOPPED, StallReason.L0
        if pending >= opt.hard_pending_compaction_bytes_limit:
            return WriteState.STOPPED, StallReason.PENDING_BYTES
        if l0 >= opt.level0_slowdown_writes_trigger:
            return WriteState.DELAYED, StallReason.L0
        if pending >= opt.soft_pending_compaction_bytes_limit:
            return WriteState.DELAYED, StallReason.PENDING_BYTES
        return WriteState.NORMAL, StallReason.NONE

    def _adapt_delay_rate(self) -> None:
        """Multiplicative rate control while DELAYED (RocksDB-style).

        Deliberately asymmetric: the rate backs off fast while the backlog
        worsens (x0.71, RocksDB's kIncSlowdownRatio inverse) and recovers
        slowly (x1.05) — RocksDB keeps throttling hard until the stall
        condition actually clears, which is why the paper observes long
        windows pinned near the 2 Kops/s floor (Fig 2 c/d).
        """
        imm, l0, pending, _full = self.stats_fn()
        backlog = (l0, pending)
        if self._last_backlog is not None:
            old_rate = self.current_delay_rate
            if backlog > self._last_backlog:
                self.current_delay_rate = max(self.min_delay_rate,
                                              self.current_delay_rate * 0.71)
            elif backlog < self._last_backlog:
                self.current_delay_rate = min(self.max_delay_rate,
                                              self.current_delay_rate * 1.05)
            tr = self.env.tracer
            if tr is not None and self.current_delay_rate != old_rate:
                tr.instant("stall", "slowdown.rate", actor="write_controller",
                           args={"rate": self.current_delay_rate,
                                 "reason": self.reason})
        self._last_backlog = backlog

    def refresh(self) -> None:
        """Re-evaluate conditions; called after any LSM state change."""
        new_state, new_reason = self._conditions()
        old_state = self.state
        if new_state == old_state:
            self.reason = new_reason
            if new_state == WriteState.DELAYED:
                self._adapt_delay_rate()
            return
        now = self.env.now
        tr = self.env.tracer
        # leaving STOPPED
        if old_state == WriteState.STOPPED:
            if self._stall_start is not None:
                self.stall_intervals.append((self._stall_start, now))
                self.total_stall_time += now - self._stall_start
                if self._stall_reason is not None:
                    self.stall_reason_time[self._stall_reason] = (
                        self.stall_reason_time.get(self._stall_reason, 0.0)
                        + now - self._stall_start)
                self._stall_start = None
            ended_reason, self._stall_reason = self._stall_reason, None
            if tr is not None:
                if self._stall_span is not None:
                    tr.end(self._stall_span)
                    self._stall_span = None
                tr.instant("stall", "stall.exit", actor="write_controller",
                           args={"reason": ended_reason})
            ev, self._clear_event = self._clear_event, None
            if ev is not None:
                ev.succeed()
        # entering STOPPED
        if new_state == WriteState.STOPPED:
            self._stall_start = now
            self.stall_events += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.add("wc.stalls")
            self._stall_reason = new_reason
            self.stall_reason_counts[new_reason] = (
                self.stall_reason_counts.get(new_reason, 0) + 1)
            self._clear_event = self.env.event()
            if tr is not None:
                imm, l0, pending, _full = self.stats_fn()
                pressure = {"reason": new_reason, "l0": l0, "imm": imm,
                            "pending_bytes": pending}
                tr.instant("stall", "stall.enter", actor="write_controller",
                           args=pressure)
                self._stall_span = tr.begin(
                    "stall", f"stall.{new_reason}", actor="write_controller",
                    args=pressure)
        # entering DELAYED from any other state counts one slowdown instance
        if new_state == WriteState.DELAYED and self.options.slowdown_enabled:
            self.slowdown_events += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.add("wc.slowdowns")
            self.slowdown_reason_counts[new_reason] = (
                self.slowdown_reason_counts.get(new_reason, 0) + 1)
            self.current_delay_rate = self.options.delayed_write_rate
            self._last_backlog = None
            if tr is not None:
                tr.instant("stall", "slowdown.enter", actor="write_controller",
                           args={"reason": new_reason,
                                 "rate": self.current_delay_rate})
        self.state = new_state
        self.reason = new_reason

    # -- the gate ---------------------------------------------------------
    def gate(self, nbytes: int) -> Generator:
        """Block the writer according to the current state.

        Returns the seconds this write was held (stall + delay), so the
        caller can fold it into per-op latency.
        """
        held = 0.0
        opt = self.options
        while True:
            self.refresh()
            if self.state == WriteState.STOPPED:
                t0 = self.env.now
                assert self._clear_event is not None
                lp = self.env.lineage
                if lp is not None:
                    lp.enter("stall")
                try:
                    yield self._clear_event
                finally:
                    if lp is not None:
                        lp.leave()
                held += self.env.now - t0
                continue  # conditions may have re-degraded
            if self.state == WriteState.DELAYED and opt.slowdown_enabled:
                now = self.env.now
                reason = self.reason
                self._next_allowed = max(self._next_allowed, now)
                wait = self._next_allowed - now
                self._next_allowed += nbytes / self.current_delay_rate
                if wait > 0:
                    # nap in slowdown_sleep quanta like RocksDB's 1 ms sleeps
                    t0 = now
                    remaining = wait
                    lp = self.env.lineage
                    if lp is not None:
                        lp.enter("slowdown")
                    try:
                        while remaining > 0:
                            nap = min(opt.slowdown_sleep, remaining)
                            yield self.env.timeout(nap)
                            remaining -= nap
                    finally:
                        if lp is not None:
                            lp.leave()
                    dt = self.env.now - t0
                    held += dt
                    self.total_delayed_time += dt
                    self.delayed_reason_time[reason] = (
                        self.delayed_reason_time.get(reason, 0.0) + dt)
            return held

    # -- queries -------------------------------------------------------------
    @property
    def is_stall_condition(self) -> bool:
        """True when slowdown-level pressure exists (the Detector's signal)."""
        return self.state != WriteState.NORMAL

    def breakdown(self) -> dict:
        """Per-StallReason accounting (RunResult.stall_breakdown)."""
        return {
            "stalls": dict(self.stall_reason_counts),
            "stall_time": dict(self.stall_reason_time),
            "slowdowns": dict(self.slowdown_reason_counts),
            "delayed_time": dict(self.delayed_reason_time),
        }

    def finalize(self) -> None:
        """Close an open stall interval at end of run (for reporting)."""
        if self._stall_start is not None:
            now = self.env.now
            self.stall_intervals.append((self._stall_start, now))
            self.total_stall_time += now - self._stall_start
            if self._stall_reason is not None:
                self.stall_reason_time[self._stall_reason] = (
                    self.stall_reason_time.get(self._stall_reason, 0.0)
                    + now - self._stall_start)
            self._stall_start = now
        tr = self.env.tracer
        if tr is not None and self._stall_span is not None:
            tr.end(self._stall_span)
            self._stall_span = None
