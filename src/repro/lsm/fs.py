"""Minimal extent-based file layer over the block device.

The host LSM needs just enough of a file system for SSTs, WAL segments and
the MANIFEST: named append-only files backed by byte extents on the block
region.  Extent allocation is first-fit over a free list with a bump
cursor, and deletes return extents for reuse — so a long fillrandom run
recycles the space of compacted-away SSTs instead of marching off the end
of the device.

All I/O charging flows through the underlying :class:`BlockDevice`, so PCIe
and NAND ledgers see every file operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..device.block_dev import BlockDevice
from ..faults.registry import fault_point

__all__ = ["FileSystem", "SimFile", "FsError", "PageCache"]


class PageCache:
    """Host page cache for recently *written* files.

    Freshly flushed SSTs (especially L0) sit in the OS page cache, so the
    immediately following L0->L1 compaction reads them without touching the
    device.  That host-side caching is what produces the paper's
    zero-PCIe-traffic windows inside write stalls (Figs 4/5): the merge
    phase runs from cache, silent on the link, then bursts when writing
    output.

    Granularity is whole files with LRU eviction by insertion/touch order;
    reads do not populate (write-back behaviour only), keeping the model
    conservative about read caching.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity = capacity_bytes
        self._files: dict[str, int] = {}  # name -> cached bytes, LRU order
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def insert(self, name: str, nbytes: int) -> None:
        """(Re)cache a file at ``nbytes``, placing it at MRU position."""
        if self.capacity == 0:
            return
        self._bytes -= self._files.pop(name, 0)
        self._files[name] = nbytes
        self._bytes += nbytes
        self._evict_over_capacity(keep=name)

    def _evict_over_capacity(self, keep: str) -> None:
        while self._bytes > self.capacity and self._files:
            victim = next(iter(self._files))
            if victim == keep and len(self._files) == 1:
                break  # keep at least the file just written
            self._bytes -= self._files.pop(victim)

    def grow(self, name: str, nbytes: int) -> None:
        """Extend a cached file by an appended extent (MRU touch)."""
        if self.capacity == 0:
            return
        cur = self._files.pop(name, 0)
        self._files[name] = cur + nbytes
        self._bytes += nbytes
        self._evict_over_capacity(keep=name)

    def contains(self, name: str) -> bool:
        hit = name in self._files
        if hit:
            # touch: move to MRU
            self._files[name] = self._files.pop(name)
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def evict(self, name: str) -> None:
        self._bytes -= self._files.pop(name, 0)

    @property
    def used_bytes(self) -> int:
        return self._bytes


class FsError(RuntimeError):
    """File-layer misuse: duplicate create, missing file, out of space."""


@dataclass
class SimFile:
    """A named append-only file as a list of (offset, nbytes) extents."""

    name: str
    extents: list = field(default_factory=list)
    size: int = 0
    closed: bool = False


class FileSystem:
    """Extent allocator + name table over one block device."""

    def __init__(self, device: BlockDevice, reserve: int = 0,
                 page_cache: Optional[PageCache] = None):
        self.device = device
        self._files: dict[str, SimFile] = {}
        self._cursor = reserve          # bytes [0, reserve) left for superblock
        self._free: list[tuple[int, int]] = []  # (offset, nbytes), first-fit
        self.capacity = device.capacity_bytes
        self.page_cache = page_cache

    # -- namespace ----------------------------------------------------------
    def create(self, name: str) -> SimFile:
        if name in self._files:
            raise FsError(f"file exists: {name}")
        f = SimFile(name)
        self._files[name] = f
        return f

    def open(self, name: str) -> SimFile:
        try:
            return self._files[name]
        except KeyError:
            raise FsError(f"no such file: {name}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise FsError(f"no such file: {name}")
        for off, n in f.extents:
            self.device.trim(off, n)
            self._free.append((off, n))
        if self.page_cache is not None:
            self.page_cache.evict(name)
        f.closed = True

    def list_files(self) -> list[str]:
        return sorted(self._files)

    @property
    def used_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    # -- allocation ----------------------------------------------------------
    def _allocate(self, nbytes: int) -> tuple[int, int]:
        for i, (off, n) in enumerate(self._free):
            if n >= nbytes:
                if n == nbytes:
                    self._free.pop(i)
                else:
                    self._free[i] = (off + nbytes, n - nbytes)
                return off, nbytes
        if self._cursor + nbytes > self.capacity:
            raise FsError(
                f"device full: need {nbytes}, cursor {self._cursor}, "
                f"capacity {self.capacity}"
            )
        off = self._cursor
        self._cursor += nbytes
        return off, nbytes

    # -- I/O ------------------------------------------------------------------
    def append(self, f: SimFile, nbytes: int, priority: int = 0) -> Generator:
        """Append ``nbytes`` to ``f`` (blocking process generator)."""
        if f.closed:
            raise FsError(f"file deleted: {f.name}")
        if nbytes <= 0:
            return
        off, n = self._allocate(nbytes)
        f.extents.append((off, n))
        f.size += n
        env = self.device.env
        if env.faults is not None or env.journal is not None:
            # Between allocation and the device write: a crash here models
            # a torn append (space claimed, data never made it to media).
            yield from fault_point(env, "fs.append.alloc")
        yield from self.device.write(off, n, priority=priority)
        if self.page_cache is not None:
            self.page_cache.grow(f.name, n)
        if env.faults is not None or env.journal is not None:
            yield from fault_point(env, "fs.append.complete")

    def read(self, f: SimFile, offset: int, nbytes: int,
             priority: int = 0) -> Generator:
        """Read ``nbytes`` at file ``offset`` (blocking process generator)."""
        if f.closed:
            raise FsError(f"file deleted: {f.name}")
        if offset < 0 or offset + nbytes > f.size:
            raise FsError(
                f"read beyond EOF: {f.name} offset={offset} n={nbytes} size={f.size}"
            )
        if self.device.env.faults is not None or self.device.env.journal is not None:
            # Probed before the page-cache check so cache-served reads are
            # still injectable (modeled read failure, not media failure).
            yield from fault_point(self.device.env, "fs.read.start")
        if self.page_cache is not None and self.page_cache.contains(f.name):
            return  # served from host page cache: no device traffic
        remaining = nbytes
        pos = 0
        for ext_off, ext_n in f.extents:
            if remaining <= 0:
                break
            # Overlap of [offset, offset+nbytes) with this extent's file range.
            ext_start, ext_end = pos, pos + ext_n
            lo = max(offset, ext_start)
            hi = min(offset + nbytes, ext_end)
            if hi > lo:
                dev_off = ext_off + (lo - ext_start)
                yield from self.device.read(dev_off, hi - lo,
                                            priority=priority)
                remaining -= hi - lo
            pos = ext_end

    def read_all(self, f: SimFile) -> Generator:
        yield from self.read(f, 0, f.size)
