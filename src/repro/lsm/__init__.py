"""Host LSM-KVS engine (the paper's Main-LSM; RocksDB-like)."""

from .bloom import BloomFilter
from .codec import (
    decode_block,
    decode_entry,
    decode_varint,
    encode_block,
    encode_entry,
    encode_varint,
)
from .compaction import (
    CompactionJob,
    CompactionPicker,
    merge_for_compaction,
    split_into_files,
)
from .db import DbImpl, DbStats
from .fs import FileSystem, FsError, PageCache, SimFile
from .iterator import k_way_merge, merging_iterator
from .memtable import DictMemTable, MemTable, SkipListMemTable
from .options import CpuCosts, LsmOptions
from .sstable import ProbeResult, SSTable
from .version import FileMetadata, Version, VersionEdit, VersionSet
from .wal import Wal
from .write_controller import StallReason, WriteController, WriteState

__all__ = [
    "BloomFilter",
    "decode_block",
    "decode_entry",
    "decode_varint",
    "encode_block",
    "encode_entry",
    "encode_varint",
    "CompactionJob",
    "CompactionPicker",
    "merge_for_compaction",
    "split_into_files",
    "DbImpl",
    "DbStats",
    "FileSystem",
    "FsError",
    "PageCache",
    "SimFile",
    "k_way_merge",
    "merging_iterator",
    "DictMemTable",
    "MemTable",
    "SkipListMemTable",
    "CpuCosts",
    "LsmOptions",
    "ProbeResult",
    "SSTable",
    "FileMetadata",
    "Version",
    "VersionEdit",
    "VersionSet",
    "Wal",
    "StallReason",
    "WriteController",
    "WriteState",
]
