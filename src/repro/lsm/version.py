"""LSM version management: levels, manifest, compaction scores.

A :class:`Version` is an immutable snapshot of the level structure
(copy-on-write, so in-flight reads and compactions see consistent state
while new versions install).  :class:`VersionSet` applies
:class:`VersionEdit` s, persists them to a MANIFEST file, and computes the
two statistics the write-stall machinery watches: per-level compaction
scores and the estimated *pending compaction bytes* (RocksDB's
``estimated-pending-compaction-bytes``, the third stall trigger in the
paper's taxonomy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from .options import LsmOptions
from .sstable import SSTable

__all__ = ["FileMetadata", "VersionEdit", "Version", "VersionSet"]


@dataclass
class FileMetadata:
    """One SST file registered in a version."""

    number: int
    level: int
    table: SSTable
    being_compacted: bool = False

    @property
    def smallest(self) -> bytes:
        return self.table.smallest

    @property
    def largest(self) -> bytes:
        return self.table.largest

    @property
    def file_bytes(self) -> int:
        return self.table.file_bytes


@dataclass
class VersionEdit:
    """A delta applied atomically: files added and files removed."""

    added: list = field(default_factory=list)    # FileMetadata
    removed: list = field(default_factory=list)  # (level, file_number)
    reason: str = ""

    def encoded_size(self) -> int:
        """Approximate manifest record size (for I/O charging)."""
        return 64 + 48 * len(self.added) + 16 * len(self.removed)


class Version:
    """Immutable level structure."""

    def __init__(self, num_levels: int,
                 levels: Optional[list] = None):
        self.num_levels = num_levels
        self.levels: list[list[FileMetadata]] = (
            levels if levels is not None else [[] for _ in range(num_levels)]
        )

    def clone(self) -> "Version":
        return Version(self.num_levels, [list(lvl) for lvl in self.levels])

    # -- queries ------------------------------------------------------------
    def level_bytes(self, level: int) -> int:
        return sum(f.file_bytes for f in self.levels[level])

    def level_files(self, level: int) -> list:
        return self.levels[level]

    @property
    def l0_count(self) -> int:
        return len(self.levels[0])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(l) for l in range(self.num_levels))

    def total_files(self) -> int:
        return sum(len(l) for l in self.levels)

    def overlapping_files(self, level: int, smallest: bytes,
                          largest: bytes) -> list:
        return [f for f in self.levels[level]
                if f.table.overlaps(smallest, largest)]

    def files_for_key(self, key: bytes) -> Generator:
        """Yield candidate files newest-first: L0 by recency, then L1+.

        L0 files may overlap, so all covering files are candidates in file
        number order (newer numbers are newer data).  L1+ are disjoint, so
        at most one file per level matters.
        """
        for f in sorted(self.levels[0], key=lambda f: -f.number):
            if f.smallest <= key <= f.largest:
                yield f
        for level in range(1, self.num_levels):
            files = self.levels[level]
            lo, hi = 0, len(files)
            while lo < hi:
                mid = (lo + hi) // 2
                if files[mid].largest < key:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(files) and files[lo].smallest <= key <= files[lo].largest:
                yield files[lo]

    # -- stall statistics -----------------------------------------------------
    def level_targets(self, options: LsmOptions) -> list:
        """Dynamic level size targets (RocksDB's
        ``level_compaction_dynamic_level_bytes``, default since v8).

        The bottommost non-empty level is the resting place: its target is
        its own size (never "over target").  Each level above targets
        1/multiplier of the one below, floored at base/multiplier, so
        scores stay balanced as the tree deepens instead of letting a
        statically-undersized L1 monopolize the picker.
        """
        n = self.num_levels
        targets = [0.0] * n
        nonempty = [l for l in range(1, n) if self.levels[l]]
        bottom = max(nonempty) if nonempty else 1
        targets[bottom] = max(float(self.level_bytes(bottom)),
                              float(options.max_bytes_for_level_base))
        floor = options.max_bytes_for_level_base / options.max_bytes_for_level_multiplier
        for level in range(bottom - 1, 0, -1):
            targets[level] = max(targets[level + 1]
                                 / options.max_bytes_for_level_multiplier,
                                 floor)
        for level in range(bottom + 1, n):
            targets[level] = max(targets[level - 1]
                                 * options.max_bytes_for_level_multiplier,
                                 float(options.max_bytes_for_level_base))
        return targets

    def compaction_score(self, options: LsmOptions, level: int) -> float:
        """RocksDB-style score: >= 1.0 means the level needs compaction."""
        if level == 0:
            return self.l0_count / options.level0_file_num_compaction_trigger
        targets = self.level_targets(options)
        return self.level_bytes(level) / targets[level]

    def best_compaction_level(self, options: LsmOptions) -> tuple[int, float]:
        """(level, score) of the most urgent compaction candidate."""
        best_level, best_score = -1, 0.0
        for level in range(self.num_levels - 1):
            score = self.compaction_score(options, level)
            if score > best_score:
                best_level, best_score = level, score
        return best_level, best_score

    def pending_compaction_bytes(self, options: LsmOptions) -> int:
        """Estimated bytes that must be rewritten to bring scores under 1.

        Approximates RocksDB's estimate: every byte above a level's target
        must move down (and be merged with overlap, counted once here), and
        all L0 bytes beyond the compaction trigger are debt.
        """
        debt = 0
        l0_bytes = self.level_bytes(0)
        trigger = options.level0_file_num_compaction_trigger
        if self.l0_count >= trigger:
            debt += l0_bytes
        targets = self.level_targets(options)
        for level in range(1, self.num_levels - 1):
            excess = self.level_bytes(level) - targets[level]
            if excess > 0:
                debt += int(excess)
        return debt


class VersionSet:
    """Owner of the current version + MANIFEST persistence."""

    def __init__(self, options: LsmOptions, fs=None):
        self.options = options
        self.fs = fs
        self.current = Version(options.num_levels)
        self._next_file_number = 1
        self._manifest = None
        if fs is not None:
            self._manifest = fs.create("MANIFEST-000001")
        self.edit_count = 0
        # The durable edit journal (what the MANIFEST file contains); crash
        # recovery replays it to prove the version state is reconstructible.
        self.manifest_journal: list[VersionEdit] = []

    def new_file_number(self) -> int:
        n = self._next_file_number
        self._next_file_number += 1
        return n

    def log_and_apply(self, edit: VersionEdit) -> Generator:
        """Persist the edit and atomically install the new version.

        Manifest I/O happens *before* the in-memory mutation: the clone ->
        mutate -> install sequence contains no yields, so concurrent flush
        and compaction installs cannot lose each other's updates.
        """
        if self._manifest is not None:
            yield from self.fs.append(self._manifest, edit.encoded_size())
        new = self.current.clone()
        removed = set(edit.removed)
        for level in range(new.num_levels):
            new.levels[level] = [
                f for f in new.levels[level] if (level, f.number) not in removed
            ]
        for meta in edit.added:
            new.levels[meta.level].append(meta)
        for level in range(1, new.num_levels):
            new.levels[level].sort(key=lambda f: f.smallest)
        self._validate(new)
        self.current = new
        self.edit_count += 1
        self.manifest_journal.append(edit)

    def apply(self, edit: VersionEdit) -> None:
        """Install an edit without manifest I/O (test/bootstrap helper)."""
        manifest, self._manifest = self._manifest, None
        try:
            gen = self.log_and_apply(edit)
            for _ in gen:  # no manifest -> no yields; loop never iterates
                raise AssertionError("unexpected I/O in apply()")
        finally:
            self._manifest = manifest

    def rebuild_from_journal(self) -> Version:
        """Replay the manifest journal from scratch (crash recovery).

        Returns the reconstructed version; raises if replay diverges from
        the in-memory current version (would indicate a lost update).
        """
        replayed = Version(self.options.num_levels)
        for edit in self.manifest_journal:
            removed = set(edit.removed)
            for level in range(replayed.num_levels):
                replayed.levels[level] = [
                    f for f in replayed.levels[level]
                    if (level, f.number) not in removed
                ]
            for meta in edit.added:
                replayed.levels[meta.level].append(meta)
            for level in range(1, replayed.num_levels):
                replayed.levels[level].sort(key=lambda f: f.smallest)
        self._validate(replayed)
        got = [[f.number for f in lvl] for lvl in replayed.levels]
        want = [[f.number for f in lvl] for lvl in self.current.levels]
        if got != want:
            raise AssertionError(
                f"manifest replay diverged: {got} != {want}")
        return replayed

    @staticmethod
    def _validate(version: Version) -> None:
        """L1+ must stay sorted and non-overlapping (LSM invariant)."""
        for level in range(1, version.num_levels):
            files = version.levels[level]
            for a, b in zip(files, files[1:]):
                if a.largest >= b.smallest:
                    raise AssertionError(
                        f"overlap at L{level}: #{a.number}[..{a.largest!r}] vs "
                        f"#{b.number}[{b.smallest!r}..]"
                    )
