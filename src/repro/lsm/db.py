"""DbImpl — the simulated RocksDB-like host LSM-KVS.

The write path, flush, leveled compaction, write-stall machinery, point
reads and range scans, all running as processes on the DES kernel and
charging the device (PCIe + NAND) and host CPU models.

This is the "Main-LSM" of the paper.  The baselines (plain RocksDB with or
without slowdown, ADOC) and KVACCEL all embed a ``DbImpl``; they differ
only in the policies wrapped around it.

All public operations (``put``, ``get``, ``scan``...) are *process
generators*: drive them with ``yield from`` inside a simulation process, or
``env.run(until=env.process(db.put(...)))`` from test code.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ..device.block_dev import BlockDevice
from ..device.cpu import CpuModel
from ..faults.registry import fault_point, touch
from ..resil.errors import DeviceError
from ..sim import Environment, Event, Interrupt, Store
from ..types import KIND_DELETE, KIND_PUT, Entry, entry_size, make_entry, value_size
from .compaction import CompactionJob, CompactionPicker, merge_for_compaction, split_into_files
from .fs import FileSystem, FsError, PageCache
from .iterator import merging_iterator
from .memtable import DictMemTable, MemTable
from .options import LsmOptions
from .sstable import SSTable
from .version import FileMetadata, VersionEdit, VersionSet
from .wal import Wal
from .write_controller import WriteController, WriteState

__all__ = ["DbImpl", "DbStats"]

_FLUSH_CLOSE = object()


class DbStats:
    """Cumulative counters exposed to the harness."""

    def __init__(self) -> None:
        self.user_writes = 0
        self.user_write_bytes = 0
        self.user_reads = 0
        self.read_hits = 0
        self.user_seeks = 0
        self.user_nexts = 0
        self.flushes = 0
        self.flush_bytes_written = 0
        self.compactions = 0
        self.compaction_bytes_read = 0
        self.compaction_bytes_written = 0
        self.write_latencies: Optional[object] = None   # histogram hook
        self.read_latencies: Optional[object] = None

    def record_write_latency(self, seconds: float, count: int = 1) -> None:
        if self.write_latencies is not None:
            self.write_latencies.record(seconds * 1e6, count)

    def record_read_latency(self, seconds: float) -> None:
        if self.read_latencies is not None:
            self.read_latencies.record(seconds * 1e6)


class DbImpl:
    """The host LSM-KVS engine."""

    def __init__(
        self,
        env: Environment,
        options: LsmOptions,
        device: BlockDevice,
        host_cpu: CpuModel,
        name: str = "db",
        memtable_factory=DictMemTable,
        page_cache_bytes: Optional[int] = None,
    ):
        self.env = env
        self.options = options
        self.host_cpu = host_cpu
        self.name = name
        self._memtable_factory = memtable_factory

        cache_bytes = (page_cache_bytes if page_cache_bytes is not None
                       else 8 * options.write_buffer_size)
        self.page_cache = PageCache(cache_bytes)
        self.fs = FileSystem(device, page_cache=self.page_cache)
        self.versions = VersionSet(options, self.fs)
        self.wal: Optional[Wal] = (
            Wal(self.fs, options.wal_group_commit_bytes, name_prefix=f"{name}.wal")
            if options.wal_enabled else None
        )
        if self.wal is not None:
            self.wal.new_segment()

        self.mem: MemTable = memtable_factory()
        self.imm: list[tuple[MemTable, Optional[object]]] = []  # (memtable, wal segment)
        self._seq = 0
        self.stats = DbStats()

        self.write_controller = WriteController(env, options, self._stall_stats)
        self.picker = CompactionPicker(options)

        self._flush_queue = Store(env)
        self._active_compactions = 0
        self._inflight_compactions: dict = {}   # Process -> CompactionJob
        self._inflight_flush_file = None
        self._bg_wake: Optional[Event] = None
        self._closed = False
        self.background_error: Optional[BaseException] = None
        # Sealed memtables whose flush hit a device error while the DB is
        # in background-error state; resume() re-queues them.  Their WAL
        # segments stay live, so their data remains durable meanwhile.
        self._paused_flushes: list = []

        self._flush_proc = env.process(self._flush_worker(), name=f"{name}.flush")
        self._sched_proc = env.process(self._compaction_scheduler(),
                                       name=f"{name}.compact-sched")

        tel = env.telemetry
        if tel is not None:
            # Pressure gauges behind every stall decision, sampled per
            # bucket; op/byte rates are published inline by the hot paths.
            tel.gauge("lsm.memtable_bytes", lambda: self.mem.approximate_bytes)
            tel.gauge("lsm.imm", lambda: len(self.imm))
            tel.gauge("lsm.l0", lambda: self.versions.current.l0_count)
            tel.gauge("lsm.pending_bytes",
                      lambda: self.versions.current.pending_compaction_bytes(
                          self.options))
            tel.rate("lsm.write_ops")
            tel.rate("lsm.read_ops")
            tel.rate("lsm.flush_bytes")
            tel.rate("lsm.compaction_bytes")

    # ------------------------------------------------------------------ state
    def _stall_stats(self) -> tuple[int, int, int, bool]:
        v = self.versions.current
        return (len(self.imm), v.l0_count,
                v.pending_compaction_bytes(self.options),
                self.mem.approximate_bytes >= self.options.write_buffer_size)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def l0_count(self) -> int:
        return self.versions.current.l0_count

    @property
    def memtable_bytes(self) -> int:
        return self.mem.approximate_bytes

    @property
    def pending_compaction_bytes(self) -> int:
        return self.versions.current.pending_compaction_bytes(self.options)

    @property
    def immutable_count(self) -> int:
        return len(self.imm)

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def note_external_seq(self, seq: int) -> None:
        """Keep the global sequence monotonic when another component
        (KVACCEL's controller) allocates sequence numbers."""
        if seq > self._seq:
            self._seq = seq

    def _wake_background(self) -> None:
        ev = self._bg_wake
        if ev is not None and not ev.triggered:
            ev.succeed()

    # --------------------------------------------------------- background error
    @property
    def read_only(self) -> bool:
        """RocksDB-style background-error state: writes are refused until
        :meth:`resume`."""
        return self.background_error is not None

    def set_background_error(self, exc: BaseException) -> None:
        """Latch the first background error (WAL/manifest fsync failure,
        flush or compaction I/O error).  Foreground writes raise it until
        an explicit :meth:`resume` — exactly RocksDB's
        ``SetBGError`` / read-only-mode contract."""
        if self.background_error is not None:
            return
        self.background_error = exc
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "db.bg_error.set")
        if self.env.tracer is not None:
            self.env.tracer.instant("db", "bg_error",
                                    args={"error": str(exc)})

    def resume(self) -> None:
        """Clear the background error (RocksDB ``Resume()``): restart the
        flush worker if the error killed it, re-queue parked flushes, and
        wake the compaction scheduler."""
        if self.background_error is None:
            return
        self.background_error = None
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "db.resume")
        if self.env.tracer is not None:
            self.env.tracer.instant("db", "resume")
        if not self._flush_proc.is_alive and not self._closed:
            self._flush_proc = self.env.process(self._flush_worker(),
                                                name=f"{self.name}.flush")
        for item in self._paused_flushes:
            self._flush_queue.put(item)
        self._paused_flushes = []
        self.write_controller.refresh()
        self._wake_background()

    # ------------------------------------------------------------------ write
    def put(self, key: bytes, value, seq: Optional[int] = None) -> Generator:
        """Insert one key-value pair (process generator)."""
        yield from self.put_batch([(key, value)],
                                  seqs=[seq] if seq is not None else None)

    def delete(self, key: bytes, seq: Optional[int] = None) -> Generator:
        t0 = self.env.now
        if seq is not None:
            self.note_external_seq(seq)
        else:
            seq = self.next_seq()
        yield from self._write_entries(
            [make_entry(key, seq, None, kind=KIND_DELETE)])
        self.stats.record_write_latency(self.env.now - t0)

    def put_batch(self, pairs: list, seqs: Optional[list] = None) -> Generator:
        """Insert many pairs as one write batch (one gate, one CPU charge).

        Latency is recorded per pair as the full batch residence time,
        matching how group-committed writers observe completion.
        """
        t0 = self.env.now
        entries = []
        for i, (key, value) in enumerate(pairs):
            seq = seqs[i] if seqs is not None else self.next_seq()
            if seqs is not None:
                self.note_external_seq(seq)
            entries.append(make_entry(key, seq, value, kind=KIND_PUT))
        yield from self._write_entries(entries)
        self.stats.record_write_latency(self.env.now - t0, count=len(entries))

    def write_entries(self, entries: list) -> Generator:
        """Raw internal-entry write (rollback merges use this to preserve
        original sequence numbers and tombstones)."""
        for e in entries:
            self.note_external_seq(e[1])
        yield from self._write_entries(entries)

    def _write_entries(self, entries: list) -> Generator:
        if self._closed:
            raise RuntimeError("db closed")
        if self.background_error is not None:
            raise self.background_error
        opt = self.options
        nbytes = sum(entry_size(e) for e in entries)
        tr = self.env.tracer
        _sp = (tr.begin("write", "write",
                        args={"entries": len(entries), "bytes": nbytes})
               if tr is not None else None)
        if self.env.faults is not None or self.env.journal is not None:
            # Pre-persistence: the batch exists only in the caller's hands.
            yield from fault_point(self.env, "db.write.gate")
        held = yield from self.write_controller.gate(nbytes)
        yield from self.host_cpu.consume(opt.cpu.put * len(entries),
                                         tag=f"{self.name}.write")
        if self.wal is not None:
            try:
                yield from self.wal.append(nbytes, records=entries)
            except DeviceError as exc:
                # WAL write/fsync error: the batch is NOT applied (the
                # caller must not consider it acked) and the DB latches
                # into read-only state.
                self.set_background_error(exc)
                raise
        for e in entries:
            self.mem.add(e)
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "db.write.applied")
        self.stats.user_writes += len(entries)
        self.stats.user_write_bytes += nbytes
        tel = self.env.telemetry
        if tel is not None:
            tel.add("lsm.write_ops", len(entries))
        if self.mem.approximate_bytes >= opt.write_buffer_size:
            lp = self.env.lineage
            if lp is not None:
                lp.enter("memtable")
            try:
                yield from self._switch_memtable()
            finally:
                if lp is not None:
                    lp.leave()
        if _sp is not None:
            tr.end(_sp, args={"held": held})

    def _switch_memtable(self) -> Generator:
        """Seal the active memtable and queue it for flush.

        If the immutable backlog is at its limit, this is exactly the
        memtable write stall: wait (via the gate, which books the stall)
        until a flush drains a slot.  Another writer may complete the
        switch while we wait, in which case there is nothing left to do.
        """
        sealing = self.mem
        limit = max(1, self.options.max_write_buffer_number - 1)
        while len(self.imm) >= limit:
            yield from self.write_controller.gate(0)
            if self.mem is not sealing:
                return  # a concurrent writer already switched
            if len(self.imm) >= limit and self.write_controller.state == WriteState.NORMAL:
                # Conditions cleared mid-check (e.g. mem no longer full);
                # avoid a busy spin by yielding one flush-poll tick.
                yield self.env.timeout(1e-4)
        if self.mem is not sealing:
            return
        segment = None
        if self.wal is not None:
            try:
                yield from self.wal.sync()
            except DeviceError as exc:
                self.set_background_error(exc)
                raise
            segment = self.wal.current_segment
            self.wal.new_segment()
        sealed = self.mem
        self.mem = self._memtable_factory()
        self.imm.append((sealed, segment))
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "db.memtable.seal")
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "write", "memtable.seal",
                args={"bytes": sealed.approximate_bytes,
                      "imm": len(self.imm)})
        self.write_controller.refresh()
        yield self._flush_queue.put((sealed, segment))

    # ------------------------------------------------------------------ flush
    def _flush_worker(self):
        while True:
            item = None
            try:
                item = yield self._flush_queue.get()
                if item is _FLUSH_CLOSE:
                    return
                if self.background_error is not None:
                    # Read-only mode: park the sealed memtable for
                    # resume(); its WAL segment keeps the data durable.
                    self._paused_flushes.append(item)
                    continue
                mem, segment = item
                yield from self._flush_one(mem, segment)
            except Interrupt:
                # Crash: discard the partially written SST; the sealed
                # memtable is volatile and its data comes back from the WAL.
                f = self._inflight_flush_file
                self._inflight_flush_file = None
                if f is not None and self.fs.exists(f.name):
                    self.fs.delete(f.name)
            except DeviceError as exc:
                # Flush I/O failed: delete the partial SST, park the
                # memtable, latch background-error.  Unlike an unexpected
                # exception the worker survives, so resume() can simply
                # re-queue the parked work.
                f = self._inflight_flush_file
                self._inflight_flush_file = None
                if f is not None and self.fs.exists(f.name):
                    self.fs.delete(f.name)
                if item is not None and item is not _FLUSH_CLOSE:
                    self._paused_flushes.append(item)
                self.set_background_error(exc)
            except BaseException as exc:  # surface in foreground path
                self.background_error = exc
                raise

    def _flush_one(self, mem: MemTable, segment) -> Generator:
        opt = self.options
        tr = self.env.tracer
        _sp = (tr.begin("flush", "flush",
                        args={"bytes": mem.approximate_bytes})
               if tr is not None else None)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "db.flush.start")
        entries = mem.entries()
        if entries:
            nbytes = sum(entry_size(e) for e in entries)
            yield from self.host_cpu.consume(nbytes * opt.cpu.flush_per_byte,
                                             tag=f"{self.name}.flush")
            number = self.versions.new_file_number()
            table = SSTable(number, entries, block_size=opt.block_size,
                            bloom_bits_per_key=opt.bloom_bits_per_key)
            f = self.fs.create(self._sst_name(number))
            self._inflight_flush_file = f
            remaining = table.file_bytes
            while remaining > 0:
                chunk = min(opt.compaction_io_chunk, remaining)
                yield from self.fs.append(f, chunk)
                remaining -= chunk
            meta = FileMetadata(number=number, level=0, table=table)
            edit = VersionEdit(added=[meta], reason="flush")
            yield from self.versions.log_and_apply(edit)
            self._inflight_flush_file = None
            if self.env.faults is not None or self.env.journal is not None:
                touch(self.env, "db.flush.install")
            self.stats.flush_bytes_written += table.file_bytes
            tel = self.env.telemetry
            if tel is not None:
                tel.add("lsm.flush_bytes", table.file_bytes)
        # Retire the memtable + its WAL segment even if it was empty.
        self.imm = [(m, s) for (m, s) in self.imm if m is not mem]
        if self.wal is not None and segment is not None:
            self.wal.retire_segment(segment)
        self.stats.flushes += 1
        if _sp is not None:
            tr.end(_sp)
        self.write_controller.refresh()
        self._wake_background()

    def _sst_name(self, number: int) -> str:
        return f"{self.name}.sst-{number:06d}"

    # ------------------------------------------------------------------ compaction
    def _compaction_scheduler(self):
        while not self._closed:
            while self._active_compactions < self.options.max_background_compactions:
                if self.background_error is not None:
                    break   # read-only mode: no new background work
                job = self.picker.pick(self.versions.current)
                if job is None:
                    break
                for f in job.all_inputs:
                    f.being_compacted = True
                self._active_compactions += 1
                proc = self.env.process(self._compaction_entry(job),
                                        name=f"{self.name}.compact-L{job.level}")
                self._inflight_compactions[proc] = job
            self._bg_wake = self.env.event()
            yield self._bg_wake
            self._bg_wake = None

    def _compaction_entry(self, job: CompactionJob):
        try:
            yield from self._run_compaction(job)
        except Interrupt:
            # Crash: the job's work is lost.  Its created-but-uninstalled
            # output files are orphans (RocksDB deletes those on reopen)
            # and its inputs become pickable again.
            for meta in job.partial_outputs:
                name = self._sst_name(meta.number)
                if self.fs.exists(name):
                    self.fs.delete(name)
            for meta in job.all_inputs:
                meta.being_compacted = False
        except DeviceError as exc:
            # Compaction I/O failed: clean up as for a crash (orphan
            # outputs deleted, inputs pickable again) and latch the
            # background error instead of killing the job process tree.
            for meta in job.partial_outputs:
                name = self._sst_name(meta.number)
                if self.fs.exists(name):
                    self.fs.delete(name)
            job.partial_outputs = []
            for meta in job.all_inputs:
                meta.being_compacted = False
            self.set_background_error(exc)
        except BaseException as exc:
            self.background_error = exc
            raise
        finally:
            self._active_compactions -= 1
            self._inflight_compactions = {
                p: j for p, j in self._inflight_compactions.items() if j is not job}
            self._wake_background()

    def _run_compaction(self, job: CompactionJob) -> Generator:
        """Execute one compaction: parallel read+merge, then write-out.

        Phase 1 walks input chunks with ``min(max_subcompactions,
        max_background_compactions)`` workers; each chunk's device read (a
        no-op for page-cache-hot inputs such as fresh L0 files) overlaps
        its merge CPU, mirroring RocksDB's subcompaction + readahead
        pipeline.  Phase 2 streams the merged output files to the device.
        The merge phase is what produces the PCIe-silent windows inside
        write stalls (Figs 4/5): inputs served from host cache + CPU-only
        merging leave the link idle until the write burst.
        """
        opt = self.options
        tr = self.env.tracer
        _sp = (tr.begin("compaction",
                        f"compaction[L{job.level}->L{job.output_level}]",
                        args={"level": job.level,
                              "output_level": job.output_level,
                              "input_bytes": job.input_bytes,
                              "inputs": len(job.all_inputs)})
               if tr is not None else None)
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "db.compact.start")
        merged = merge_for_compaction(job, opt.num_levels)
        output_groups = split_into_files(merged, opt.target_file_size_base)

        input_bytes = job.input_bytes
        output_bytes = sum(sum(entry_size(e) for e in g) for g in output_groups)
        self.stats.compaction_bytes_read += input_bytes
        self.stats.compaction_bytes_written += output_bytes
        tel = self.env.telemetry
        if tel is not None:
            tel.add("lsm.compaction_bytes", input_bytes + output_bytes)

        chunk = opt.compaction_io_chunk
        par = max(1, min(opt.max_subcompactions, opt.max_background_compactions))

        # Phase 1: read + merge input chunks with `par` workers.
        chunks: list = []
        for meta in job.all_inputs:
            f = self.fs.open(self._sst_name(meta.number))
            pos = 0
            while pos < f.size:
                n = min(chunk, f.size - pos)
                chunks.append((f, pos, n))
                pos += n
        cursor = [0]

        def worker():
            while cursor[0] < len(chunks):
                f, pos, n = chunks[cursor[0]]
                cursor[0] += 1
                # background priority: flush/WAL I/O may jump ahead when
                # the device runs priority scheduling (SILK-style)
                read_p = self.env.process(self.fs.read(f, pos, n, priority=1))
                cpu_p = self.env.process(self.host_cpu.consume(
                    n * opt.cpu.compact_per_byte, tag=f"{self.name}.compact"))
                yield self.env.all_of([read_p, cpu_p])

        if chunks:
            workers = [self.env.process(worker(),
                                        name=f"{self.name}.subcompact-{i}")
                       for i in range(min(par, len(chunks)))]
            yield self.env.all_of(workers)

        # Phase 2: build and write the output files.
        added: list[FileMetadata] = []
        for group in output_groups:
            number = self.versions.new_file_number()
            table = SSTable(number, group, block_size=opt.block_size,
                            bloom_bits_per_key=opt.bloom_bits_per_key)
            meta = FileMetadata(number=number, level=job.output_level,
                                table=table)
            added.append(meta)
            job.partial_outputs.append(meta)
            out_file = self.fs.create(self._sst_name(number))
            remaining = table.file_bytes
            while remaining > 0:
                w = min(chunk, remaining)
                yield from self.fs.append(out_file, w, priority=1)
                remaining -= w

        edit = VersionEdit(
            added=added,
            removed=[(m.level, m.number) for m in job.all_inputs],
            reason=f"compact L{job.level}->L{job.output_level}",
        )
        yield from self.versions.log_and_apply(edit)
        job.partial_outputs = []
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "db.compact.install")
        for meta in job.all_inputs:
            self.fs.delete(self._sst_name(meta.number))
        self.stats.compactions += 1
        if _sp is not None:
            tr.end(_sp, args={"output_bytes": output_bytes,
                              "outputs": len(added)})
        self.write_controller.refresh()
        self._wake_background()

    # ------------------------------------------------------------------ read
    def get(self, key: bytes) -> Generator:
        """Point lookup; returns the value (bytes/ValueRef) or None."""
        entry = yield from self.get_internal(key)
        if entry is None or entry[2] == KIND_DELETE:
            return None
        self.stats.read_hits += 1
        return entry[3]

    def get_internal(self, key: bytes) -> Generator:
        """Point lookup returning the newest internal entry (or None).

        Tombstones are returned as entries — callers that need the
        user-visible value should go through :meth:`get`.
        """
        t0 = self.env.now
        yield from self.host_cpu.consume(self.options.cpu.get,
                                         tag=f"{self.name}.read")
        entry = self.mem.get(key)
        if entry is None:
            for m, _seg in reversed(self.imm):
                entry = m.get(key)
                if entry is not None:
                    break
        if entry is None:
            entry = yield from self._get_from_ssts(key)
        self.stats.user_reads += 1
        self.stats.record_read_latency(self.env.now - t0)
        tel = self.env.telemetry
        if tel is not None:
            tel.add("lsm.read_ops")
        return entry

    def _get_from_ssts(self, key: bytes) -> Generator:
        for meta in self.versions.current.files_for_key(key):
            probe = meta.table.probe(key)
            if probe.bytes_read:
                try:
                    f = self.fs.open(self._sst_name(meta.number))
                except FsError:
                    # A compaction finished mid-lookup (between two charged
                    # reads) and deleted this input file.  Real RocksDB pins
                    # the version's files with refcounts, so the read still
                    # succeeds; the in-memory table answers the probe here,
                    # we just cannot charge I/O against the deleted file.
                    f = None
                if f is not None:
                    yield from self.fs.read(f, 0,
                                            min(probe.bytes_read, f.size))
            if probe.entry is not None:
                return probe.entry
        return None

    # ------------------------------------------------------------------ scan
    def scan(self, start_key: bytes, count: int) -> Generator:
        """Seek + ``count`` Next()s; returns the list of (key, value)."""
        entries = yield from self.scan_internal(start_key, count,
                                                include_tombstones=False)
        return [(e[0], e[3]) for e in entries]

    def scan_internal(self, start_key: bytes, count: int,
                      include_tombstones: bool = False) -> Generator:
        """Seek + Next()s returning raw internal entries (with seq/kind).

        KVACCEL's dual-interface range query merges these against Dev-LSM
        entries by sequence number, so it needs the internal view.

        I/O accounting: bytes consumed from SST sources accumulate and are
        charged one block-read at a time as the scan crosses block budgets.
        """
        opt = self.options
        t0 = self.env.now
        yield from self.host_cpu.consume(opt.cpu.seek, tag=f"{self.name}.read")
        self.stats.user_seeks += 1

        sst_cost = [0]  # mutable cell shared with the wrapped sources

        def wrap_sst(meta: FileMetadata):
            for e in meta.table.iter_from(start_key):
                sst_cost[0] += entry_size(e)
                yield e

        sources: list = [self.mem.iter_from(start_key)]
        for m, _seg in reversed(self.imm):
            sources.append(m.iter_from(start_key))
        v = self.versions.current
        for meta in sorted(v.level_files(0), key=lambda f: -f.number):
            if meta.largest >= start_key:
                sources.append(wrap_sst(meta))
        for level in range(1, v.num_levels):
            files = [m for m in v.level_files(level) if m.largest >= start_key]
            if files:
                sources.append(self._level_source(files, start_key, sst_cost))

        out = []
        pending_io = 0
        merged = merging_iterator(sources, include_tombstones=include_tombstones)
        cost_before = 0
        for entry in merged:
            if len(out) >= count:
                break
            out.append(entry)
            self.stats.user_nexts += 1
            self.host_cpu.charge(opt.cpu.next, tag=f"{self.name}.read")
            # charge accumulated SST bytes in block-sized reads
            new_cost = sst_cost[0]
            pending_io += new_cost - cost_before
            cost_before = new_cost
            while pending_io >= opt.block_size:
                yield from self._charge_scan_read(opt.block_size)
                pending_io -= opt.block_size
        if pending_io > 0:
            yield from self._charge_scan_read(pending_io)
        self.stats.record_read_latency(self.env.now - t0)
        return out

    def _level_source(self, files: list, start_key: bytes, cost_cell: list):
        for meta in files:
            for e in meta.table.iter_from(start_key):
                cost_cell[0] += entry_size(e)
                yield e

    def _charge_scan_read(self, nbytes: int) -> Generator:
        """Charge a scan's data-block read against the device.

        Scans touch many files; attributing to a specific extent doesn't
        change timing, so charge the device directly.
        """
        yield from self.fs.device.read(0, nbytes)

    # ------------------------------------------------------------------ crash
    def crash_and_recover(self) -> Generator:
        """Simulate a host crash and run the standard LSM reopen path.

        Crash: volatile state evaporates — active and immutable memtables,
        the WAL's un-flushed group-commit buffer, the host page cache — and
        in-flight flush/compaction jobs die mid-I/O (their partial output
        files become orphans).

        Recovery (what RocksDB does on open):

        1. read the MANIFEST and replay its edit journal to rebuild the
           version state;
        2. delete orphan SST files not referenced by any version;
        3. replay live WAL segments oldest-first into a fresh memtable —
           only group-committed records exist on media, so the buffered
           tail is lost (exactly the durability contract of an un-synced
           WAL).

        Returns a dict with the recovery accounting.  Durable guarantee
        checked by the tests: a write survives iff it reached an SST or a
        flushed WAL group.
        """
        if self.wal is None:
            raise RuntimeError("crash recovery requires the WAL")
        t0 = self.env.now
        tr = self.env.tracer
        _sp = (tr.begin("recovery", "recovery.host", actor="recovery")
               if tr is not None else None)

        # -- the crash ---------------------------------------------------
        lost_buffered = len(self.wal._buffered_records)
        for proc in list(self._inflight_compactions):
            if proc.is_alive:
                proc.interrupt("crash")
        if self._flush_proc.is_alive:
            self._flush_proc.interrupt("crash")
        self._flush_queue.items.clear()
        # An interrupted worker's pending get() would otherwise swallow the
        # next queued flush silently: drop the stale waiter along with it.
        self._flush_queue._getters.clear()
        self.mem = self._memtable_factory()
        self.imm.clear()
        self.background_error = None      # the reopen starts clean
        self._paused_flushes.clear()
        self.wal.drop_volatile_state()
        for name in list(self.page_cache._files):  # RAM: gone
            self.page_cache.evict(name)
        # give interrupted processes their cleanup turn at the same instant
        yield self.env.timeout(0)

        # -- reopen: manifest replay --------------------------------------
        manifest = self.versions._manifest
        if manifest is not None and manifest.size > 0:
            yield from self.fs.read_all(manifest)
        self.versions.rebuild_from_journal()
        live_files = {
            self._sst_name(f.number)
            for level in self.versions.current.levels for f in level
        }
        orphans = [
            name for name in self.fs.list_files()
            if name.startswith(f"{self.name}.sst-") and name not in live_files
        ]
        for name in orphans:
            self.fs.delete(name)
        for level in self.versions.current.levels:
            for f in level:
                f.being_compacted = False

        # -- reopen: WAL replay --------------------------------------------
        replayed = 0
        for segment_name in self.wal.live_segments():
            records = self.wal.durable_records(segment_name)
            if self.fs.exists(segment_name):
                seg = self.fs.open(segment_name)
                if seg.size > 0:
                    yield from self.fs.read_all(seg)
            if not records:
                continue
            yield from self.host_cpu.consume(
                self.options.cpu.put * len(records) * 0.5,
                tag=f"{self.name}.recover")
            for e in records:
                self.mem.add(e)
                self.note_external_seq(e[1])
            replayed += len(records)

        # restart a flush worker if the crash killed it
        if not self._flush_proc.is_alive:
            self._flush_proc = self.env.process(self._flush_worker(),
                                                name=f"{self.name}.flush")
        self.write_controller.refresh()
        self._wake_background()
        if _sp is not None:
            tr.end(_sp, args={"replayed": replayed, "orphans": len(orphans)})
        return {
            "replayed_records": replayed,
            "lost_buffered_records": lost_buffered,
            "orphans_deleted": len(orphans),
            "manifest_edits": len(self.versions.manifest_journal),
            "elapsed": self.env.now - t0,
        }

    # ------------------------------------------------------------------ lifecycle
    def flush_all(self) -> Generator:
        """Seal + flush everything (tests / shutdown barrier)."""
        if len(self.mem) > 0:
            yield from self._switch_memtable()
        while self.imm:
            if self.background_error is not None:
                raise self.background_error
            yield self.env.timeout(0.001)
        if self.background_error is not None:
            raise self.background_error

    def wait_for_quiesce(self, poll: float = 0.01) -> Generator:
        """Wait until no flush or compaction work remains."""
        while True:
            busy = (self.imm
                    or self._active_compactions > 0
                    or self.picker.pick(self.versions.current) is not None)
            if not busy:
                return
            if (self.background_error is not None
                    and self._active_compactions == 0):
                # Read-only mode: the remaining work is parked until
                # resume(), so waiting would never terminate.
                raise self.background_error
            yield self.env.timeout(poll)

    def close(self) -> None:
        self._closed = True
        self._flush_queue.put(_FLUSH_CLOSE)
        self._wake_background()

    # ------------------------------------------------------------------ stats
    def state_digest(self) -> dict:
        """JSON-clean LSM state for journal digest checkpoints: memtable
        fill, tree shape, and write-path verdicts — enough that any
        divergent write, flush, compaction or stall transition flips the
        hash at the next checkpoint."""
        snap = self.property_snapshot()
        snap["stall_time"] = self.write_controller.total_stall_time
        snap["delayed_time"] = self.write_controller.total_delayed_time
        if self.wal is not None:
            snap["wal_appended"] = self.wal.appended_bytes
            snap["wal_durable"] = self.wal.durable_bytes
        return snap

    def property_snapshot(self) -> dict:
        v = self.versions.current
        return {
            "seq": self._seq,
            "memtable_bytes": self.mem.approximate_bytes,
            "immutable_memtables": len(self.imm),
            "l0_files": v.l0_count,
            "levels": [len(v.level_files(l)) for l in range(v.num_levels)],
            "level_bytes": [v.level_bytes(l) for l in range(v.num_levels)],
            "pending_compaction_bytes": v.pending_compaction_bytes(self.options),
            "write_state": self.write_controller.state,
            "stall_events": self.write_controller.stall_events,
            "slowdown_events": self.write_controller.slowdown_events,
            "flushes": self.stats.flushes,
            "compactions": self.stats.compactions,
        }
