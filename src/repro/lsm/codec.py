"""Binary codec for entries and SST blocks.

The big simulations keep entries as tuples and charge *arithmetic* sizes
(DESIGN.md decision D1), but the format below is a real varint-framed
record codec used by the round-trip tests and the durability example, so
the on-media layout is not hand-waved.

Record layout::

    varint key_len | key | varint seq | 1B kind | varint value_len | value

DELETE records have value_len = 0 and carry no value bytes.
"""

from __future__ import annotations

from typing import Iterable

from ..types import KIND_DELETE, KIND_PUT, Entry, materialize

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_entry",
    "decode_entry",
    "encode_block",
    "decode_block",
]


def encode_varint(n: int) -> bytes:
    """LEB128 unsigned varint."""
    if n < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def decode_varint(buf: bytes, pos: int = 0) -> tuple[int, int]:
    """Return (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint")
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_entry(entry: Entry) -> bytes:
    key, seq, kind, value = entry
    if kind not in (KIND_PUT, KIND_DELETE):
        raise ValueError(f"bad kind {kind}")
    out = bytearray()
    out += encode_varint(len(key))
    out += key
    out += encode_varint(seq)
    out.append(kind)
    if kind == KIND_DELETE:
        out += encode_varint(0)
    else:
        data = materialize(value)
        out += encode_varint(len(data))
        out += data
    return bytes(out)


def decode_entry(buf: bytes, pos: int = 0) -> tuple[Entry, int]:
    klen, pos = decode_varint(buf, pos)
    key = bytes(buf[pos:pos + klen])
    if len(key) != klen:
        raise ValueError("truncated key")
    pos += klen
    seq, pos = decode_varint(buf, pos)
    if pos >= len(buf):
        raise ValueError("truncated kind")
    kind = buf[pos]
    pos += 1
    vlen, pos = decode_varint(buf, pos)
    value = bytes(buf[pos:pos + vlen])
    if len(value) != vlen:
        raise ValueError("truncated value")
    pos += vlen
    if kind == KIND_DELETE:
        return (key, seq, KIND_DELETE, None), pos
    return (key, seq, KIND_PUT, value), pos


def encode_block(entries: Iterable[Entry]) -> bytes:
    out = bytearray()
    for e in entries:
        out += encode_entry(e)
    return bytes(out)


def decode_block(buf: bytes) -> list:
    entries = []
    pos = 0
    while pos < len(buf):
        e, pos = decode_entry(buf, pos)
        entries.append(e)
    return entries
