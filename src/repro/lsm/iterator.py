"""Merging iterators over memtables and SSTs.

A scan sees one ordered, deduplicated view across the active memtable,
immutable memtables, L0 files (which may overlap) and the sorted levels.
Newest-wins is resolved by sequence number: for a user key present in
several sources, only the entry with the highest seq is emitted.

The iterator is *functional* — it yields exact entries; the DB layer
charges device I/O for the SST blocks the scan crosses (see
``DbImpl.scan``), keeping hot-loop cost low (guide idiom: keep the
per-item work tiny, account in batches).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

from ..types import KIND_DELETE, Entry

__all__ = ["merging_iterator", "k_way_merge"]


def k_way_merge(sources: list) -> Iterator[Entry]:
    """Merge already-sorted entry iterators by (key asc, seq desc).

    Sources must each be sorted by key with unique keys per source.
    Duplicate keys across sources are all emitted (newest first); use
    :func:`merging_iterator` for the deduplicated view.
    """
    heap = []
    iters = []
    for idx, src in enumerate(sources):
        it = iter(src)
        iters.append(it)
        first = next(it, None)
        if first is not None:
            heap.append((first[0], -first[1], idx, first))
    heapq.heapify(heap)
    while heap:
        key, negseq, idx, entry = heapq.heappop(heap)
        yield entry
        nxt = next(iters[idx], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt[0], -nxt[1], idx, nxt))


def merging_iterator(sources: list, include_tombstones: bool = False
                     ) -> Iterator[Entry]:
    """Deduplicated newest-wins merge; optionally drops DELETE entries."""
    last_key: Optional[bytes] = None
    for entry in k_way_merge(sources):
        if entry[0] == last_key:
            continue  # older duplicate
        last_key = entry[0]
        if not include_tombstones and entry[2] == KIND_DELETE:
            continue
        yield entry
