"""MemTable implementations for the host LSM.

Two interchangeable implementations:

* :class:`DictMemTable` (default) — hash map with a lazily re-sorted view.
  Point ops are O(1); sorted iteration pays one sort when the table was
  mutated since the last sort.  This is the fast choice for the
  fillrandom-style workloads the paper benchmarks (guide idiom: optimize
  the measured bottleneck, keep the rest simple).
* :class:`SkipListMemTable` — a classic probabilistic skiplist, the
  structure RocksDB actually uses.  O(log n) everywhere, fully incremental
  sorted iteration.  Kept both as documentation and as a cross-check: the
  property tests drive both against each other.

Both store internal entries ``(key, seq, kind, value)`` and implement
newest-wins per user key (an insert with a higher seq shadows the old one;
the shadowed entry's bytes are released).
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from ..types import Entry, entry_size

__all__ = ["MemTable", "DictMemTable", "SkipListMemTable"]


class MemTable:
    """Interface: approximate size tracking + newest-wins point ops."""

    def add(self, entry: Entry) -> None:
        raise NotImplementedError

    def get(self, key: bytes) -> Optional[Entry]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def approximate_bytes(self) -> int:
        raise NotImplementedError

    def entries(self) -> list:
        """All live entries sorted by key ascending."""
        raise NotImplementedError

    def iter_from(self, key: bytes) -> Iterator[Entry]:
        """Iterate entries with key >= ``key`` in ascending key order."""
        raise NotImplementedError

    def range_bounds(self) -> Optional[tuple[bytes, bytes]]:
        ents = self.entries()
        if not ents:
            return None
        return ents[0][0], ents[-1][0]


class DictMemTable(MemTable):
    """Hash-map memtable with a lazily sorted snapshot."""

    def __init__(self) -> None:
        self._map: dict[bytes, Entry] = {}
        self._bytes = 0
        self._sorted: Optional[list] = None

    def add(self, entry: Entry) -> None:
        key = entry[0]
        old = self._map.get(key)
        if old is not None:
            if entry[1] < old[1]:
                return  # stale write (rollback re-inserts); keep newest
            self._bytes -= entry_size(old)
        self._map[key] = entry
        self._bytes += entry_size(entry)
        self._sorted = None

    def get(self, key: bytes) -> Optional[Entry]:
        return self._map.get(key)

    def __len__(self) -> int:
        return len(self._map)

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    def entries(self) -> list:
        if self._sorted is None:
            self._sorted = sorted(self._map.values(), key=lambda e: e[0])
        return self._sorted

    def iter_from(self, key: bytes) -> Iterator[Entry]:
        ents = self.entries()
        lo, hi = 0, len(ents)
        while lo < hi:
            mid = (lo + hi) // 2
            if ents[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return iter(ents[lo:])


_MAX_LEVEL = 16
_P = 0.25


class _Node:
    __slots__ = ("key", "entry", "forward")

    def __init__(self, key: Optional[bytes], entry: Optional[Entry], level: int):
        self.key = key
        self.entry = entry
        self.forward: list[Optional["_Node"]] = [None] * level


class SkipListMemTable(MemTable):
    """Probabilistic skiplist memtable (RocksDB's default structure)."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._len = 0
        self._bytes = 0

    def _random_level(self) -> int:
        lvl = 1
        while lvl < _MAX_LEVEL and self._rng.random() < _P:
            lvl += 1
        return lvl

    def _find_prev(self, key: bytes) -> list:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
            update[i] = node
        return update

    def add(self, entry: Entry) -> None:
        key = entry[0]
        update = self._find_prev(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            old = candidate.entry
            if entry[1] < old[1]:
                return
            self._bytes += entry_size(entry) - entry_size(old)
            candidate.entry = entry
            return
        lvl = self._random_level()
        if lvl > self._level:
            self._level = lvl
        node = _Node(key, entry, lvl)
        for i in range(lvl):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._len += 1
        self._bytes += entry_size(entry)

    def get(self, key: bytes) -> Optional[Entry]:
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
        nxt = node.forward[0]
        if nxt is not None and nxt.key == key:
            return nxt.entry
        return None

    def __len__(self) -> int:
        return self._len

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    def entries(self) -> list:
        out = []
        node = self._head.forward[0]
        while node is not None:
            out.append(node.entry)
            node = node.forward[0]
        return out

    def iter_from(self, key: bytes) -> Iterator[Entry]:
        update = self._find_prev(key)
        node = update[0].forward[0]
        while node is not None:
            yield node.entry
            node = node.forward[0]
