"""Host LSM-KVS configuration, mirroring RocksDB's option names.

The stall-related knobs reproduce RocksDB's write-stall conditions
(https://github.com/facebook/rocksdb/wiki/Write-Stalls, paper Section II-A):

* memtable stall — immutable memtables pile up to ``max_write_buffer_number``;
* L0 stall — file count reaches ``level0_stop_writes_trigger`` (slowdown at
  ``level0_slowdown_writes_trigger``);
* pending-compaction-bytes stall — estimated backlog crosses the hard limit
  (slowdown at the soft limit).

``slowdown_enabled`` toggles the delayed-write mechanism (Fig 2/3 compare
both settings); ``delayed_write_rate`` is the token-bucket rate applied
while in the DELAYED state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.geometry import KiB, MiB

__all__ = ["LsmOptions", "CpuCosts"]


@dataclass
class CpuCosts:
    """Host CPU time constants (seconds) for the cost model.

    Values are in the range measured for RocksDB-class engines on a modern
    Xeon; the paper's efficiency metric depends on the ratios, not the
    absolute numbers.
    """

    put: float = 4.0e-6            # WAL encode + memtable insert per op
    get: float = 5.0e-6            # memtable/SST probe logic per op
    seek: float = 12.0e-6          # iterator seek
    next: float = 1.0e-6           # iterator next
    flush_per_byte: float = 0.8e-9     # memtable -> SST encode (~1.2 GB/s)
    compact_per_byte: float = 1.0e-9   # merge per input byte (~1 GB/s Xeon);
                                       # compaction is device-bound, as on the
                                       # paper's testbed (Section VI-A)


@dataclass
class LsmOptions:
    """RocksDB-flavoured options for the simulated host LSM."""

    # memtable
    write_buffer_size: int = 128 * MiB          # Table III: MT size 128 MB
    max_write_buffer_number: int = 2

    # level shape
    level0_file_num_compaction_trigger: int = 4
    level0_slowdown_writes_trigger: int = 20
    level0_stop_writes_trigger: int = 36
    max_bytes_for_level_base: int = 256 * MiB
    max_bytes_for_level_multiplier: int = 10
    num_levels: int = 7
    target_file_size_base: int = 64 * MiB

    # pending compaction debt
    soft_pending_compaction_bytes_limit: int = 4 * 1024 * MiB
    hard_pending_compaction_bytes_limit: int = 16 * 1024 * MiB

    # write throttling
    slowdown_enabled: bool = True
    delayed_write_rate: float = 8 * MiB         # bytes/s while DELAYED
    slowdown_sleep: float = 1e-3                # 1 ms write-thread naps (§III-A)

    # background work
    max_background_compactions: int = 1         # thread count (Table III)
    max_background_flushes: int = 1
    max_subcompactions: int = 2                 # split one job across threads
                                                # (RocksDB defaults to 1; 2 keeps
                                                # thread scaling visible without
                                                # erasing 4-thread stalls)
    compaction_io_chunk: int = 2 * MiB          # read-merge-write granularity
    compaction_readahead: int = 2 * MiB

    # SST layout
    block_size: int = 16 * KiB
    bloom_bits_per_key: int = 10

    # WAL
    wal_enabled: bool = True
    wal_group_commit_bytes: int = 256 * KiB

    # CPU model
    cpu: CpuCosts = field(default_factory=CpuCosts)

    def __post_init__(self) -> None:
        if self.write_buffer_size <= 0:
            raise ValueError("write_buffer_size must be positive")
        if self.max_write_buffer_number < 2:
            raise ValueError("max_write_buffer_number must be >= 2")
        if not (0 < self.level0_file_num_compaction_trigger
                <= self.level0_slowdown_writes_trigger
                <= self.level0_stop_writes_trigger):
            raise ValueError("L0 triggers must be ordered: compact <= slowdown <= stop")
        if self.soft_pending_compaction_bytes_limit > self.hard_pending_compaction_bytes_limit:
            raise ValueError("soft pending limit must be <= hard limit")
        if self.max_background_compactions < 1 or self.max_background_flushes < 1:
            raise ValueError("background thread counts must be >= 1")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        if self.delayed_write_rate <= 0:
            raise ValueError("delayed_write_rate must be positive")

    def max_bytes_for_level(self, level: int) -> int:
        """Size target for level ``level`` (level 1 = base)."""
        if level < 1:
            raise ValueError("levels >= 1 have size targets")
        return self.max_bytes_for_level_base * (
            self.max_bytes_for_level_multiplier ** (level - 1)
        )

    def scaled(self, factor: float) -> "LsmOptions":
        """Scale all byte capacities by ``factor`` (mini profile).

        Rates (delayed_write_rate), counts (triggers, threads) and CPU
        costs are left untouched so throughput and CPU% remain directly
        comparable to the paper while run horizons shrink.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")

        def sz(x: int) -> int:
            return max(4 * KiB, int(x * factor))

        return LsmOptions(
            write_buffer_size=sz(self.write_buffer_size),
            max_write_buffer_number=self.max_write_buffer_number,
            level0_file_num_compaction_trigger=self.level0_file_num_compaction_trigger,
            level0_slowdown_writes_trigger=self.level0_slowdown_writes_trigger,
            level0_stop_writes_trigger=self.level0_stop_writes_trigger,
            max_bytes_for_level_base=sz(self.max_bytes_for_level_base),
            max_bytes_for_level_multiplier=self.max_bytes_for_level_multiplier,
            num_levels=self.num_levels,
            target_file_size_base=sz(self.target_file_size_base),
            soft_pending_compaction_bytes_limit=sz(self.soft_pending_compaction_bytes_limit),
            hard_pending_compaction_bytes_limit=sz(self.hard_pending_compaction_bytes_limit),
            slowdown_enabled=self.slowdown_enabled,
            delayed_write_rate=self.delayed_write_rate,
            slowdown_sleep=self.slowdown_sleep,
            max_background_compactions=self.max_background_compactions,
            max_background_flushes=self.max_background_flushes,
            max_subcompactions=self.max_subcompactions,
            compaction_io_chunk=sz(self.compaction_io_chunk),
            compaction_readahead=sz(self.compaction_readahead),
            block_size=self.block_size,
            bloom_bits_per_key=self.bloom_bits_per_key,
            wal_enabled=self.wal_enabled,
            wal_group_commit_bytes=sz(self.wal_group_commit_bytes),
            cpu=self.cpu,
        )
