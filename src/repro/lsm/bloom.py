"""Bloom filter for SSTable key membership.

Standard double-hashing construction (Kirsch-Mitzenmacher): ``k`` probe
positions derived from two independent 64-bit hashes of the key.  RocksDB
builds one filter per SST; a negative probe lets reads skip the file's data
blocks entirely, which is what keeps point-read I/O bounded as levels grow.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

__all__ = ["BloomFilter"]


def _hash128(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd => good stride
    )


class BloomFilter:
    """Fixed-size bloom filter with configurable bits/key."""

    def __init__(self, num_keys: int, bits_per_key: int = 10):
        if num_keys < 0:
            raise ValueError("num_keys must be >= 0")
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.num_bits = max(64, num_keys * bits_per_key)
        # optimal k = bits/key * ln2, clamped to [1, 30] like RocksDB
        self.k = max(1, min(30, int(round(bits_per_key * math.log(2)))))
        self._bits = 0  # big int as bit array: compact and fast in Python
        self.num_added = 0

    def add(self, key: bytes) -> None:
        h1, h2 = _hash128(key)
        bits = self._bits
        n = self.num_bits
        for i in range(self.k):
            bits |= 1 << ((h1 + i * h2) % n)
        self._bits = bits
        self.num_added += 1

    def add_all(self, keys: Iterable[bytes]) -> None:
        for k in keys:
            self.add(k)

    def may_contain(self, key: bytes) -> bool:
        h1, h2 = _hash128(key)
        bits = self._bits
        n = self.num_bits
        for i in range(self.k):
            if not (bits >> ((h1 + i * h2) % n)) & 1:
                return False
        return True

    @property
    def size_bytes(self) -> int:
        return self.num_bits // 8

    def false_positive_rate(self) -> float:
        """Expected FP rate for the current fill level."""
        if self.num_added == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.k * self.num_added / self.num_bits)
        return fill ** self.k
