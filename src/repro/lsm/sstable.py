"""Sorted String Tables.

An SST holds a sorted, key-unique list of entries partitioned into
fixed-byte-budget data blocks, plus an index (first key per block) and a
per-file bloom filter.  Point reads touch the bloom and index in memory
(RocksDB pins them in block cache) and pay device I/O for exactly the data
blocks fetched — :meth:`SSTable.probe` returns the byte count so the DB can
charge the device model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..types import Entry, entry_size
from .bloom import BloomFilter
from .codec import decode_block, encode_block

__all__ = ["SSTable", "ProbeResult"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a point probe: the entry (if any) and the I/O it cost."""

    entry: Optional[Entry]
    bytes_read: int
    bloom_negative: bool = False


class SSTable:
    """Immutable sorted table."""

    def __init__(self, file_number: int, entries: Sequence[Entry],
                 block_size: int = 16 * 1024, bloom_bits_per_key: int = 10):
        if not entries:
            raise ValueError("SSTable cannot be empty")
        self.file_number = file_number
        self.entries = list(entries)
        for a, b in zip(self.entries, self.entries[1:]):
            if a[0] >= b[0]:
                raise ValueError("entries must be sorted and key-unique")
        self.block_size = block_size
        self.smallest = self.entries[0][0]
        self.largest = self.entries[-1][0]

        # Partition into blocks by byte budget.
        self._block_starts: list[int] = []   # entry index where block begins
        self._block_first_keys: list[bytes] = []
        self._block_bytes: list[int] = []
        cur = 0
        for i, e in enumerate(self.entries):
            sz = entry_size(e)
            if not self._block_starts or cur + sz > block_size and cur > 0:
                self._block_starts.append(i)
                self._block_first_keys.append(e[0])
                self._block_bytes.append(0)
                cur = 0
            self._block_bytes[-1] += sz
            cur += sz

        self.data_bytes = sum(self._block_bytes)
        self.bloom = BloomFilter(len(self.entries), bloom_bits_per_key)
        for e in self.entries:
            self.bloom.add(e[0])
        # File footprint: data + filter + index approximation.
        self.file_bytes = (self.data_bytes + self.bloom.size_bytes
                           + 24 * len(self._block_starts) + 128)

    # -- introspection ----------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def num_blocks(self) -> int:
        return len(self._block_starts)

    def overlaps(self, smallest: bytes, largest: bytes) -> bool:
        return not (self.largest < smallest or largest < self.smallest)

    # -- reads -----------------------------------------------------------
    def _block_for(self, key: bytes) -> int:
        """Index of the block that could hold ``key`` (-1 if before all)."""
        lo, hi = 0, len(self._block_first_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._block_first_keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def probe(self, key: bytes) -> ProbeResult:
        """Point lookup with cost accounting.

        Bloom negative => zero I/O.  Otherwise one data block is read.
        """
        if key < self.smallest or key > self.largest:
            return ProbeResult(None, 0, bloom_negative=False)
        if not self.bloom.may_contain(key):
            return ProbeResult(None, 0, bloom_negative=True)
        b = self._block_for(key)
        if b < 0:
            return ProbeResult(None, 0)
        cost = self._block_bytes[b]
        start = self._block_starts[b]
        end = (self._block_starts[b + 1] if b + 1 < len(self._block_starts)
               else len(self.entries))
        lo, hi = start, end
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < end and self.entries[lo][0] == key:
            return ProbeResult(self.entries[lo], cost)
        return ProbeResult(None, cost)

    def lower_bound(self, key: bytes) -> int:
        """Entry index of the first key >= ``key``."""
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def iter_from(self, key: Optional[bytes] = None) -> Iterator[Entry]:
        start = 0 if key is None else self.lower_bound(key)
        return iter(self.entries[start:])

    def block_of_entry(self, idx: int) -> int:
        """Block index containing entry ``idx`` (for scan I/O accounting)."""
        lo, hi = 0, len(self._block_starts)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._block_starts[mid] <= idx:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def block_bytes(self, block_idx: int) -> int:
        return self._block_bytes[block_idx]

    # -- serialization (tests / durability example) --------------------------
    def to_bytes(self) -> bytes:
        return encode_block(self.entries)

    @classmethod
    def from_bytes(cls, file_number: int, data: bytes,
                   block_size: int = 16 * 1024,
                   bloom_bits_per_key: int = 10) -> "SSTable":
        return cls(file_number, decode_block(data), block_size, bloom_bits_per_key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SSTable(#{self.file_number}, n={self.num_entries}, "
                f"[{self.smallest!r}..{self.largest!r}])")
