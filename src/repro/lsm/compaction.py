"""Compaction picking and merging.

Leveled compaction à la RocksDB/LevelDB:

* L0 -> L1: all (non-busy) L0 files plus every overlapping L1 file.  L0
  files overlap each other, so this compaction is *serialized* — at most
  one runs at a time.  That serialization is the root of the paper's
  stall class #2.
* Ln -> Ln+1 (n >= 1): one input file chosen round-robin by key cursor,
  plus the overlapping files in the next level.

Merging is newest-wins by sequence number; tombstones are dropped only
when the output level is the bottommost (no older data below can
resurrect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..types import KIND_DELETE, Entry, entry_size
from .iterator import merging_iterator
from .options import LsmOptions
from .version import FileMetadata, Version

__all__ = ["CompactionJob", "CompactionPicker", "merge_for_compaction",
           "split_into_files"]


@dataclass
class CompactionJob:
    """A picked compaction: inputs at two adjacent levels."""

    level: int
    output_level: int
    inputs_low: list = field(default_factory=list)   # FileMetadata at `level`
    inputs_high: list = field(default_factory=list)  # FileMetadata at output
    # Output files created but not yet installed — deleted as orphans if a
    # crash interrupts the job before its version edit lands.
    partial_outputs: list = field(default_factory=list)

    @property
    def all_inputs(self) -> list:
        return self.inputs_low + self.inputs_high

    @property
    def input_bytes(self) -> int:
        return sum(f.file_bytes for f in self.all_inputs)

    @property
    def is_l0(self) -> bool:
        return self.level == 0


class CompactionPicker:
    """Chooses the most urgent compaction from a version."""

    def __init__(self, options: LsmOptions):
        self.options = options
        # round-robin cursors: next smallest-key to compact per level
        self._cursors: dict[int, bytes] = {}

    def pick(self, version: Version) -> Optional[CompactionJob]:
        opt = self.options
        # Candidate levels with score >= 1, most urgent first.  Dynamic
        # level targets (Version.level_targets) keep L1+ scores balanced,
        # so a count-pressured L0 naturally outbids them.
        scored = []
        for level in range(version.num_levels - 1):
            score = version.compaction_score(opt, level)
            if score >= 1.0:
                scored.append((score, level))
        scored.sort(key=lambda sl: (-sl[0], sl[1]))
        for _score, level in scored:
            job = self._pick_level(version, level)
            if job is not None:
                return job
        return None

    def _pick_level(self, version: Version, level: int) -> Optional[CompactionJob]:
        if level == 0:
            return self._pick_l0(version)
        files = [f for f in version.level_files(level) if not f.being_compacted]
        if not files:
            return None
        cursor = self._cursors.get(level, b"")
        candidates = [f for f in files if f.smallest > cursor] or files
        low = candidates[0]
        highs = version.overlapping_files(level + 1, low.smallest, low.largest)
        if any(f.being_compacted for f in highs):
            return None
        self._cursors[level] = low.smallest
        return CompactionJob(level=level, output_level=level + 1,
                             inputs_low=[low], inputs_high=highs)

    def _pick_l0(self, version: Version) -> Optional[CompactionJob]:
        l0 = version.level_files(0)
        if not l0:
            return None
        if any(f.being_compacted for f in l0):
            return None  # L0 -> L1 is serialized
        smallest = min(f.smallest for f in l0)
        largest = max(f.largest for f in l0)
        highs = version.overlapping_files(1, smallest, largest)
        if any(f.being_compacted for f in highs):
            return None
        return CompactionJob(level=0, output_level=1,
                             inputs_low=list(l0), inputs_high=highs)


def merge_for_compaction(job: CompactionJob, num_levels: int) -> list:
    """Merged, deduplicated output entries for a compaction job.

    Sources are ordered newest-first purely for documentation; correctness
    comes from sequence numbers in the merge.  Tombstones survive unless
    the output level is the bottommost.
    """
    sources = [f.table.entries for f in job.all_inputs]
    bottommost = job.output_level == num_levels - 1
    merged = merging_iterator(sources, include_tombstones=True)
    if bottommost:
        return [e for e in merged if e[2] != KIND_DELETE]
    return list(merged)


def split_into_files(entries: list, target_bytes: int) -> list:
    """Partition merged output into SST-sized chunks."""
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    out: list[list] = []
    cur: list = []
    cur_bytes = 0
    for e in entries:
        sz = entry_size(e)
        if cur and cur_bytes + sz > target_bytes:
            out.append(cur)
            cur, cur_bytes = [], 0
        cur.append(e)
        cur_bytes += sz
    if cur:
        out.append(cur)
    return out
