"""Performance harness CLI.

Usage::

    python -m repro.perf                      # kernel microbenchmarks
    python -m repro.perf --bench timeout_chain --repeats 5
    python -m repro.perf --suite fig12 --quick --jobs 4
    python -m repro.perf --json perf.json     # machine-readable artifact
    python -m repro.perf profile timeout_chain   # kernel self-profile
    python -m repro.perf profile mini --json p.json  # profile a real cell
    python -m repro.perf profile paper-smoke  # CI's paper-capacity smoke

With the pinned pre-fast-path baseline present
(``benchmarks/PERF_BASELINE.json``), a speedup column is printed; the
headline number is the ``timeout_chain`` speedup (Timeout churn dominates
real experiment cells).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import (
    HEADLINE_BENCH,
    KERNEL_BENCHES,
    bench_suite_cells,
    build_perf_doc,
    compare_perf,
    default_baseline_path,
    format_kernel_profile,
    load_perf_doc,
    profile_kernel_bench,
    profile_mini_cell,
    profile_smoke_cell,
    run_kernel_benches,
)


def _profile_main(argv) -> int:
    """``python -m repro.perf profile <target>`` — kernel self-profiling.

    Targets are the microbenchmark names plus ``mini`` (one real kvaccel
    mini-profile cell through the runner).  Prints the sorted hot-site
    table; ``--json`` writes the raw profile dict.
    """
    targets = sorted(KERNEL_BENCHES) + ["mini", "paper-smoke"]
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf profile",
        description="Wall-clock self-profile of the DES kernel: events by "
                    "class, resume counts, queue discipline, macro-event "
                    "coalescing, heap and timeout-pool traffic.")
    parser.add_argument("target", choices=targets,
                        help="microbenchmark to profile, 'mini' for a real "
                             "experiment cell, or 'paper-smoke' for the "
                             "truncated paper-constant cell CI runs")
    parser.add_argument("--json", metavar="PATH", default=None,
                        dest="json_out",
                        help="write the raw kernel profile as JSON")
    args = parser.parse_args(argv)

    if args.target in ("mini", "paper-smoke"):
        out = (profile_mini_cell() if args.target == "mini"
               else profile_smoke_cell())
        prof = out["profile"]
        print(f"kernel profile: cell {out['spec']} "
              f"({out['events']:,d} events in {out['wall_s']:.2f}s)")
    else:
        r = profile_kernel_bench(args.target)
        prof = r.profile
        print(f"kernel profile: bench {r.name} "
              f"({r.events:,d} events in {r.wall_s:.2f}s)")
    print(format_kernel_profile(prof))

    if args.json_out:
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": "repro-kernel-profile", "version": 1,
               "target": args.target, "profile": prof}
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Measure harness performance: kernel events/sec and "
                    "experiment cells/min.")
    parser.add_argument("--bench", action="append", default=None,
                        metavar="NAME", dest="benches",
                        help=f"run only this microbenchmark (repeatable); "
                             f"available: {', '.join(sorted(KERNEL_BENCHES))}")
    parser.add_argument("--repeats", type=int, default=5, metavar="N",
                        help="best-of-N per microbenchmark (default 5)")
    parser.add_argument("--suite", metavar="EXP", default=None,
                        help="also time a full experiment's cells "
                             "(cells/min) through the real runner")
    parser.add_argument("--quick", action="store_true",
                        help="with --suite: use the fast mini256 profile")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="with --suite: fan cells out over N workers")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline to compare against (default: the "
                             "pinned benchmarks/PERF_BASELINE.json)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        dest="json_out",
                        help="write results as a perf-baseline document")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="RATIO",
                        help="exit 1 if any microbenchmark's events/s falls "
                             "below RATIO x the baseline (0.85 = fail on a "
                             ">15%% regression); the CI perf gate")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    try:
        benches = run_kernel_benches(args.benches, repeats=args.repeats)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else \
        default_baseline_path()
    if baseline_path.exists():
        baseline = load_perf_doc(baseline_path)
    elif args.baseline:
        print(f"baseline not found: {baseline_path}", file=sys.stderr)
        return 2

    speedups = compare_perf(baseline, benches) if baseline else {}

    print(f"kernel microbenchmarks (best of {args.repeats}):")
    header = f"  {'benchmark':18s} {'events':>10s} {'wall s':>8s} " \
             f"{'events/sec':>12s}"
    if speedups:
        header += f" {'vs baseline':>12s}"
    print(header)
    for name, r in benches.items():
        line = f"  {name:18s} {r.events:>10,d} {r.wall_s:>8.3f} " \
               f"{r.events_per_sec:>12,.0f}"
        if name in speedups:
            line += f" {speedups[name]:>11.2f}x"
        print(line)
    if HEADLINE_BENCH in speedups:
        print(f"\nheadline ({HEADLINE_BENCH}): "
              f"{speedups[HEADLINE_BENCH]:.2f}x vs "
              f"{baseline_path}")

    suite = None
    if args.suite:
        try:
            suite = bench_suite_cells(args.suite, quick=args.quick,
                                      jobs=args.jobs)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"\nsuite {suite['experiment']}: {suite['cells']} cells in "
              f"{suite['wall_s']:.1f}s = {suite['cells_per_min']:.2f} "
              f"cells/min (jobs={suite['jobs']}, "
              f"{suite['events_per_sec']:,.0f} events/sec aggregate)")

    if args.json_out:
        doc = build_perf_doc(benches, suite)
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")

    if args.fail_below is not None:
        if not speedups:
            print("--fail-below: no baseline to compare against",
                  file=sys.stderr)
            return 2
        regressed = {n: s for n, s in speedups.items()
                     if s < args.fail_below}
        if regressed:
            print(f"\nPERF REGRESSION (gate: {args.fail_below:.2f}x of "
                  f"{baseline_path}):", file=sys.stderr)
            for name, s in sorted(regressed.items()):
                print(f"  {name}: {s:.2f}x baseline events/s",
                      file=sys.stderr)
            return 1
        print(f"\nperf gate passed: all benches >= "
              f"{args.fail_below:.2f}x baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
