"""Performance harness: kernel microbenchmarks and suite throughput.

The ROADMAP's north star is a harness that runs "as fast as the hardware
allows"; this package is how we hold ourselves to that.  It measures two
things:

* **events/sec** — how fast the DES kernel steps through its heap, via
  microbenchmarks that isolate the dominant event patterns (Timeout churn,
  event signalling, process spawn, resource handoff);
* **cells/min** — how fast the experiment suite completes, by timing
  ``run_cells`` over a real experiment's specs.

``python -m repro.perf`` runs the microbenchmarks, prints a table, and —
when a pinned baseline (``benchmarks/PERF_BASELINE.json``, recorded on the
pre-fast-path kernel) is present — reports the speedup against it.
``--json`` writes a machine-readable document in the same shape as the
pinned baseline so CI can archive per-commit numbers.

All benchmarks are *simulated-workload* benchmarks: they drive the real
:class:`~repro.sim.Environment`, so any kernel change shows up here first.
Event counts come from ``Environment.events_scheduled`` (every scheduled
event is processed when ``run()`` drains), which makes events/sec
comparable across kernel versions regardless of internal pooling.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from ..sim import Environment, Resource, install_kernel_profiler

__all__ = [
    "PERF_SCHEMA", "PERF_VERSION", "KERNEL_BENCHES", "BenchResult",
    "bench_timeout_chain", "bench_event_ping_pong", "bench_process_spawn",
    "bench_resource_handoff", "bench_calendar_scale", "bench_macro_burst",
    "run_kernel_benches", "bench_suite_cells",
    "build_perf_doc", "load_perf_doc", "compare_perf", "default_baseline_path",
    "profile_kernel_bench", "profile_mini_cell", "profile_smoke_cell",
    "format_kernel_profile",
]

PERF_SCHEMA = "repro-perf-baseline"
# v3: adds the calendar-queue flood (``calendar_scale``) and macro-event
# (``macro_burst``) benches alongside the four v1 patterns.  The four v1
# numbers in the pinned baseline are carried over verbatim so speedups
# keep being measured against the pre-fast-path kernel.
PERF_VERSION = 3

# Committed pre-change numbers live next to the figure benchmarks.
_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_baseline_path() -> Path:
    return _REPO_ROOT / "benchmarks" / "PERF_BASELINE.json"


class BenchResult:
    """One microbenchmark measurement."""

    __slots__ = ("name", "events", "wall_s", "events_per_sec", "profile")

    def __init__(self, name: str, events: int, wall_s: float, profile=None):
        self.name = name
        self.events = events
        self.wall_s = wall_s
        self.events_per_sec = events / wall_s if wall_s > 0 else 0.0
        self.profile = profile          # KernelProfile dict when profiled

    def to_dict(self) -> dict:
        return {"events": int(self.events),
                "wall_s": float(self.wall_s),
                "events_per_sec": float(self.events_per_sec)}


def _timed(name: str, build: Callable[[], Environment],
           profile: bool = False) -> BenchResult:
    """Build a populated Environment, drain it, count scheduled events."""
    env = build()
    prof = install_kernel_profiler(env) if profile else None
    pre = env.events_scheduled
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return BenchResult(name, env.events_scheduled - pre, wall,
                       profile=prof.to_dict() if prof is not None else None)


def bench_timeout_chain(procs: int = 64, iters: int = 4000,
                        profile: bool = False) -> BenchResult:
    """The dominant pattern: N processes looping ``yield env.timeout(d)``.

    This is what every driver, sampler, flush poll, and detector period in
    the reproduction does, so Timeout allocation + heap churn dominates
    real experiment wall time.
    """
    def build() -> Environment:
        env = Environment()

        def looper(delay: float):
            for _ in range(iters):
                yield env.timeout(delay)

        for i in range(procs):
            env.process(looper(1.0 + i * 1e-6), name=f"loop{i}")
        return env

    return _timed("timeout_chain", build, profile=profile)


def bench_event_ping_pong(pairs: int = 32, rounds: int = 4000,
                          profile: bool = False) -> BenchResult:
    """Two processes per pair signalling each other through bare Events.

    Exercises Event.succeed, callback dispatch, and the already-processed
    target resume path (WAL group commit and Store handoffs look like
    this).
    """
    def build() -> Environment:
        env = Environment()

        def ping(ev_in, ev_out):
            for _ in range(rounds):
                yield ev_in[0]
                ev_in[0] = env.event()
                ev_out[0].succeed()

        def pong(ev_in, ev_out):
            for _ in range(rounds):
                ev_out[0].succeed()
                yield ev_in[0]
                ev_in[0] = env.event()

        for i in range(pairs):
            a, b = [env.event()], [env.event()]
            env.process(ping(a, b), name=f"ping{i}")
            env.process(pong(b, a), name=f"pong{i}")
        return env

    return _timed("event_ping_pong", build, profile=profile)


def bench_process_spawn(spawns: int = 30000,
                        profile: bool = False) -> BenchResult:
    """Spawn/termination churn: short-lived child processes joined by a
    parent (compaction jobs and fault-sweep runs look like this)."""
    def build() -> Environment:
        env = Environment()

        def child():
            yield env.timeout(0.5)
            return 1

        def parent():
            for _ in range(spawns):
                yield env.process(child())

        env.process(parent(), name="spawner")
        return env

    return _timed("process_spawn", build, profile=profile)


def bench_resource_handoff(workers: int = 16, rounds: int = 1500,
                           profile: bool = False) -> BenchResult:
    """FIFO Resource contention (thread pools, NAND channels)."""
    def build() -> Environment:
        env = Environment()
        res = Resource(env, capacity=2)

        def worker():
            for _ in range(rounds):
                with res.request() as req:
                    yield req
                    yield env.timeout(0.01)

        for i in range(workers):
            env.process(worker(), name=f"worker{i}")
        return env

    return _timed("resource_handoff", build, profile=profile)


def bench_calendar_scale(procs: int = 16384, iters: int = 12,
                         profile: bool = False) -> BenchResult:
    """A timer flood big enough to engage the calendar queue.

    ``procs`` concurrent loopers keep the pending population above the
    scheduler's heap->calendar upgrade threshold, which is where bucketed
    O(1) scheduling beats the C binary heap's O(log n) sift.  Delays are
    spread over three decades so entries land across many buckets (and
    some in the far-future overflow heap), exercising refill, resize and
    bucket-page turning rather than a single hot bucket.
    """
    def build() -> Environment:
        env = Environment()

        def looper(delay: float):
            for _ in range(iters):
                yield env.timeout(delay)

        for i in range(procs):
            # Deterministic spread: ~3 decades of delays, no two procs
            # phase-locked (the +i*1e-7 term breaks timestamp ties).
            d = 0.05 * (1 + (i % 97)) + (i % 11) * 1e-3 + i * 1e-7
            if i % 1024 == 0:
                d += 120.0          # a few far-future entries per page
            env.process(looper(d), name=f"cal{i}")
        return env

    return _timed("calendar_scale", build, profile=profile)


def bench_macro_burst(rounds: int = 400, chunks: int = 64,
                      profile: bool = False) -> BenchResult:
    """Channel-burst DMA: macro events coalescing per-chunk transfers.

    Two concurrent scanners stream ``chunks`` fixed-size chunks per round
    through one :class:`~repro.device.pcie.BandwidthPipe` burst call, the
    shape of Dev-LSM bulk scans and compaction I/O.  With macro events the
    kernel schedules one timeout per MACRO_MAX-chunk group instead of one
    per chunk; events/sec here measures the whole pattern (grant + burst),
    so the coalescing win shows up directly.
    """
    from ..device.pcie import BandwidthPipe, TrafficLedger

    def build() -> Environment:
        env = Environment()
        pipe = BandwidthPipe(env, 4 * 1024 ** 3, name="pcie",
                             ledger=TrafficLedger(bucket=1.0))
        sizes = [512 * 1024] * chunks

        def scanner():
            for _ in range(rounds):
                yield from pipe.transfer_burst(sizes, direction="rx")

        env.process(scanner(), name="scan0")
        env.process(scanner(), name="scan1")
        return env

    return _timed("macro_burst", build, profile=profile)


KERNEL_BENCHES: dict[str, Callable[[], BenchResult]] = {
    "timeout_chain": bench_timeout_chain,
    "event_ping_pong": bench_event_ping_pong,
    "process_spawn": bench_process_spawn,
    "resource_handoff": bench_resource_handoff,
    "calendar_scale": bench_calendar_scale,
    "macro_burst": bench_macro_burst,
}

# The headline number the acceptance gate tracks: Timeout churn is what
# real experiment cells spend their kernel time on.
HEADLINE_BENCH = "timeout_chain"


def run_kernel_benches(names: Optional[list] = None,
                       repeats: int = 3) -> dict:
    """Run the selected microbenchmarks; best-of-``repeats`` per bench.

    Best-of (not mean) because scheduling noise only ever slows a run
    down; the fastest repeat is the closest estimate of the kernel's
    actual cost.
    """
    out: dict[str, BenchResult] = {}
    for name in names or list(KERNEL_BENCHES):
        if name not in KERNEL_BENCHES:
            raise ValueError(f"unknown benchmark {name!r}; "
                             f"available: {sorted(KERNEL_BENCHES)}")
        best: Optional[BenchResult] = None
        for _ in range(max(1, repeats)):
            r = KERNEL_BENCHES[name]()
            if best is None or r.wall_s < best.wall_s:
                best = r
        out[name] = best
    return out


def bench_suite_cells(experiment: str, quick: bool = True,
                      jobs: int = 1) -> dict:
    """Time a full experiment's cells; returns cells/min and events/sec.

    Uses the real experiment specs through the real runner, so driver
    batching and ``--jobs`` parallelism show up in the number.
    """
    from ..bench.experiments import ALL
    from ..bench.runner import RunOptions
    if experiment not in ALL:
        raise ValueError(f"unknown experiment {experiment!r}")
    t0 = time.perf_counter()
    out = ALL[experiment].run(quick=quick, options=RunOptions(jobs=jobs))
    wall = time.perf_counter() - t0
    results = out["results"]
    events = sum(int(r.extra.get("events_processed", 0))
                 for r in results.values())
    return {
        "experiment": experiment,
        "cells": len(results),
        "wall_s": float(wall),
        "cells_per_min": len(results) / wall * 60.0 if wall > 0 else 0.0,
        "events_processed": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "jobs": jobs,
    }


def build_perf_doc(benches: dict, suite: Optional[dict] = None) -> dict:
    doc = {
        "schema": PERF_SCHEMA,
        "version": PERF_VERSION,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "benches": {k: v.to_dict() for k, v in benches.items()},
    }
    if suite is not None:
        doc["suite"] = suite
    return doc


def load_perf_doc(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != PERF_SCHEMA:
        raise ValueError(f"{path}: not a {PERF_SCHEMA} document")
    return doc


def compare_perf(baseline: dict, benches: dict) -> dict:
    """Per-bench speedup of ``benches`` over a baseline document."""
    out = {}
    for name, res in benches.items():
        base = baseline.get("benches", {}).get(name)
        if not base or not base.get("events_per_sec"):
            continue
        out[name] = res.events_per_sec / base["events_per_sec"]
    return out


# -- kernel self-profiling (``python -m repro.perf profile``) ----------------

def profile_kernel_bench(name: str) -> BenchResult:
    """Run one microbenchmark with the kernel self-profiler installed.

    Single run, no best-of: the profiler's counters are deterministic per
    build, and its sampling overhead would only pollute a timing contest.
    The returned :class:`BenchResult` carries the profile dict in
    ``.profile``.
    """
    if name not in KERNEL_BENCHES:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"available: {sorted(KERNEL_BENCHES)}")
    return KERNEL_BENCHES[name](profile=True)


def profile_mini_cell(system: str = "kvaccel", workload: str = "A",
                      scale: int = 256) -> dict:
    """Profile one real experiment cell (the ``mini`` target).

    Runs a single cell through the real runner with the kernel
    self-profiler on and returns ``{"spec", "wall_s", "events",
    "profile"}`` — the profile in the same dict shape the
    microbenchmarks produce.
    """
    from ..bench.profiles import mini_profile
    from ..bench.runner import RunSpec, run_workload
    spec = RunSpec(system, workload, 1)
    t0 = time.perf_counter()
    result = run_workload(spec, mini_profile(scale), kernel_profile=True)
    wall = time.perf_counter() - t0
    return {
        "spec": f"{system}/{workload}",
        "wall_s": float(wall),
        "events": int(result.extra.get("events_processed", 0)),
        "profile": result.extra["kernel_profile"],
    }


def profile_smoke_cell(system: str = "kvaccel", workload: str = "A") -> dict:
    """Profile one cell under the ``paper-smoke`` profile.

    Same contract as :func:`profile_mini_cell`, but the cell runs the
    truncated ~10^6-op slice of the *unscaled* paper constants — the
    shape CI's perf job exercises so paper-capacity regressions (big
    memtables, deep queues, paper NAND latencies) surface without a
    600 s run.
    """
    from ..bench.profiles import paper_smoke_profile
    from ..bench.runner import RunSpec, run_workload
    spec = RunSpec(system, workload, 1)
    t0 = time.perf_counter()
    result = run_workload(spec, paper_smoke_profile(), kernel_profile=True)
    wall = time.perf_counter() - t0
    return {
        "spec": f"{system}/{workload} (paper-smoke)",
        "wall_s": float(wall),
        "events": int(result.extra.get("events_processed", 0)),
        "profile": result.extra["kernel_profile"],
    }


def format_kernel_profile(prof: dict, top: int = 12) -> str:
    """The sorted hot-site table for one kernel profile dict.

    Event classes sorted by estimated wall-ns (from the coarse
    ``sample_every`` timing), then process resume counts, then the heap /
    timeout-pool / resource counters.
    """
    lines = []
    est = prof.get("estimated_wall_ns_by_class", {})
    by_class = prof.get("events_by_class", {})
    total_ns = sum(est.values()) or 1.0
    lines.append(f"  {'event class':20s} {'events':>10s} "
                 f"{'est wall ms':>12s} {'share':>7s}")
    ranked = sorted(by_class.items(),
                    key=lambda kv: (-est.get(kv[0], 0.0), kv[0]))
    for cls, n in ranked[:top]:
        ns = est.get(cls, 0.0)
        lines.append(f"  {cls:20s} {n:>10,d} {ns / 1e6:>12.2f} "
                     f"{ns / total_ns:>6.1%}")
    resumes = prof.get("resumes_by_process", {})
    if resumes:
        lines.append(f"\n  {'process (resumes)':34s} {'count':>10s}")
        hot = sorted(resumes.items(), key=lambda kv: (-kv[1], kv[0]))
        for pname, n in hot[:top]:
            lines.append(f"  {pname:34s} {n:>10,d}")
        if len(hot) > top:
            rest = sum(n for _, n in hot[top:])
            lines.append(f"  {'... %d more' % (len(hot) - top):34s} "
                         f"{rest:>10,d}")
    lines.append("")
    lines.append(f"  heap pushes/pops     {prof.get('heap_pushes', 0):>10,d} "
                 f"/ {prof.get('heap_pops', 0):,d}")
    treq = prof.get("timeout_requests", 0)
    lines.append(f"  timeout pool         {prof.get('timeout_pool_hits', 0):>10,d} "
                 f"hits / {treq:,d} requests "
                 f"({prof.get('timeout_pool_hit_rate', 0.0):.1%} hit rate), "
                 f"{prof.get('pool_recycled', 0):,d} recycled")
    rreq = prof.get("resource_requests", 0)
    if rreq:
        lines.append(f"  resource requests    {rreq:>10,d} "
                     f"({prof.get('resource_grants', 0):,d} granted, "
                     f"{prof.get('resource_queued', 0):,d} queued)")
    lines.append(f"  profiled wall        {prof.get('wall_ns', 0) / 1e6:>10.1f} ms "
                 f"(sampled 1/{prof.get('sample_every', 0)})")
    q = prof.get("queue") or {}
    if q:
        lines.append("")
        forced = (f" (forced: {q['forced']})"
                  if q.get("forced") not in (None, "", "auto") else "")
        locked = " [heap-locked]" if q.get("heap_mode_locked") else ""
        lines.append(f"  queue discipline     {q.get('mode', '?'):>10s}"
                     f"{forced}{locked}")
        lines.append(f"    pending            {q.get('pending', 0):>10,d} "
                     f"(now-lane {q.get('now_pending', 0):,d}, "
                     f"far {q.get('far_pending', 0):,d})")
        lines.append(f"    bucket width       {q.get('width', 0.0):>10.3g} s "
                     f"x {q.get('bucket_count', 0):,d} buckets, "
                     f"avg occupancy {q.get('avg_bucket_occupancy', 0.0):.1f}")
        lines.append(f"    refills/insorts    {q.get('refills', 0):>10,d} "
                     f"/ {q.get('insorts', 0):,d}, "
                     f"far pushed {q.get('far_pushed', 0):,d}")
        lines.append(f"    mode changes       {q.get('upgrades', 0):>10,d} up "
                     f"/ {q.get('downgrades', 0):,d} down "
                     f"/ {q.get('resizes', 0):,d} resizes, "
                     f"fallback rate {q.get('fallback_rate', 0.0):.1%}")
    m = prof.get("macro") or {}
    # The coalesce line prints even with no bursts: "1.0x (no bursts)"
    # tells the reader macro events never engaged in this run.
    lines.append("")
    if m.get("events"):
        lines.append(f"  macro events         {m['events']:>10,d} carrying "
                     f"{m.get('ops', 0):,d} ops over {m.get('bursts', 0):,d} "
                     f"bursts — coalesce factor "
                     f"{m.get('coalesce_factor', 0.0):.1f}x")
    else:
        lines.append(f"  macro events         {0:>10,d} "
                     f"— coalesce factor 1.0x (no bursts)")
    return "\n".join(lines)
