"""Workload definitions — Table IV of the paper.

=========  =================  ==========================  =====================
Name       Type               Characteristics             Notes
=========  =================  ==========================  =====================
A          fillrandom         1 write thread              no write limit
B          readwhilewriting   1 write + 1 read thread     9:1 write/read ratio
C          readwhilewriting   1 write + 1 read thread     8:2 write/read ratio
D          seekrandom         1 range-query thread        Seek + 1024 Next,
                                                          after initial fill
=========  =================  ==========================  =====================

All run 4 B keys and 4 KB values; A-C run for 600 s (scaled by profile), D
performs a fixed op count after a fill phase.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkloadSpec", "WORKLOADS"]


@dataclass(frozen=True)
class WorkloadSpec:
    name: str
    kind: str                    # fillrandom | readwhilewriting | seekrandom
    write_ratio: float = 1.0     # share of ops that are writes (B: 0.9, C: 0.8)
    read_ratio: float = 0.0
    seek_nexts: int = 0          # D: Next()s per Seek
    duration_s: float = 600.0    # paper-scale wall time (profiles rescale)
    fill_bytes: int = 0          # D: initial fillrandom volume (paper: 20 GB)
    key_size: int = 4
    value_size: int = 4096

    def __post_init__(self) -> None:
        if self.kind not in ("fillrandom", "readwhilewriting", "seekrandom"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if not 0 <= self.write_ratio <= 1 or not 0 <= self.read_ratio <= 1:
            raise ValueError("ratios must be in [0, 1]")


WORKLOADS: dict[str, WorkloadSpec] = {
    "A": WorkloadSpec(name="A", kind="fillrandom",
                      write_ratio=1.0, read_ratio=0.0),
    "B": WorkloadSpec(name="B", kind="readwhilewriting",
                      write_ratio=0.9, read_ratio=0.1),
    "C": WorkloadSpec(name="C", kind="readwhilewriting",
                      write_ratio=0.8, read_ratio=0.2),
    "D": WorkloadSpec(name="D", kind="seekrandom", write_ratio=0.0,
                      read_ratio=1.0, seek_nexts=1024,
                      fill_bytes=20 * 1024 ** 3),
}
