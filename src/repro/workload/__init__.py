"""db_bench-style workload generators and drivers (Table IV)."""

from .db_bench import (
    DriverConfig,
    FillRandomDriver,
    ReadWhileWritingDriver,
    SeekRandomDriver,
    fill_database,
)
from .keygen import (
    HotspotKeys,
    KeyGenerator,
    RandomKeys,
    SequentialKeys,
    ZipfianKeys,
    value_for,
)
from .trace import Trace, TraceOp, TraceRecorder, TraceReplayDriver
from .spec import WORKLOADS, WorkloadSpec

__all__ = [
    "DriverConfig",
    "FillRandomDriver",
    "ReadWhileWritingDriver",
    "SeekRandomDriver",
    "fill_database",
    "HotspotKeys",
    "KeyGenerator",
    "RandomKeys",
    "SequentialKeys",
    "ZipfianKeys",
    "value_for",
    "WORKLOADS",
    "WorkloadSpec",
    "Trace",
    "TraceOp",
    "TraceRecorder",
    "TraceReplayDriver",
]
