"""db_bench-style workload drivers.

Each driver is a simulation process generator that pushes operations at a
DB facade (``put_batch``/``get``/``scan``) until a deadline, feeding
:class:`~repro.sim.RateMeter` s so per-second throughput series come out
exactly like db_bench's ``-stats_interval_seconds 1`` report.

Drivers are system-agnostic: the same driver runs RocksDB-sim, ADOC, and
KVACCEL, which is what makes the cross-system figures apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Environment, Process, RateMeter
from ..types import entry_size, value_size
from .keygen import KeyGenerator, RandomKeys, value_for

__all__ = ["DriverConfig", "FillRandomDriver", "ReadWhileWritingDriver",
           "SeekRandomDriver", "fill_database"]


@dataclass
class DriverConfig:
    duration: float                 # how long to run (sim seconds)
    key_space: int = 1 << 24
    key_size: int = 4
    value_size: int = 4096
    batch_size: int = 32            # driver-side batching (group commit)
    seed: int = 1
    # Event amortisation: groups issued per scheduled wakeup.  At 1 the
    # drivers behave exactly as before (one group commit per put_batch,
    # one read per pacing decision) — the reference trajectory.  Above 1,
    # writers fold ``driver_batch`` groups into one put_batch call and
    # readers take ``driver_batch`` reads per pacing decision, cutting
    # kernel events at the cost of coarser per-second attribution (ops
    # land in the bucket where the enlarged group completes).
    driver_batch: int = 1


class _DriverBase:
    def __init__(self, env: Environment, db, config: DriverConfig):
        self.env = env
        self.db = db
        self.config = config
        self.write_meter = RateMeter()
        self.read_meter = RateMeter()
        self.write_ops = 0
        self.read_ops = 0
        self.write_bytes = 0
        self.process: Optional[Process] = None

    def start(self) -> Process:
        raise NotImplementedError

    def _make_batch(self, keys: KeyGenerator, n: int) -> list:
        cfg = self.config
        return [(k := keys.next_key(), value_for(k, cfg.value_size))
                for _ in range(n)]


class FillRandomDriver(_DriverBase):
    """Workload A: one write thread, no write limit."""

    def start(self) -> Process:
        self.process = self.env.process(self._run(), name="fillrandom")
        return self.process

    def _run(self):
        cfg = self.config
        keys = RandomKeys(cfg.key_space, cfg.key_size, seed=cfg.seed)
        t_end = self.env.now + cfg.duration
        per_entry = cfg.key_size + cfg.value_size + 8
        group = cfg.batch_size * max(1, cfg.driver_batch)
        lp = self.env.lineage
        while self.env.now < t_end:
            batch = self._make_batch(keys, group)
            if lp is None:
                yield from self.db.put_batch(batch)
            else:
                ctx = lp.op_begin("put_batch", count=len(batch),
                                  nbytes=len(batch) * per_entry)
                try:
                    yield from self.db.put_batch(batch)
                finally:
                    lp.op_end(ctx)
            n = len(batch)
            self.write_ops += n
            self.write_meter.add(n)
            self.write_bytes += n * per_entry
        return self.write_ops


class ReadWhileWritingDriver(_DriverBase):
    """Workloads B/C: one unthrottled write thread plus one read thread
    paced to hold the target write:read completion ratio."""

    def __init__(self, env: Environment, db, config: DriverConfig,
                 write_ratio: float = 0.9, read_ratio: float = 0.1):
        super().__init__(env, db, config)
        if write_ratio <= 0 or read_ratio <= 0:
            raise ValueError("both ratios must be positive for readwhilewriting")
        self.write_ratio = write_ratio
        self.read_ratio = read_ratio
        self._done = False
        self.read_hits = 0

    def start(self) -> Process:
        self.env.process(self._reader(), name="rww-reader")
        self.process = self.env.process(self._writer(), name="rww-writer")
        return self.process

    def _writer(self):
        cfg = self.config
        keys = RandomKeys(cfg.key_space, cfg.key_size, seed=cfg.seed)
        t_end = self.env.now + cfg.duration
        per_entry = cfg.key_size + cfg.value_size + 8
        group = cfg.batch_size * max(1, cfg.driver_batch)
        lp = self.env.lineage
        while self.env.now < t_end:
            batch = self._make_batch(keys, group)
            if lp is None:
                yield from self.db.put_batch(batch)
            else:
                ctx = lp.op_begin("put_batch", count=len(batch),
                                  nbytes=len(batch) * per_entry)
                try:
                    yield from self.db.put_batch(batch)
                finally:
                    lp.op_end(ctx)
            n = len(batch)
            self.write_ops += n
            self.write_meter.add(n)
            self.write_bytes += n * per_entry
        self._done = True
        return self.write_ops

    def _reader(self):
        cfg = self.config
        keys = RandomKeys(cfg.key_space, cfg.key_size, seed=cfg.seed + 7919)
        # pace: reads/writes tracks read_ratio/write_ratio
        target = self.read_ratio / self.write_ratio
        lp = self.env.lineage
        if cfg.driver_batch <= 1:
            # Reference per-op path, unchanged: one pacing decision and at
            # most one read per wakeup.
            while not self._done:
                if self.read_ops > (self.write_ops + 1) * target:
                    yield self.env.timeout(0.001)
                    continue
                if lp is None:
                    value = yield from self.db.get(keys.next_key())
                else:
                    ctx = lp.op_begin("get")
                    try:
                        value = yield from self.db.get(keys.next_key())
                    finally:
                        lp.op_end(ctx)
                if value is not None:
                    self.read_hits += 1
                self.read_ops += 1
                self.read_meter.add()
            return self.read_ops
        # Amortised path: one pacing decision covers up to driver_batch
        # reads, and the idle backoff stretches by the same factor, so the
        # pacing loop wakes the kernel ~driver_batch times less often.
        while not self._done:
            if self.read_ops > (self.write_ops + 1) * target:
                yield self.env.timeout(0.001 * cfg.driver_batch)
                continue
            for _ in range(cfg.driver_batch):
                if lp is None:
                    value = yield from self.db.get(keys.next_key())
                else:
                    ctx = lp.op_begin("get")
                    try:
                        value = yield from self.db.get(keys.next_key())
                    finally:
                        lp.op_end(ctx)
                if value is not None:
                    self.read_hits += 1
                self.read_ops += 1
                self.read_meter.add()
                if self._done or self.read_ops > (self.write_ops + 1) * target:
                    break
        return self.read_ops


class SeekRandomDriver(_DriverBase):
    """Workload D: one range-query thread, Seek + N Next per op."""

    def __init__(self, env: Environment, db, config: DriverConfig,
                 nexts_per_seek: int = 1024,
                 max_seeks: Optional[int] = None):
        super().__init__(env, db, config)
        self.nexts_per_seek = nexts_per_seek
        self.max_seeks = max_seeks
        self.seeks = 0
        self.entries_scanned = 0

    def start(self) -> Process:
        self.process = self.env.process(self._run(), name="seekrandom")
        return self.process

    def _run(self):
        cfg = self.config
        keys = RandomKeys(cfg.key_space, cfg.key_size, seed=cfg.seed)
        t_end = self.env.now + cfg.duration
        lp = self.env.lineage
        while self.env.now < t_end:
            if self.max_seeks is not None and self.seeks >= self.max_seeks:
                break
            if lp is None:
                out = yield from self.db.scan(keys.next_key(),
                                              self.nexts_per_seek)
            else:
                ctx = lp.op_begin("scan", count=self.nexts_per_seek)
                try:
                    out = yield from self.db.scan(keys.next_key(),
                                                  self.nexts_per_seek)
                finally:
                    lp.op_end(ctx)
            self.seeks += 1
            got = len(out)
            self.entries_scanned += got
            # db_bench counts each Seek+Next as ops; we count entries
            self.read_ops += got + 1
            self.read_meter.add(got + 1)
        return self.seeks


def fill_database(env: Environment, db, total_bytes: int,
                  config: DriverConfig) -> Process:
    """Initial load phase (workload D preloads 20 GB, scaled by profile).

    Returns the loader process; run the env until it completes.
    """
    def loader():
        keys = RandomKeys(config.key_space, config.key_size, seed=config.seed)
        per_entry = config.key_size + config.value_size + 8
        remaining = total_bytes
        while remaining > 0:
            n = min(config.batch_size, max(1, remaining // per_entry))
            batch = [(k := keys.next_key(), value_for(k, config.value_size))
                     for _ in range(n)]
            yield from db.put_batch(batch)
            remaining -= n * per_entry
        return total_bytes - remaining

    return env.process(loader(), name="fill")
