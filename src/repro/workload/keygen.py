"""Key and value generators for db_bench-style workloads.

Keys are fixed-width big-endian integers (4 B in the paper's Table IV) so
integer order equals byte order.  Values are :class:`~repro.types.ValueRef`
descriptors by default — exact sizes for every bandwidth computation
without materializing gigabytes of payload (DESIGN.md decision D1).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..types import ValueRef, encode_key

__all__ = ["KeyGenerator", "RandomKeys", "SequentialKeys", "ZipfianKeys",
           "HotspotKeys", "value_for"]


class KeyGenerator:
    """Interface: an infinite stream of keys."""

    def __iter__(self) -> Iterator[bytes]:
        while True:
            yield self.next_key()

    def next_key(self) -> bytes:
        raise NotImplementedError


class RandomKeys(KeyGenerator):
    """Uniform random keys over [0, key_space) — db_bench fillrandom."""

    def __init__(self, key_space: int, key_size: int = 4, seed: int = 1):
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.key_space = key_space
        self.key_size = key_size
        self._rng = random.Random(seed)

    def next_key(self) -> bytes:
        return encode_key(self._rng.randrange(self.key_space), self.key_size)


class SequentialKeys(KeyGenerator):
    """Monotonic keys — db_bench fillseq."""

    def __init__(self, key_size: int = 4, start: int = 0):
        self.key_size = key_size
        self._next = start

    def next_key(self) -> bytes:
        k = encode_key(self._next, self.key_size)
        self._next += 1
        return k


class ZipfianKeys(KeyGenerator):
    """Zipf-distributed keys, YCSB-style — for reads *and* writes.

    The generator is op-agnostic: it emits a key stream where rank ``r``
    appears with probability proportional to ``1/r**theta``, and callers
    decide what to do with each key.  Skewed *writes* are exactly what a
    multi-tenant serving population sends at an LSM store (a hot shard is
    a write-skew phenomenon), so the cluster layer's tenants draw from
    this stream for puts as well as gets; the regression test in
    ``tests/workload/test_zipfian_skew.py`` pins the top-1% key mass the
    population model relies on.

    Uses the Gray et al. closed-form inverse-transform sampler (the
    YCSB ``ZipfianGenerator`` recurrence) — no harmonic table walk per
    draw, one uniform variate per key.
    """

    def __init__(self, key_space: int, key_size: int = 4, theta: float = 0.99,
                 seed: int = 1):
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.key_space = key_space
        self.key_size = key_size
        self.theta = theta
        self._rng = random.Random(seed)
        n = key_space
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._zeta2 = 1.0 + 0.5 ** theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    def next_rank(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2:
            return 1
        return int(self.key_space *
                   ((self._eta * u - self._eta + 1) ** self._alpha))

    def next_key(self) -> bytes:
        rank = min(self.next_rank(), self.key_space - 1)
        return encode_key(rank, self.key_size)


class HotspotKeys(KeyGenerator):
    """YCSB hotspot distribution: ``hot_mass`` of ops hit the first
    ``hot_fraction`` of the key space uniformly; the rest spread uniformly
    over the cold remainder.  A blunter skew than Zipf — two flat tiers —
    which makes "all heat on one range" scenarios easy to aim at a single
    range-routed shard."""

    def __init__(self, key_space: int, key_size: int = 4,
                 hot_fraction: float = 0.1, hot_mass: float = 0.9,
                 seed: int = 1):
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 < hot_mass < 1.0:
            raise ValueError("hot_mass must be in (0, 1)")
        self.key_space = key_space
        self.key_size = key_size
        self.hot_fraction = hot_fraction
        self.hot_mass = hot_mass
        self.hot_count = max(1, int(key_space * hot_fraction))
        self._rng = random.Random(seed)

    def next_key(self) -> bytes:
        rng = self._rng
        if rng.random() < self.hot_mass:
            rank = rng.randrange(self.hot_count)
        else:
            rank = self.hot_count + rng.randrange(
                max(1, self.key_space - self.hot_count))
            rank = min(rank, self.key_space - 1)
        return encode_key(rank, self.key_size)


def value_for(key: bytes, value_size: int, materialized: bool = False):
    """Deterministic value for a key: ValueRef by default, bytes on demand."""
    seed = int.from_bytes(key, "big")
    ref = ValueRef(seed=seed, size=value_size)
    if materialized:
        from ..types import materialize
        return materialize(ref)
    return ref
