"""Trace-driven workloads: record operation streams, replay them later.

db_bench's synthetic generators cover the paper's evaluation, but real
adopters tune against production traces.  A :class:`Trace` is an ordered
list of (op, key, value_size) records with an optional think-time between
ops; it can be captured from any driver via :class:`TraceRecorder`, saved
to a compact text format, and replayed against any DB variant with
:class:`TraceReplayDriver` — deterministic, so A/B comparisons between
RocksDB-sim / ADOC / KVACCEL see byte-identical request streams.

Format (one record per line)::

    put <key-hex> <value-size> [think-us]
    get <key-hex> [think-us]
    del <key-hex> [think-us]
    scan <key-hex> <count> [think-us]
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sim import Environment, Process, RateMeter
from .keygen import value_for

__all__ = ["TraceOp", "Trace", "TraceRecorder", "TraceReplayDriver"]

_OPS = ("put", "get", "del", "scan")


@dataclass(frozen=True)
class TraceOp:
    op: str
    key: bytes
    value_size: int = 0      # put only
    count: int = 0           # scan only
    think_us: float = 0.0    # delay before issuing the op

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown trace op {self.op!r}")
        if self.op == "put" and self.value_size < 0:
            raise ValueError("value_size must be >= 0")
        if self.op == "scan" and self.count < 1:
            raise ValueError("scan needs count >= 1")
        if self.think_us < 0:
            raise ValueError("think_us must be >= 0")


@dataclass
class Trace:
    """An ordered, replayable operation stream."""

    ops: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    # -- (de)serialization --------------------------------------------------
    def dumps(self) -> str:
        out = io.StringIO()
        for o in self.ops:
            parts = [o.op, o.key.hex()]
            if o.op == "put":
                parts.append(str(o.value_size))
            elif o.op == "scan":
                parts.append(str(o.count))
            if o.think_us:
                parts.append(f"{o.think_us:g}")
            out.write(" ".join(parts) + "\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "Trace":
        ops = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            op = parts[0]
            try:
                key = bytes.fromhex(parts[1])
                if op == "put":
                    size = int(parts[2])
                    think = float(parts[3]) if len(parts) > 3 else 0.0
                    ops.append(TraceOp("put", key, value_size=size,
                                       think_us=think))
                elif op == "scan":
                    count = int(parts[2])
                    think = float(parts[3]) if len(parts) > 3 else 0.0
                    ops.append(TraceOp("scan", key, count=count,
                                       think_us=think))
                elif op in ("get", "del"):
                    think = float(parts[2]) if len(parts) > 2 else 0.0
                    ops.append(TraceOp(op, key, think_us=think))
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (IndexError, ValueError) as exc:
                raise ValueError(f"bad trace line {lineno}: {line!r}") from exc
        return cls(ops)

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.dumps())

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path) as f:
            return cls.loads(f.read())

    # -- stats ---------------------------------------------------------------
    def op_counts(self) -> dict:
        counts: dict[str, int] = {}
        for o in self.ops:
            counts[o.op] = counts.get(o.op, 0) + 1
        return counts


class TraceRecorder:
    """Wrap a DB facade and record every operation passing through.

    The wrapper exposes the same generator API (put/get/delete/scan/
    put_batch) and forwards to the inner DB, appending to ``trace``.
    """

    def __init__(self, db, env: Optional[Environment] = None):
        self.db = db
        self.env = env or db.env
        self.trace = Trace()
        self._last_t: Optional[float] = None

    def _think(self) -> float:
        now = self.env.now
        think = 0.0 if self._last_t is None else (now - self._last_t) * 1e6
        self._last_t = now
        return think

    def put(self, key: bytes, value):
        from ..types import value_size as vsize
        self.trace.ops.append(TraceOp("put", key, value_size=vsize(value),
                                      think_us=self._think()))
        yield from self.db.put(key, value)

    def put_batch(self, pairs: list):
        from ..types import value_size as vsize
        think = self._think()
        for key, value in pairs:
            self.trace.ops.append(TraceOp("put", key,
                                          value_size=vsize(value),
                                          think_us=think))
            think = 0.0
        yield from self.db.put_batch(pairs)

    def get(self, key: bytes):
        self.trace.ops.append(TraceOp("get", key, think_us=self._think()))
        value = yield from self.db.get(key)
        return value

    def delete(self, key: bytes):
        self.trace.ops.append(TraceOp("del", key, think_us=self._think()))
        yield from self.db.delete(key)

    def scan(self, start_key: bytes, count: int):
        self.trace.ops.append(TraceOp("scan", start_key, count=count,
                                      think_us=self._think()))
        out = yield from self.db.scan(start_key, count)
        return out


class TraceReplayDriver:
    """Replay a trace against a DB, with metering like the other drivers.

    ``honor_think_time=False`` (default) replays back-to-back — apples to
    apples for system comparisons; ``True`` reproduces the recorded
    inter-arrival gaps (open-loop-ish replay).
    """

    def __init__(self, env: Environment, db, trace: Trace,
                 value_size_override: Optional[int] = None,
                 honor_think_time: bool = False,
                 batch_size: int = 32):
        self.env = env
        self.db = db
        self.trace = trace
        self.value_size_override = value_size_override
        self.honor_think_time = honor_think_time
        self.batch_size = max(1, batch_size)
        self.write_meter = RateMeter()
        self.read_meter = RateMeter()
        self.write_ops = 0
        self.read_ops = 0
        self.write_bytes = 0
        self.process: Optional[Process] = None

    def start(self) -> Process:
        self.process = self.env.process(self._run(), name="trace-replay")
        return self.process

    def _value(self, op: TraceOp):
        size = (self.value_size_override if self.value_size_override
                is not None else op.value_size)
        return value_for(op.key, size)

    def _run(self):
        batch: list = []
        for op in self.trace:
            if self.honor_think_time and op.think_us > 0:
                yield self.env.timeout(op.think_us / 1e6)
            if op.op == "put":
                batch.append((op.key, self._value(op)))
                if len(batch) >= self.batch_size:
                    yield from self._flush_batch(batch)
                    batch = []
                continue
            if batch:
                yield from self._flush_batch(batch)
                batch = []
            if op.op == "get":
                yield from self.db.get(op.key)
                self.read_ops += 1
                self.read_meter.add()
            elif op.op == "del":
                yield from self.db.delete(op.key)
                self.write_ops += 1
                self.write_meter.add()
            elif op.op == "scan":
                out = yield from self.db.scan(op.key, op.count)
                self.read_ops += len(out) + 1
                self.read_meter.add(len(out) + 1)
        if batch:
            yield from self._flush_batch(batch)
        return self.write_ops + self.read_ops

    def _flush_batch(self, batch: list):
        from ..types import value_size as vsize
        yield from self.db.put_batch(batch)
        n = len(batch)
        self.write_ops += n
        self.write_meter.add(n)
        self.write_bytes += sum(len(k) + vsize(v) + 8 for k, v in batch)
