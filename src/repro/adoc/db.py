"""ADOC as a DB variant: a DbImpl plus the dataflow tuner."""

from __future__ import annotations

import copy
from typing import Optional

from ..device.block_dev import BlockDevice
from ..device.cpu import CpuModel
from ..lsm.db import DbImpl
from ..lsm.options import LsmOptions
from ..sim import Environment
from .tuner import AdocTuner, AdocTunerConfig

__all__ = ["AdocDb"]


class AdocDb(DbImpl):
    """DbImpl with ADOC's dynamic thread/buffer tuning attached.

    The wrapped options object is deep-copied: the tuner mutates
    ``max_background_compactions`` and ``write_buffer_size`` at runtime and
    must not alias a shared options instance.
    """

    def __init__(
        self,
        env: Environment,
        options: LsmOptions,
        device: BlockDevice,
        host_cpu: CpuModel,
        name: str = "adoc",
        tuner_config: Optional[AdocTunerConfig] = None,
        **kw,
    ):
        super().__init__(env, copy.deepcopy(options), device, host_cpu,
                         name=name, **kw)
        self.tuner = AdocTuner(env, self, tuner_config)

    def close(self) -> None:
        self.tuner.stop()
        super().close()
