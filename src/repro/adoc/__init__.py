"""ADOC baseline (FAST '23): dynamic dataflow tuning over the host LSM."""

from .db import AdocDb
from .tuner import AdocTuner, AdocTunerConfig, TuningAction

__all__ = ["AdocDb", "AdocTuner", "AdocTunerConfig", "TuningAction"]
