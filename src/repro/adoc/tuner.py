"""ADOC-style dataflow tuner (FAST '23), as characterized by the paper.

ADOC monitors dataflow between LSM components and, on overflow signals
(write slowdown conditions), *dynamically adjusts the write buffer size and
the number of background compaction threads*.  It still falls back to
RocksDB's slowdown as a last resort — the paper's Section III-A point.

The tuner is a background process: every ``interval`` seconds it inspects
the DB's write controller and either escalates (more compaction threads,
bigger memtable) under pressure or decays back toward the baseline after a
calm streak.  Escalation is the mechanism by which ADOC burns extra host
CPU (Fig 12(c): ADOC's efficiency is the worst of the three systems).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lsm.db import DbImpl
from ..lsm.write_controller import WriteState
from ..sim import Environment

__all__ = ["AdocTuner", "AdocTunerConfig", "TuningAction"]


@dataclass
class AdocTunerConfig:
    interval: float = 1.0            # tuning period (seconds)
    max_compaction_threads: int = 8
    max_buffer_multiplier: int = 4   # write buffer can grow to 4x baseline
    calm_steps_to_decay: int = 3     # consecutive calm polls before stepping down
    monitor_cpu_cost: float = 5e-6   # per poll


@dataclass
class TuningAction:
    time: float
    kind: str          # "escalate" | "decay"
    threads: int
    buffer_bytes: int


class AdocTuner:
    """Attaches to a DbImpl and tunes it live."""

    def __init__(self, env: Environment, db: DbImpl,
                 config: AdocTunerConfig | None = None):
        self.env = env
        self.db = db
        self.config = config or AdocTunerConfig()
        self.base_threads = db.options.max_background_compactions
        self.base_buffer = db.options.write_buffer_size
        self._calm_streak = 0
        self.actions: list[TuningAction] = []
        self._stopped = False
        self.process = env.process(self._run(), name="adoc-tuner")

    def stop(self) -> None:
        self._stopped = True

    # -- policy -------------------------------------------------------------
    def _pressure(self) -> bool:
        wc = self.db.write_controller
        wc.refresh()
        return wc.state != WriteState.NORMAL

    def _escalate(self) -> None:
        opt = self.db.options
        cfg = self.config
        changed = False
        if opt.max_background_compactions < cfg.max_compaction_threads:
            opt.max_background_compactions += 1
            changed = True
        if opt.write_buffer_size < self.base_buffer * cfg.max_buffer_multiplier:
            opt.write_buffer_size = min(opt.write_buffer_size * 2,
                                        self.base_buffer * cfg.max_buffer_multiplier)
            changed = True
        if changed:
            self.db._wake_background()
            self.actions.append(TuningAction(
                self.env.now, "escalate",
                opt.max_background_compactions, opt.write_buffer_size))

    def _decay(self) -> None:
        opt = self.db.options
        changed = False
        if opt.max_background_compactions > self.base_threads:
            opt.max_background_compactions -= 1
            changed = True
        if opt.write_buffer_size > self.base_buffer:
            opt.write_buffer_size = max(opt.write_buffer_size // 2, self.base_buffer)
            changed = True
        if changed:
            self.actions.append(TuningAction(
                self.env.now, "decay",
                opt.max_background_compactions, opt.write_buffer_size))

    def _run(self):
        cfg = self.config
        while not self._stopped:
            yield self.env.timeout(cfg.interval)
            if self._stopped:
                return
            self.db.host_cpu.charge(cfg.monitor_cpu_cost, tag="adoc-tuner")
            if self._pressure():
                self._calm_streak = 0
                self._escalate()
            else:
                self._calm_streak += 1
                if self._calm_streak >= cfg.calm_steps_to_decay:
                    self._calm_streak = 0
                    self._decay()
