"""Shared key-value primitives used by both the host LSM and the device.

Entries travel the system as plain tuples for speed on the hot path::

    (key: bytes, seq: int, kind: int, value: bytes | ValueRef | None)

Ordering is by user key (lexicographic bytes) and, within a key, by
sequence number descending (newer first) — the standard LSM internal-key
order.

Values may be real ``bytes`` or a :class:`ValueRef` descriptor that carries
only a (seed, size) pair.  Descriptors keep multi-gigabyte simulated
workloads in a few MB of host RAM while preserving exact sizes for every
bandwidth/latency calculation; ``materialize`` produces deterministic bytes
so functional tests can round-trip either representation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "KIND_DELETE",
    "KIND_PUT",
    "ValueRef",
    "Value",
    "Entry",
    "value_size",
    "materialize",
    "entry_size",
    "encode_key",
    "make_entry",
]

KIND_DELETE = 0
KIND_PUT = 1


@dataclass(frozen=True)
class ValueRef:
    """A size-preserving stand-in for a value payload."""

    seed: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")


Value = Union[bytes, ValueRef, None]
Entry = tuple  # (key, seq, kind, value)


def value_size(value: Value) -> int:
    """Payload size in bytes for either representation."""
    if value is None:
        return 0
    if isinstance(value, ValueRef):
        return value.size
    return len(value)


def materialize(value: Value) -> bytes:
    """Produce the actual bytes of a value (deterministic for ValueRef)."""
    if value is None:
        return b""
    if isinstance(value, bytes):
        return value
    out = bytearray()
    counter = 0
    while len(out) < value.size:
        out += hashlib.sha256(f"{value.seed}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[: value.size])


def entry_size(entry: Entry) -> int:
    """On-media footprint of an entry: key + value + fixed metadata.

    The 8-byte overhead approximates RocksDB's internal key suffix
    (sequence + type packed in 8 bytes).
    """
    key, _seq, _kind, value = entry
    return len(key) + value_size(value) + 8


def encode_key(n: int, width: int = 4) -> bytes:
    """Fixed-width big-endian key encoding (db_bench uses 4 B keys here).

    Big-endian keeps integer order == lexicographic byte order.
    """
    if n < 0:
        raise ValueError("key ints must be >= 0")
    return n.to_bytes(width, "big")


def make_entry(key: bytes, seq: int, value: Value,
               kind: Optional[int] = None) -> Entry:
    """Build an entry tuple; kind defaults to PUT unless value is None."""
    if kind is None:
        kind = KIND_DELETE if value is None else KIND_PUT
    return (key, seq, kind, value)
