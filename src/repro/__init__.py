"""KVACCEL reproduction: a dual-interface-SSD write accelerator for
LSM-tree key-value stores, rebuilt as a discrete-event simulation.

Reproduces "KVACCEL: A Novel Write Accelerator for LSM-Tree-Based KV Stores
with Host-SSD Collaboration" (IPPS 2025).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick tour of the public API::

    from repro import Environment, CpuModel, HybridSsd, KvaccelDb, LsmOptions

    env = Environment()
    cpu = CpuModel(env, cores=8)
    ssd = HybridSsd(env, cpu)
    db = KvaccelDb(env, LsmOptions(), ssd, cpu)

    def workload():
        yield from db.put(b"key1", b"value1")
        value = yield from db.get(b"key1")

    env.run(until=env.process(workload()))

Subpackages: ``repro.sim`` (DES kernel), ``repro.device`` (hybrid SSD),
``repro.lsm`` (host LSM engine), ``repro.adoc`` (ADOC baseline),
``repro.core`` (KVACCEL), ``repro.workload`` (db_bench-style drivers),
``repro.metrics`` and ``repro.bench`` (experiment harness).
"""

from .adoc import AdocDb, AdocTunerConfig
from .core import (
    DetectorConfig,
    KvaccelController,
    KvaccelDb,
    MetadataManager,
    RollbackConfig,
    WriteStallDetector,
    range_query,
    recover_after_crash,
)
from .device import CpuModel, HybridSsd, HybridSsdConfig, NandGeometry, PcieLink
from .lsm import DbImpl, LsmOptions
from .metrics import LatencyHistogram, RunCollector, RunResult, efficiency
from .sim import Environment
from .types import KIND_DELETE, KIND_PUT, ValueRef, encode_key, make_entry

__version__ = "1.0.0"

__all__ = [
    "AdocDb",
    "AdocTunerConfig",
    "DetectorConfig",
    "KvaccelController",
    "KvaccelDb",
    "MetadataManager",
    "RollbackConfig",
    "WriteStallDetector",
    "range_query",
    "recover_after_crash",
    "CpuModel",
    "HybridSsd",
    "HybridSsdConfig",
    "NandGeometry",
    "PcieLink",
    "DbImpl",
    "LsmOptions",
    "LatencyHistogram",
    "RunCollector",
    "RunResult",
    "efficiency",
    "Environment",
    "KIND_DELETE",
    "KIND_PUT",
    "ValueRef",
    "encode_key",
    "make_entry",
    "__version__",
]
