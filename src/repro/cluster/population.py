"""Client-population model: open-loop multi-tenant traffic for a cluster.

A :class:`ClientPopulation` is a set of tenants, each an independent
open-loop arrival process: inter-arrival times are exponential around the
tenant's (time-varying) target rate, and an arriving op is spawned as its
own process rather than awaited — a slow shard therefore builds *queueing*
(rising in-flight count, fattening tails) instead of silently throttling
the source, which is exactly the difference between closed-loop db_bench
drivers and a serving fleet (and why tenant isolation is measurable at
all: arrivals to healthy shards do not slow down when one shard stalls).

Determinism contract (MODEL.md "Cluster clock"): one ``random.Random``
stream per tenant, seeded from ``(population seed, tenant name)``; key
choice, arrival jitter and op mix all draw from that stream only, so
adding a tenant never perturbs another tenant's schedule.

Skew comes from ``repro.workload.keygen`` (:class:`ZipfianKeys`,
:class:`HotspotKeys`, :class:`RandomKeys`); traffic shape is a pure
multiplier on the base rate:

* ``steady``  — constant;
* ``diurnal`` — sinusoid with configurable period/amplitude (day/night);
* ``flash``   — steady with a flash-crowd window at ``flash_at`` lasting
  ``flash_duration`` at ``flash_factor`` times the base rate.

Per-tenant token buckets model admission control: an arrival that finds
the bucket empty is *rejected* (counted, never issued), the standard
open-loop shed policy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Generator, Optional

from ..metrics import LatencyHistogram
from ..sim import Environment
from ..workload import HotspotKeys, RandomKeys, ZipfianKeys, value_for
from .cluster import ClusterDb, shard_process_name

__all__ = ["TenantSpec", "TokenBucket", "ClientPopulation",
           "TRAFFIC_SHAPES", "KEY_SKEWS"]

TRAFFIC_SHAPES = ("steady", "diurnal", "flash")
KEY_SKEWS = ("uniform", "zipfian", "hotspot")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: who they are and how they drive the cluster."""

    name: str
    rate: float = 1000.0            # mean arrivals/sec (open loop)
    write_fraction: float = 1.0     # rest are point reads
    skew: str = "zipfian"           # uniform | zipfian | hotspot
    theta: float = 0.99             # zipfian skew parameter
    hot_fraction: float = 0.01      # hotspot: size of the hot set
    hot_mass: float = 0.9           # hotspot: probability mass on it
    shape: str = "steady"           # steady | diurnal | flash
    diurnal_period: float = 2.0     # sim-seconds per day
    diurnal_amplitude: float = 0.8  # peak/trough swing, in (0, 1]
    flash_at: float = 0.5           # flash-crowd start (sim-seconds)
    flash_duration: float = 0.25
    flash_factor: float = 5.0
    rate_limit: Optional[float] = None   # token-bucket ops/sec (None = off)
    burst: float = 100.0                 # token-bucket capacity

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.skew not in KEY_SKEWS:
            raise ValueError(f"skew must be one of {KEY_SKEWS}")
        if self.shape not in TRAFFIC_SHAPES:
            raise ValueError(f"shape must be one of {TRAFFIC_SHAPES}")
        if not 0.0 < self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in (0, 1]")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive when set")

    def multiplier(self, t: float) -> float:
        """Traffic-shape rate multiplier at simulated time ``t`` (pure)."""
        if self.shape == "diurnal":
            phase = 2.0 * math.pi * t / self.diurnal_period
            return max(0.05, 1.0 + self.diurnal_amplitude * math.sin(phase))
        if self.shape == "flash":
            if self.flash_at <= t < self.flash_at + self.flash_duration:
                return self.flash_factor
            return 1.0
        return 1.0


class TokenBucket:
    """Deterministic token bucket refilled lazily from simulated time."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        self.tokens = min(self.burst,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class _TenantState:
    """Runtime counters for one tenant (all pure-Python bookkeeping)."""

    def __init__(self, spec: TenantSpec, rng: random.Random, keys,
                 bucket: Optional[TokenBucket], shards: int):
        self.spec = spec
        self.rng = rng
        self.keys = keys
        self.bucket = bucket
        self.issued = 0
        self.completed = 0
        self.rejected = 0           # token bucket said no
        self.errors = 0             # op raised (degraded shard, etc.)
        self.inflight = 0
        self.write_hist = LatencyHistogram()
        self.read_hist = LatencyHistogram()
        self.shard_ops = [0] * shards

    def report(self) -> dict:
        return {
            "tenant": self.spec.name,
            "issued": self.issued,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "inflight": self.inflight,
            "shard_ops": list(self.shard_ops),
            "write_latency": (self.write_hist.summary()
                              if self.write_hist.total_count else None),
            "read_latency": (self.read_hist.summary()
                             if self.read_hist.total_count else None),
        }


class ClientPopulation:
    """Drive a :class:`ClusterDb` with N open-loop tenants."""

    def __init__(self, env: Environment, cluster: ClusterDb,
                 tenants: list, duration: float,
                 key_space: int = 1 << 16, key_size: int = 4,
                 value_size: int = 128, seed: int = 1):
        if not tenants:
            raise ValueError("population needs at least one tenant")
        self.env = env
        self.cluster = cluster
        self.duration = duration
        self.key_space = key_space
        self.key_size = key_size
        self.value_size = value_size
        self.seed = seed
        self.states = [self._make_state(spec) for spec in tenants]

    def _make_state(self, spec: TenantSpec) -> _TenantState:
        # One stream per tenant, seeded by (population seed, tenant name):
        # the determinism contract MODEL.md pins.
        rng = random.Random(f"{self.seed}:pop:{spec.name}")
        key_seed = rng.randrange(1 << 62)
        if spec.skew == "zipfian":
            keys = ZipfianKeys(self.key_space, self.key_size,
                               theta=spec.theta, seed=key_seed)
        elif spec.skew == "hotspot":
            keys = HotspotKeys(self.key_space, self.key_size,
                               hot_fraction=spec.hot_fraction,
                               hot_mass=spec.hot_mass, seed=key_seed)
        else:
            keys = RandomKeys(self.key_space, self.key_size, seed=key_seed)
        bucket = (TokenBucket(spec.rate_limit, spec.burst, now=self.env.now)
                  if spec.rate_limit is not None else None)
        return _TenantState(spec, rng, keys, bucket,
                            self.cluster.shard_count)

    # -- op execution --------------------------------------------------------
    def _op(self, state: _TenantState, key: bytes,
            is_write: bool) -> Generator:
        t0 = self.env.now
        try:
            if is_write:
                yield from self.cluster.put(
                    key, value_for(key, self.value_size))
            else:
                yield from self.cluster.get(key)
        except Exception:
            # A degraded shard refusing work is a tenant-visible error,
            # not a population crash — isolation asserts count them.
            state.errors += 1
        else:
            state.completed += 1
            hist = state.write_hist if is_write else state.read_hist
            hist.record((self.env.now - t0) * 1e6)
        finally:
            state.inflight -= 1

    def _tenant_loop(self, state: _TenantState) -> Generator:
        spec, rng, env = state.spec, state.rng, self.env
        t_end = env.now + self.duration
        while env.now < t_end:
            m = spec.multiplier(env.now)
            gap = rng.expovariate(spec.rate * m)
            yield env.timeout(gap)
            if env.now >= t_end:
                break
            if state.bucket is not None and not state.bucket.try_take(env.now):
                state.rejected += 1
                continue
            key = state.keys.next_key()
            sid = self.cluster.router.route(key)
            state.shard_ops[sid] += 1
            is_write = rng.random() < spec.write_fraction
            state.issued += 1
            state.inflight += 1
            # Open loop: spawn, don't await.  The process carries the
            # owning shard's name prefix so fault scoping and traces can
            # attribute it.
            env.process(self._op(state, key, is_write),
                        name=shard_process_name(sid, f"pop.{spec.name}"))

    def run(self) -> Generator:
        """Drive all tenants for ``duration``, then return (in-flight ops
        may still be draining — follow with :meth:`drain`)."""
        procs = [self.env.process(self._tenant_loop(s),
                                  name=f"pop.{s.spec.name}")
                 for s in self.states]
        yield self.env.all_of(procs)

    def drain(self, poll: float = 0.005, timeout: float = 30.0) -> Generator:
        """Wait until every spawned op completed (bounded by ``timeout``)."""
        deadline = self.env.now + timeout
        while any(s.inflight for s in self.states):
            if self.env.now >= deadline:
                break
            yield self.env.timeout(poll)

    # -- reporting -----------------------------------------------------------
    @property
    def total_inflight(self) -> int:
        return sum(s.inflight for s in self.states)

    def report(self) -> dict:
        return {
            "tenants": [s.report() for s in self.states],
            "issued": sum(s.issued for s in self.states),
            "completed": sum(s.completed for s in self.states),
            "rejected": sum(s.rejected for s in self.states),
            "errors": sum(s.errors for s in self.states),
        }
