"""Failover / rebalance chaos scenarios and the acked-write-loss oracle.

The drivers behind ``python -m repro.bench failover``, the failover test
battery and the CI ``failover-smoke`` job.  One scenario is one
deterministic story in one DES world:

1. build a replicated cluster (every shard a primary + K backups);
2. drive a scripted client workload through the facade, recording every
   *acknowledged* write in a shadow ``committed`` map;
3. kill the target shard's primary — either by arming a shard-scoped
   ``CRASH`` fault on a real site (``db.write.gate`` by default, so the
   host module dies mid-write exactly like the single-node crash
   harness) or programmatically at an op index — and let the replica
   group's failure detector drive promotion;
4. optionally bump the router seed mid-run (live resharding) so failover
   and migration compose;
5. settle (promotion complete, migration drained, shards quiesced) and
   verify **every** committed key through the facade.

The verification step is the acked-write-loss oracle the issue's
acceptance criterion names: a key whose acknowledged value is missing is
``lost``, one that reads back a different value is ``stale`` — a correct
replication + catch-up protocol yields neither, at *every* crash point,
in *both* replication modes.

Seeding honors ``REPRO_FAULT_SEED`` via :func:`~repro.cluster.chaos.chaos_seed`
(same contract as the single-node harness), and ``journal_path`` records
the full flight-recorder journal so two runs of the same scenario can be
byte-diffed with ``python -m repro.obs diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..core import DetectorConfig, KvaccelDb
from ..device import (
    CpuModel,
    DevLsmConfig,
    HybridSsd,
    HybridSsdConfig,
    KiB,
    MiB,
    NandGeometry,
)
from ..faults.plan import NthOccurrencePlan
from ..faults.registry import CRASH, FaultAction, FaultRegistry
from ..lsm import LsmOptions
from ..obs import Journal, register_digest_sources, write_journal
from ..sim import Environment, Interrupt
from ..types import encode_key
from .chaos import arm_shard, chaos_seed
from .cluster import ClusterDb
from .replica import REPLAY, ReplicationConfig
from .router import make_router

__all__ = ["build_replicated_cluster", "run_failover_scenario",
           "failover_sweep", "FailoverReport"]


def _small_options() -> LsmOptions:
    """The crash-harness LSM geometry: small enough that a short workload
    exercises flush + WAL grouping, deterministic across runs."""
    return LsmOptions(
        write_buffer_size=16 * KiB,
        level0_file_num_compaction_trigger=2,
        level0_slowdown_writes_trigger=6,
        level0_stop_writes_trigger=10,
        max_bytes_for_level_base=64 * KiB,
        max_bytes_for_level_multiplier=4,
        target_file_size_base=16 * KiB,
        soft_pending_compaction_bytes_limit=256 * KiB,
        hard_pending_compaction_bytes_limit=1 * MiB,
        compaction_io_chunk=16 * KiB,
        wal_group_commit_bytes=4 * KiB,
        block_size=4 * KiB,
    )


def _stack(env: Environment, name: str, cpu_name: str, options,
           detector_period: float, resilience):
    """One small share-nothing KVACCEL stack (db, ssd, cpu)."""
    cpu = CpuModel(env, cores=8, name=cpu_name)
    geometry = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                            pages_per_block=32, page_size=4096)
    ssd = HybridSsd(env, cpu, HybridSsdConfig(
        geometry=geometry,
        peak_nand_bandwidth=200 * MiB,
        pcie_bandwidth=1024 * MiB,
        devlsm=DevLsmConfig(memtable_bytes=8 * KiB),
    ))
    db = KvaccelDb(env, options, ssd, cpu, name=name, rollback="disabled",
                   detector_config=DetectorConfig(period=detector_period),
                   resilience=resilience)
    return db, ssd, cpu


def build_replicated_cluster(env: Environment, shards: int = 2,
                             replication: Optional[ReplicationConfig] = None,
                             router: str = "hash", key_space: int = 1 << 16,
                             seed: int = 0, detector_period: float = 0.002,
                             resilience=None, options=None) -> ClusterDb:
    """N small shards, each with ``replication.backups`` standby stacks.

    Primaries are named ``shard<sid>`` (their daemons inherit the prefix
    shard-scoped fault plans key on); backups are named ``shard<sid>b<j>``
    — deliberately *without* the ``shard<sid>.`` dot, so a fault aimed at
    shard ``sid`` never also hits its standbys or the replication
    daemons.
    """
    replication = replication or ReplicationConfig()
    options = options or _small_options()
    parts = []
    backup_stacks = []
    for sid in range(shards):
        parts.append(_stack(env, f"shard{sid}", f"shard{sid}.host",
                            options, detector_period, resilience))
        backup_stacks.append([
            _stack(env, f"shard{sid}b{j}", f"shard{sid}b{j}.host",
                   options, detector_period, resilience)
            for j in range(replication.backups)])
    return ClusterDb(env, parts,
                     make_router(router, shards, key_space, seed=seed),
                     replication=replication, backups=backup_stacks)


@dataclass
class FailoverReport:
    """Outcome of one failover/rebalance scenario run."""

    mode: str
    seed: int
    kill_site: Optional[str]
    kill_occurrence: int
    killed_shard: int
    crashed: bool = False
    ops: int = 0
    acked: int = 0
    aborted: int = 0
    lost: list = field(default_factory=list)      # acked keys that vanished
    stale: list = field(default_factory=list)     # acked keys reading wrong
    failovers: int = 0
    failover_duration: float = 0.0
    catchup_records: int = 0
    rebalanced: bool = False
    moved_keys: int = 0
    sim_time: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Zero acked-write loss, and — if the primary died — a real
        promotion happened (the oracle exercised the machinery, it did
        not vacuously pass)."""
        if self.error is not None or self.lost or self.stale:
            return False
        if self.crashed and self.failovers < 1:
            return False
        return True

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        kill = (f"{self.kill_site}#{self.kill_occurrence}"
                if self.kill_site else "scripted")
        extra = ""
        if self.lost:
            extra += f" lost={len(self.lost)}"
        if self.stale:
            extra += f" stale={len(self.stale)}"
        if self.error:
            extra += f" error={self.error}"
        if self.rebalanced:
            extra += f" moved={self.moved_keys}"
        return (f"[{status}] {self.mode} kill={kill} "
                f"shard{self.killed_shard} acked={self.acked} "
                f"failovers={self.failovers} "
                f"(seed={self.seed:#x}){extra}")


def _value(i: int) -> bytes:
    return (b"v%06d;" % i) * 24       # ~192 B, deterministic per op index


def run_failover_scenario(
        mode: str = REPLAY, *,
        shards: int = 2, backups: int = 1, ops: int = 80,
        key_range: int = 24,
        kill_site: Optional[str] = "db.write.gate",
        kill_occurrence: int = 5, kill_shard: int = 0,
        kill_at_op: Optional[int] = None,
        degrade_at_op: Optional[int] = None,
        reshard_at_op: Optional[int] = None,
        reshard_seed: Optional[int] = None,
        seed: Optional[int] = None,
        resilience=None,
        replication: Optional[ReplicationConfig] = None,
        extra_arms: Optional[Callable] = None,
        journal_path: Optional[str] = None) -> FailoverReport:
    """One scenario run; see the module docstring for the story.

    ``kill_site``/``kill_occurrence`` arm a shard-scoped CRASH on the
    target shard's client ops (``op="wl"`` scope, so the shard's backups
    and replication daemons are outside the blast radius);
    ``kill_at_op`` kills programmatically instead; ``degrade_at_op``
    forces the resilience layer DEGRADED (pair with
    ``failover_on_degraded=True`` to promote off degradation);
    ``reshard_at_op`` bumps the router seed mid-run.  ``extra_arms`` is a
    hook called as ``extra_arms(registry, env, cluster)`` after build —
    the determinism tests inject an extra DELAY on the replication link
    through it.
    """
    seed = chaos_seed(seed)
    env = Environment()
    registry = FaultRegistry(seed).install(env)
    journal = None
    if journal_path is not None:
        journal = Journal(period=0.01).install(env)
    if replication is None:
        replication = ReplicationConfig(mode=mode, backups=backups)
    cluster = build_replicated_cluster(
        env, shards=shards, replication=replication,
        resilience=resilience)
    if journal is not None:
        register_digest_sources(journal, cluster)
    report = FailoverReport(mode=replication.mode, seed=seed,
                            kill_site=kill_site,
                            kill_occurrence=kill_occurrence,
                            killed_shard=kill_shard, ops=ops)
    crash_ev = None
    if kill_site is not None:
        arm_shard(registry, env, kill_shard, kill_site,
                  NthOccurrencePlan(kill_occurrence), FaultAction(CRASH),
                  op="wl")
        crash_ev = registry.new_crash_event(env)
    if extra_arms is not None:
        extra_arms(registry, env, cluster)

    committed: dict = {}            # key -> last acked value (None = deleted)
    state = {"acked": 0, "aborted": 0, "pending": None}

    def client_op(key: bytes, value) -> Generator:
        """One client request; records the ack, or parks the op for the
        driver's client-retry when the crash interrupt abandons it."""
        try:
            if value is None:
                yield from cluster.delete(key)
            else:
                yield from cluster.put(key, value)
            committed[key] = value
            state["acked"] += 1
        except Interrupt:
            state["aborted"] += 1
            state["pending"] = (key, value)

    def driver() -> Generator:
        handled = crash_ev is None
        mig_proc = None
        for i in range(ops):
            if degrade_at_op == i:
                db = cluster.shards[kill_shard].db
                if db.resil is not None:
                    # Wedge the drain the resilience layer would use to
                    # heal itself: with the rollback daemon stopped,
                    # note_drained() never fires and the machine stays
                    # DEGRADED — the persistent sickness
                    # ``failover_on_degraded`` exists to promote off.
                    db.rollback_manager.stop()
                    db.resil.force_degrade()
            if kill_at_op == i:
                report.crashed = True
                cluster.groups[kill_shard].kill_primary()
            if reshard_at_op == i:
                report.rebalanced = True
                mig_proc = cluster.rebalance(seed=reshard_seed)
            if i % 9 == 8:
                key, value = encode_key((i - 3) % key_range), None
            else:
                key, value = encode_key(i % key_range), _value(i)
            sid = cluster.router.route(key)
            p = env.process(client_op(key, value), name=f"shard{sid}.wl{i}")
            if handled:
                yield p
                continue
            yield env.any_of([p, crash_ev])
            if registry.crashed_at is None:
                continue
            # The armed crash fired: the target shard's host module dies
            # between events — abandon the in-flight request, disarm, and
            # let the failure detector drive promotion while the client
            # retries the aborted op through the facade (it rides
            # FailoverInProgress backoff onto the promoted backup).
            handled = True
            report.crashed = True
            if p.is_alive:
                p.interrupt("crash")
                yield p
            registry.clear_arms()
            if extra_arms is not None:
                # clear_arms() wiped the caller's plans along with the
                # spent CRASH; re-install them so chaos aimed at the
                # recovery machinery (replication link, catch-up) stays
                # live through detection and promotion.
                extra_arms(registry, env, cluster)
            cluster.groups[kill_shard].kill_primary()
            if state["pending"] is not None:
                k2, v2 = state["pending"]
                state["pending"] = None
                if v2 is None:
                    yield from cluster.delete(k2)
                else:
                    yield from cluster.put(k2, v2)
                committed[k2] = v2
                state["acked"] += 1
        if degrade_at_op is not None or kill_at_op is not None:
            # A scripted kill/degrade may land near the end of the op
            # loop with the workload no longer blocking on the slot —
            # give the heartbeat daemon sim time to detect and promote
            # before settling (bounded so a misconfigured scenario still
            # terminates and fails its assertions instead of hanging).
            grp = cluster.groups[kill_shard]
            deadline = env.now + 1.0
            while grp.failovers == 0 and env.now < deadline:
                yield env.timeout(replication.heartbeat_period)
        yield from cluster.wait_for_quiesce()
        if mig_proc is not None and not mig_proc.processed:
            yield mig_proc

    def verify() -> Generator:
        for key in sorted(committed):
            want = committed[key]
            got = yield from cluster.get(key)
            if want is None:
                if got is not None:
                    report.stale.append(key)
            elif got is None:
                report.lost.append(key)
            elif got != want:
                report.stale.append(key)

    try:
        env.run(until=env.process(driver()))
        env.run(until=env.process(verify()))
    except Exception as exc:      # surface per-run, keep sweeps going
        report.error = f"{type(exc).__name__}: {exc}"
    report.acked = state["acked"]
    report.aborted = state["aborted"]
    for grp in cluster.groups.values():
        report.failovers += grp.failovers
        report.failover_duration = max(report.failover_duration,
                                       grp.last_failover_duration)
        report.catchup_records = max(report.catchup_records,
                                     grp.catchup_records)
    report.moved_keys = cluster._moved_total
    report.sim_time = env.now
    cluster.close()
    if journal is not None:
        write_journal(journal, journal_path,
                      meta={"scenario": "failover", "seed": seed,
                            "mode": replication.mode})
    return report


def failover_sweep(mode: str = REPLAY, *,
                   occurrences=range(1, 6),
                   sites=("db.write.gate",),
                   seed: Optional[int] = None,
                   ops: int = 60, **kw) -> list:
    """The shard-scoped crash sweep: one scenario per (site, occurrence)
    primary-kill point.  ``all(r.ok for r in reports)`` is the acceptance
    criterion: zero acknowledged writes lost at every crash point."""
    reports = []
    for site in sites:
        for occ in occurrences:
            reports.append(run_failover_scenario(
                mode, kill_site=site, kill_occurrence=occ,
                seed=seed, ops=ops, **kw))
    return reports
