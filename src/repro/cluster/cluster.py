"""ClusterDb: N independent KVACCEL shard instances in one DES world.

Each shard is a complete, share-nothing KVACCEL stack — its own host CPU,
its own hybrid SSD, its own Main-LSM, detector, controller and rollback
daemon — all scheduled on one shared :class:`~repro.sim.Environment`, so a
single simulated clock orders every event across the fleet.  A
:class:`~repro.cluster.router.Router` decides key ownership; the facade
mirrors the single-instance data plane (``put``/``put_batch``/``get``/
``delete``/``scan``) so every existing driver — and the whole ``repro.bench``
harness — runs against a cluster unchanged.

Determinism contract (MODEL.md "Cluster clock"):

* routing is a pure function of the key (no RNG draw at route time);
* a batch spanning shards fans out as one sub-process per shard, spawned
  in ascending shard-id order, and joins on an ``AllOf`` — results are
  merged in *spec order* (shard id), never completion order;
* a single-shard cluster routes every call straight through
  (``yield from``) with no extra processes or events, so its trajectory
  is bit-identical to the plain single-instance system — the differential
  oracle the golden-trajectory tests pin.

Shard-scoped processes are named ``shard<N>.<op>`` — the hook
:class:`~repro.cluster.chaos.ShardScopedPlan` uses to aim fault
injection at exactly one shard of the fleet.
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from ..core import KvaccelDb
from ..metrics import LatencyHistogram
from ..resil import DEGRADED, HEALTHY
from ..sim import Environment
from .router import Router

__all__ = ["ClusterDb", "ClusterShard", "ClusterFabric", "ClusterCpuView",
           "shard_process_name"]


def shard_process_name(sid: int, op: str) -> str:
    """Canonical name for a process doing shard-``sid`` work.

    Fault plans scope by this prefix (``shard<N>.``), so every process the
    cluster or population spawns on behalf of a shard must go through
    here.
    """
    return f"shard{sid}.{op}"


class _TeeHistogram:
    """Fan one ``record`` stream into several histograms.

    Used to keep the per-shard latency view alive while a RunCollector's
    aggregate histogram is attached on top: recording is pure Python with
    no Environment interaction, so teeing never perturbs a trajectory.
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks):
        self.sinks = [s for s in sinks if s is not None]

    def record(self, value: float, count: int = 1) -> None:
        for s in self.sinks:
            s.record(value, count)


class ClusterShard:
    """One shard: a full KVACCEL stack plus its cluster-side bookkeeping."""

    def __init__(self, sid: int, db: KvaccelDb, ssd, cpu):
        self.sid = sid
        self.name = f"shard{sid}"
        self.db = db
        self.ssd = ssd
        self.cpu = cpu
        # Shard-local latency views (microseconds, like DbStats' hooks).
        self.write_hist = LatencyHistogram()
        self.read_hist = LatencyHistogram()
        db.stats.write_latencies = self.write_hist
        db.stats.read_latencies = self.read_hist
        # Facade-side op counters (also feed hot-shard detection).
        self.write_ops = 0
        self.read_ops = 0

    # -- health ------------------------------------------------------------
    @property
    def resil_state(self) -> str:
        return self.db.resil.state if self.db.resil is not None else HEALTHY

    @property
    def degraded(self) -> bool:
        return self.resil_state == DEGRADED

    # -- derived metrics ----------------------------------------------------
    def write_amplification(self) -> float:
        """Device write amplification: (flush + compaction bytes written)
        over user bytes — the per-shard spread the scaling report shows
        (VAT's cost-model lens: WA variance is what makes shard-count
        curves interpretable)."""
        s = self.db.stats
        if s.user_write_bytes == 0:
            return 0.0
        return ((s.flush_bytes_written + s.compaction_bytes_written)
                / s.user_write_bytes)

    def report(self) -> dict:
        """Plain-data per-shard summary (picklable: crosses worker
        processes inside RunResult.extra)."""
        wc = self.db.write_controller
        doc = {
            "sid": self.sid,
            "write_ops": self.write_ops,
            "read_ops": self.read_ops,
            "redirected_writes": self.db.controller.redirected_writes,
            "rollbacks": self.db.rollback_manager.rollback_count,
            "stall_events": wc.stall_events,
            "slowdown_events": wc.slowdown_events,
            "total_stall_time": wc.total_stall_time,
            "write_amplification": self.write_amplification(),
            "resil_state": self.resil_state,
            "write_latency": (self.write_hist.summary()
                              if self.write_hist.total_count else None),
            "read_latency": (self.read_hist.summary()
                             if self.read_hist.total_count else None),
        }
        return doc


class _ClusterStats:
    """DbStats facade: attaching a collector's histograms tees them onto
    every shard's stats without losing the per-shard view."""

    def __init__(self, cluster: "ClusterDb"):
        self._cluster = cluster
        self._write_latencies = None
        self._read_latencies = None

    @property
    def write_latencies(self):
        return self._write_latencies

    @write_latencies.setter
    def write_latencies(self, hist) -> None:
        self._write_latencies = hist
        for sh in self._cluster.shards:
            sh.db.stats.write_latencies = _TeeHistogram(sh.write_hist, hist)

    @property
    def read_latencies(self):
        return self._read_latencies

    @read_latencies.setter
    def read_latencies(self, hist) -> None:
        self._read_latencies = hist
        for sh in self._cluster.shards:
            sh.db.stats.read_latencies = _TeeHistogram(sh.read_hist, hist)

    def __getattr__(self, name):
        # Cumulative counters sum across the fleet.
        total = 0
        for sh in self._cluster.shards:
            total += getattr(sh.db.stats, name)
        return total


class _ClusterWriteController:
    """Aggregate view over the shards' write controllers.

    RunCollector reads exactly these fields; for a 1-shard cluster every
    value equals the underlying controller's, keeping the golden
    trajectory pinned.
    """

    def __init__(self, cluster: "ClusterDb"):
        self._cluster = cluster

    def _wcs(self):
        return [sh.db.write_controller for sh in self._cluster.shards]

    def finalize(self) -> None:
        for wc in self._wcs():
            wc.finalize()

    @property
    def stall_intervals(self) -> list:
        merged = list(heapq.merge(*(wc.stall_intervals for wc in self._wcs())))
        return merged

    @property
    def stall_events(self) -> int:
        return sum(wc.stall_events for wc in self._wcs())

    @property
    def slowdown_events(self) -> int:
        return sum(wc.slowdown_events for wc in self._wcs())

    @property
    def total_stall_time(self) -> float:
        return sum(wc.total_stall_time for wc in self._wcs())

    @property
    def total_delayed_time(self) -> float:
        return sum(wc.total_delayed_time for wc in self._wcs())

    def breakdown(self) -> dict:
        out: dict[str, dict] = {}
        for wc in self._wcs():
            for section, counters in wc.breakdown().items():
                acc = out.setdefault(section, {})
                for reason, v in counters.items():
                    acc[reason] = acc.get(reason, 0) + v
        return out


class _SummedLedger:
    """Read-only sum of per-shard TrafficLedgers, bucket-aligned.

    All shards share one ledger bucket size (they come from the same
    profile), so summing by bucket index is exact."""

    def __init__(self, ledgers: list):
        self._ledgers = ledgers

    @property
    def total_bytes(self) -> float:
        return sum(l.total_bytes for l in self._ledgers)

    def series(self, t_end: Optional[float] = None):
        times: list = []
        values: list = []
        for led in self._ledgers:
            t, v = led.series(t_end=t_end)
            if len(t) > len(times):
                values.extend(0.0 for _ in range(len(t) - len(values)))
                times = t
            for i, x in enumerate(v):
                values[i] += x
        return times, values

    def bytes_in(self, t0: float, t1: float) -> float:
        return sum(l.bytes_in(t0, t1) for l in self._ledgers)


class _PcieView:
    def __init__(self, ledger: _SummedLedger):
        self.ledger = ledger


class ClusterFabric:
    """The ``ssd``-shaped object a multi-shard run hands the harness:
    fleet-total PCIe traffic (per-shard links summed per bucket)."""

    def __init__(self, shards: list):
        self.shards = shards
        self.pcie = _PcieView(_SummedLedger(
            [sh.ssd.pcie.ledger for sh in shards]))


class ClusterCpuView:
    """The ``cpu``-shaped harness object: mean utilisation across the
    shard hosts (each shard has its own host CPU)."""

    def __init__(self, shards: list):
        self.shards = shards
        self.cores = sum(sh.cpu.cores for sh in shards)

    def utilization(self, t0: float, t1: float) -> float:
        cpus = [sh.cpu for sh in self.shards]
        return sum(c.utilization(t0, t1) for c in cpus) / len(cpus)


class ClusterDb:
    """The sharded serving layer: one facade over N KVACCEL shards."""

    def __init__(self, env: Environment, shards: list, router: Router,
                 name: str = "cluster"):
        """``shards`` is ``[(KvaccelDb, ssd, cpu), ...]`` in shard-id
        order; ``router.shards`` must match its length."""
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if router.shards != len(shards):
            raise ValueError(
                f"router is for {router.shards} shards, got {len(shards)}")
        self.env = env
        self.name = name
        self.router = router
        self.shards = [ClusterShard(i, db, ssd, cpu)
                       for i, (db, ssd, cpu) in enumerate(shards)]
        self._single = self.shards[0] if len(self.shards) == 1 else None
        self.stats = _ClusterStats(self)
        self.write_controller = _ClusterWriteController(self)
        self._register_telemetry()

    # -- data plane ---------------------------------------------------------
    def put(self, key: bytes, value) -> Generator:
        sh = self.shards[self.router.route(key)]
        sh.write_ops += 1
        self._tel_add(sh, "write_ops", 1)
        yield from sh.db.put(key, value)

    def delete(self, key: bytes) -> Generator:
        sh = self.shards[self.router.route(key)]
        sh.write_ops += 1
        self._tel_add(sh, "write_ops", 1)
        yield from sh.db.delete(key)

    def get(self, key: bytes) -> Generator:
        sh = self.shards[self.router.route(key)]
        sh.read_ops += 1
        self._tel_add(sh, "read_ops", 1)
        value = yield from sh.db.get(key)
        return value

    def put_batch(self, pairs: list) -> Generator:
        """Group-commit a batch across its owning shards.

        Single-shard clusters take the transparent pass-through (identical
        event sequence to the plain system).  Multi-shard batches fan out
        as one named process per owning shard — spawned in ascending shard
        id order — and join on AllOf, so sub-batches are serviced
        concurrently in simulated time and the facade returns when the
        slowest shard acks (the cluster-level group-commit latency).
        """
        single = self._single
        if single is not None:
            single.write_ops += len(pairs)
            self._tel_add(single, "write_ops", len(pairs))
            yield from single.db.put_batch(pairs)
            return
        parts = self.router.split_batch(pairs)
        if len(parts) == 1:
            # One owning shard: still isolate the work in a shard-named
            # process so fault scoping and interleaving match the general
            # fan-out path.
            sid, sub = parts[0]
            sh = self.shards[sid]
            sh.write_ops += len(sub)
            self._tel_add(sh, "write_ops", len(sub))
            gen = sh.db.put_batch(sub)
            if self.env.lineage is not None:
                gen = self._shard_op(sid, gen, "put_batch", len(sub))
            yield self.env.process(gen,
                                   name=shard_process_name(sid, "put_batch"))
            return
        procs = []
        for sid, sub in parts:           # ascending sid: spec order
            sh = self.shards[sid]
            sh.write_ops += len(sub)
            self._tel_add(sh, "write_ops", len(sub))
            gen = sh.db.put_batch(sub)
            if self.env.lineage is not None:
                gen = self._shard_op(sid, gen, "put_batch", len(sub))
            procs.append(self.env.process(
                gen, name=shard_process_name(sid, "put_batch")))
        yield self.env.all_of(procs)

    def _shard_op(self, sid: int, gen: Generator, kind: str,
                  count: int) -> Generator:
        """Per-shard lineage: the spawned shard process records its own op
        under scope ``cluster.shard{sid}`` (the channel-naming convention),
        so the decomposition can be conditioned per shard.  Only wrapped
        while a profiler is installed — profiler-off runs spawn the exact
        original generator, preserving the pinned trajectories."""
        lp = self.env.lineage
        ctx = (lp.op_begin(kind, count=count, scope=f"cluster.shard{sid}")
               if lp is not None else None)
        try:
            result = yield from gen
        finally:
            if lp is not None:
                lp.op_end(ctx)
        return result

    def scan(self, start_key: bytes, count: int) -> Generator:
        """Cluster range query: per-shard scans merged in key order.

        With a range router only shards whose range can intersect
        ``[start_key, ...)`` are visited; a hash router scatters keys, so
        every shard is.  Shard scans run as concurrent named processes
        (ascending sid) and the merge is by key — each key lives on
        exactly one shard, so the merged stream has no duplicates.
        """
        single = self._single
        if single is not None:
            single.read_ops += 1
            self._tel_add(single, "read_ops", 1)
            out = yield from single.db.scan(start_key, count)
            return out
        start = int.from_bytes(start_key, "big")
        targets = []
        for sh in self.shards:
            ranges = getattr(self.router, "ranges", None)
            if ranges is not None:
                lo, hi = self.router.ranges()[sh.sid]
                last = sh.sid == len(self.shards) - 1
                if not last and hi <= start:
                    continue        # entirely below the scan start
            targets.append(sh)
        lineage_on = self.env.lineage is not None
        procs = [self.env.process(
            (self._shard_op(sh.sid, sh.db.scan(start_key, count),
                            "scan", count or 0)
             if lineage_on else sh.db.scan(start_key, count)),
            name=shard_process_name(sh.sid, "scan"))
                 for sh in targets]
        for sh in targets:
            sh.read_ops += 1
            self._tel_add(sh, "read_ops", 1)
        results = yield self.env.all_of(procs)
        rows = heapq.merge(*(results[p] for p in procs))
        return list(rows)[:count] if count is not None else list(rows)

    # -- lifecycle -----------------------------------------------------------
    def wait_for_quiesce(self, poll: float = 0.01) -> Generator:
        for sh in self.shards:
            yield from sh.db.wait_for_quiesce(poll)

    def final_rollback(self) -> Generator:
        for sh in self.shards:
            yield from sh.db.final_rollback()

    def close(self) -> None:
        for sh in self.shards:
            sh.db.close()

    # -- introspection --------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def degraded_shards(self) -> int:
        return sum(1 for sh in self.shards if sh.degraded)

    def hot_shard(self, factor: float = 2.0) -> int:
        """Index of the shard whose cumulative op share exceeds ``factor``
        times the fleet mean, or -1 when the fleet is balanced."""
        totals = [sh.write_ops + sh.read_ops for sh in self.shards]
        fleet = sum(totals)
        if fleet == 0 or len(totals) < 2:
            return -1
        mean = fleet / len(totals)
        hottest = max(range(len(totals)), key=totals.__getitem__)
        return hottest if totals[hottest] > factor * mean else -1

    def aggregate_latency(self, which: str = "write") -> Optional[dict]:
        """Fleet-wide latency summary: per-shard histograms merged."""
        agg = LatencyHistogram()
        for sh in self.shards:
            agg.merge(sh.write_hist if which == "write" else sh.read_hist)
        return agg.summary() if agg.total_count else None

    def snapshot(self) -> dict:
        return {
            "shards": self.shard_count,
            "router": type(self.router).__name__,
            "degraded_shards": self.degraded_shards(),
            "hot_shard": self.hot_shard(),
            "per_shard": [sh.db.snapshot() for sh in self.shards],
        }

    def cluster_report(self) -> dict:
        """The scaling-report payload: per-shard rows + fleet aggregates."""
        per_shard = [sh.report() for sh in self.shards]
        was = [row["write_amplification"] for row in per_shard]
        return {
            "shards": self.shard_count,
            "router": type(self.router).__name__,
            "per_shard": per_shard,
            "aggregate_write_latency": self.aggregate_latency("write"),
            "aggregate_read_latency": self.aggregate_latency("read"),
            "degraded_shards": self.degraded_shards(),
            "hot_shard": self.hot_shard(),
            "write_amplification": {
                "min": min(was) if was else 0.0,
                "max": max(was) if was else 0.0,
                "mean": sum(was) / len(was) if was else 0.0,
            },
        }

    # -- telemetry -------------------------------------------------------------
    def _tel_add(self, shard: ClusterShard, which: str, n: int) -> None:
        tel = self.env.telemetry
        if tel is not None:
            tel.add(f"cluster.{shard.name}.{which}", n)

    def _register_telemetry(self) -> None:
        """Per-shard channels on the shared hub (no-op when disabled).

        The single-instance publishers (``lsm.*``, ``wc.*``, ``pcie.*``...)
        use fixed channel names, so in a multi-shard world their *rate*
        channels become fleet aggregates and their *gauge* channels stay
        bound to whichever shard registered first (shard 0).  The
        ``cluster.*`` namespace is the per-shard view: facade-fed op
        rates plus gauges/derivs reading each shard's objects directly.
        """
        tel = self.env.telemetry
        if tel is None:
            return
        from ..resil.degrade import STATE_GAUGE
        for sh in self.shards:
            tel.rate(f"cluster.{sh.name}.write_ops")
            tel.rate(f"cluster.{sh.name}.read_ops")
            wc = sh.db.write_controller
            tel.deriv(f"cluster.{sh.name}.stall_time",
                      lambda wc=wc: wc.total_stall_time)
            tel.gauge(f"cluster.{sh.name}.devlsm_bytes",
                      lambda sh=sh: sh.ssd.devlsm.total_bytes)
            tel.gauge(f"cluster.{sh.name}.resil_state",
                      lambda sh=sh: STATE_GAUGE[sh.resil_state])
            if sh.db.resil is not None:
                # Per-shard retry pressure: both device interfaces'
                # executors, so a storm on either path is attributed to
                # its shard (feeds retry_storm.shard{k}).
                tel.deriv(f"cluster.{sh.name}.retries",
                          lambda sh=sh: (sh.ssd.kv.retry.stats.retries
                                         + sh.ssd.block.retry.stats.retries))
        tel.gauge("cluster.degraded_shards",
                  lambda: float(self.degraded_shards()))
        tel.gauge("cluster.hot_shard", lambda: float(self.hot_shard()))
