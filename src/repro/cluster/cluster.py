"""ClusterDb: N independent KVACCEL shard instances in one DES world.

Each shard is a complete, share-nothing KVACCEL stack — its own host CPU,
its own hybrid SSD, its own Main-LSM, detector, controller and rollback
daemon — all scheduled on one shared :class:`~repro.sim.Environment`, so a
single simulated clock orders every event across the fleet.  A
:class:`~repro.cluster.router.Router` decides key ownership; the facade
mirrors the single-instance data plane (``put``/``put_batch``/``get``/
``delete``/``scan``) so every existing driver — and the whole ``repro.bench``
harness — runs against a cluster unchanged.

Determinism contract (MODEL.md "Cluster clock"):

* routing is a pure function of the key (no RNG draw at route time);
* a batch spanning shards fans out as one sub-process per shard, spawned
  in ascending shard-id order, and joins on an ``AllOf`` — results are
  merged in *spec order* (shard id), never completion order;
* a single-shard cluster routes every call straight through
  (``yield from``) with no extra processes or events, so its trajectory
  is bit-identical to the plain single-instance system — the differential
  oracle the golden-trajectory tests pin.

Shard-scoped processes are named ``shard<N>.<op>`` — the hook
:class:`~repro.cluster.chaos.ShardScopedPlan` uses to aim fault
injection at exactly one shard of the fleet.

Fault tolerance (ISSUE 10) is strictly opt-in: pass a
:class:`~repro.cluster.replica.ReplicationConfig` plus per-shard backup
stacks and every slot becomes a :class:`~repro.cluster.replica.ReplicaGroup`
with deterministic failover; call :meth:`ClusterDb.rebalance` and the
router is atomically repointed while a migration driver moves the
affected keys.  Without either, every data-plane call takes the original
code path unchanged — the replication/resharding guard is one pure-Python
truth test, so unreplicated trajectories stay bit-identical to the
pre-replica tree (the gating contract the golden tests pin).
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from ..core import KvaccelDb
from ..faults.registry import fault_point, touch
from ..metrics import LatencyHistogram
from ..resil import DEGRADED, HEALTHY, FailoverInProgress, RetryExecutor
from ..sim import Environment
from .replica import ACTIVE, BackupReplica, ReplicaGroup, ReplicationConfig
from .reshard import Migration, RebalanceConfig
from .router import HashRouter, Router

__all__ = ["ClusterDb", "ClusterShard", "ClusterFabric", "ClusterCpuView",
           "shard_process_name"]


def shard_process_name(sid: int, op: str) -> str:
    """Canonical name for a process doing shard-``sid`` work.

    Fault plans scope by this prefix (``shard<N>.``), so every process the
    cluster or population spawns on behalf of a shard must go through
    here.
    """
    return f"shard{sid}.{op}"


class _TeeHistogram:
    """Fan one ``record`` stream into several histograms.

    Used to keep the per-shard latency view alive while a RunCollector's
    aggregate histogram is attached on top: recording is pure Python with
    no Environment interaction, so teeing never perturbs a trajectory.
    """

    __slots__ = ("sinks",)

    def __init__(self, *sinks):
        self.sinks = [s for s in sinks if s is not None]

    def record(self, value: float, count: int = 1) -> None:
        for s in self.sinks:
            s.record(value, count)


class ClusterShard:
    """One shard: a full KVACCEL stack plus its cluster-side bookkeeping."""

    def __init__(self, sid: int, db: KvaccelDb, ssd, cpu):
        self.sid = sid
        self.name = f"shard{sid}"
        self.db = db
        self.ssd = ssd
        self.cpu = cpu
        # Shard-local latency views (microseconds, like DbStats' hooks).
        self.write_hist = LatencyHistogram()
        self.read_hist = LatencyHistogram()
        db.stats.write_latencies = self.write_hist
        db.stats.read_latencies = self.read_hist
        # Facade-side op counters (also feed hot-shard detection).
        self.write_ops = 0
        self.read_ops = 0

    # -- health ------------------------------------------------------------
    @property
    def resil_state(self) -> str:
        return self.db.resil.state if self.db.resil is not None else HEALTHY

    @property
    def degraded(self) -> bool:
        return self.resil_state == DEGRADED

    # -- derived metrics ----------------------------------------------------
    def write_amplification(self) -> float:
        """Device write amplification: (flush + compaction bytes written)
        over user bytes — the per-shard spread the scaling report shows
        (VAT's cost-model lens: WA variance is what makes shard-count
        curves interpretable)."""
        s = self.db.stats
        if s.user_write_bytes == 0:
            return 0.0
        return ((s.flush_bytes_written + s.compaction_bytes_written)
                / s.user_write_bytes)

    def report(self) -> dict:
        """Plain-data per-shard summary (picklable: crosses worker
        processes inside RunResult.extra)."""
        wc = self.db.write_controller
        doc = {
            "sid": self.sid,
            "write_ops": self.write_ops,
            "read_ops": self.read_ops,
            "redirected_writes": self.db.controller.redirected_writes,
            "rollbacks": self.db.rollback_manager.rollback_count,
            "stall_events": wc.stall_events,
            "slowdown_events": wc.slowdown_events,
            "total_stall_time": wc.total_stall_time,
            "write_amplification": self.write_amplification(),
            "resil_state": self.resil_state,
            "write_latency": (self.write_hist.summary()
                              if self.write_hist.total_count else None),
            "read_latency": (self.read_hist.summary()
                             if self.read_hist.total_count else None),
        }
        return doc


class _ClusterStats:
    """DbStats facade: attaching a collector's histograms tees them onto
    every shard's stats without losing the per-shard view."""

    def __init__(self, cluster: "ClusterDb"):
        self._cluster = cluster
        self._write_latencies = None
        self._read_latencies = None

    @property
    def write_latencies(self):
        return self._write_latencies

    @write_latencies.setter
    def write_latencies(self, hist) -> None:
        self._write_latencies = hist
        for sh in self._cluster.shards:
            sh.db.stats.write_latencies = _TeeHistogram(sh.write_hist, hist)

    @property
    def read_latencies(self):
        return self._read_latencies

    @read_latencies.setter
    def read_latencies(self, hist) -> None:
        self._read_latencies = hist
        for sh in self._cluster.shards:
            sh.db.stats.read_latencies = _TeeHistogram(sh.read_hist, hist)

    def __getattr__(self, name):
        # Cumulative counters sum across the fleet.
        total = 0
        for sh in self._cluster.shards:
            total += getattr(sh.db.stats, name)
        return total


class _ClusterWriteController:
    """Aggregate view over the shards' write controllers.

    RunCollector reads exactly these fields; for a 1-shard cluster every
    value equals the underlying controller's, keeping the golden
    trajectory pinned.
    """

    def __init__(self, cluster: "ClusterDb"):
        self._cluster = cluster

    def _wcs(self):
        return [sh.db.write_controller for sh in self._cluster.shards]

    def finalize(self) -> None:
        for wc in self._wcs():
            wc.finalize()

    @property
    def stall_intervals(self) -> list:
        merged = list(heapq.merge(*(wc.stall_intervals for wc in self._wcs())))
        return merged

    @property
    def stall_events(self) -> int:
        return sum(wc.stall_events for wc in self._wcs())

    @property
    def slowdown_events(self) -> int:
        return sum(wc.slowdown_events for wc in self._wcs())

    @property
    def total_stall_time(self) -> float:
        return sum(wc.total_stall_time for wc in self._wcs())

    @property
    def total_delayed_time(self) -> float:
        return sum(wc.total_delayed_time for wc in self._wcs())

    def breakdown(self) -> dict:
        out: dict[str, dict] = {}
        for wc in self._wcs():
            for section, counters in wc.breakdown().items():
                acc = out.setdefault(section, {})
                for reason, v in counters.items():
                    acc[reason] = acc.get(reason, 0) + v
        return out


class _SummedLedger:
    """Read-only sum of per-shard TrafficLedgers, bucket-aligned.

    All shards share one ledger bucket size (they come from the same
    profile), so summing by bucket index is exact."""

    def __init__(self, ledgers: list):
        self._ledgers = ledgers

    @property
    def total_bytes(self) -> float:
        return sum(l.total_bytes for l in self._ledgers)

    def series(self, t_end: Optional[float] = None):
        times: list = []
        values: list = []
        for led in self._ledgers:
            t, v = led.series(t_end=t_end)
            if len(t) > len(times):
                values.extend(0.0 for _ in range(len(t) - len(values)))
                times = t
            for i, x in enumerate(v):
                values[i] += x
        return times, values

    def bytes_in(self, t0: float, t1: float) -> float:
        return sum(l.bytes_in(t0, t1) for l in self._ledgers)


class _PcieView:
    def __init__(self, ledger: _SummedLedger):
        self.ledger = ledger


class ClusterFabric:
    """The ``ssd``-shaped object a multi-shard run hands the harness:
    fleet-total PCIe traffic (per-shard links summed per bucket)."""

    def __init__(self, shards: list):
        self.shards = shards
        self.pcie = _PcieView(_SummedLedger(
            [sh.ssd.pcie.ledger for sh in shards]))


class ClusterCpuView:
    """The ``cpu``-shaped harness object: mean utilisation across the
    shard hosts (each shard has its own host CPU)."""

    def __init__(self, shards: list):
        self.shards = shards
        self.cores = sum(sh.cpu.cores for sh in shards)

    def utilization(self, t0: float, t1: float) -> float:
        cpus = [sh.cpu for sh in self.shards]
        return sum(c.utilization(t0, t1) for c in cpus) / len(cpus)


class ClusterDb:
    """The sharded serving layer: one facade over N KVACCEL shards."""

    def __init__(self, env: Environment, shards: list, router: Router,
                 name: str = "cluster",
                 replication: Optional[ReplicationConfig] = None,
                 backups: Optional[list] = None):
        """``shards`` is ``[(KvaccelDb, ssd, cpu), ...]`` in shard-id
        order; ``router.shards`` must match its length.

        ``replication`` + ``backups`` turn every slot into a replica
        group: ``backups[sid]`` is that shard's standby stack list,
        ``[(KvaccelDb, ssd, cpu), ...]`` — same shape as a shard entry,
        ``replication.backups`` entries each.
        """
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if router.shards != len(shards):
            raise ValueError(
                f"router is for {router.shards} shards, got {len(shards)}")
        self.env = env
        self.name = name
        self.router = router
        self.shards = [ClusterShard(i, db, ssd, cpu)
                       for i, (db, ssd, cpu) in enumerate(shards)]
        self._single = self.shards[0] if len(self.shards) == 1 else None
        self.stats = _ClusterStats(self)
        self.write_controller = _ClusterWriteController(self)
        # Replica groups (empty dict = replication off; the data-plane
        # guard tests exactly this).
        self.groups: dict[int, ReplicaGroup] = {}
        self._retry: Optional[RetryExecutor] = None
        if replication is not None:
            if backups is None or len(backups) != len(self.shards):
                raise ValueError(
                    "replication needs one backup-stack list per shard")
            for sh, stack_list in zip(self.shards, backups):
                if len(stack_list) != replication.backups:
                    raise ValueError(
                        f"shard {sh.sid}: expected {replication.backups} "
                        f"backup stacks, got {len(stack_list)}")
                reps = [BackupReplica(db, ssd, cpu)
                        for db, ssd, cpu in stack_list]
                self.groups[sh.sid] = ReplicaGroup(
                    env, sh, reps, replication,
                    rebind=self._rebind_shard_stats)
            self._retry = RetryExecutor(env, replication.retry,
                                        name=f"{name}.failover")
        # Live resharding state.
        self._migration: Optional[Migration] = None
        self.rebalances = 0
        self._moved_total = 0
        self._reshard_tel = False
        self.health = None
        self._register_telemetry()

    @property
    def _plain(self) -> bool:
        """True on the original, unreplicated, non-migrating fast path."""
        return not self.groups and self._migration is None

    # -- data plane ---------------------------------------------------------
    def put(self, key: bytes, value) -> Generator:
        if self._plain:
            sh = self.shards[self.router.route(key)]
            sh.write_ops += 1
            self._tel_add(sh, "write_ops", 1)
            yield from sh.db.put(key, value)
            return
        yield from self._write_one(key, value)

    def delete(self, key: bytes) -> Generator:
        if self._plain:
            sh = self.shards[self.router.route(key)]
            sh.write_ops += 1
            self._tel_add(sh, "write_ops", 1)
            yield from sh.db.delete(key)
            return
        yield from self._write_one(key, None)

    def get(self, key: bytes) -> Generator:
        if self._plain:
            sh = self.shards[self.router.route(key)]
            sh.read_ops += 1
            self._tel_add(sh, "read_ops", 1)
            value = yield from sh.db.get(key)
            return value
        value = yield from self._read_one(key)
        return value

    # -- replicated / migrating data plane ----------------------------------
    def _shard_write(self, sid: int, items) -> Generator:
        """Apply ``[(key, value|None), ...]`` to shard ``sid`` as
        individual ops, through the failover admission gate; ack to the
        replica group only once every item has been applied."""
        grp = self.groups.get(sid)

        def attempt() -> Generator:
            if grp is not None and not grp.accepting():
                raise FailoverInProgress(sid, grp.epoch)
            sh = self.shards[sid]          # re-read: promotion swaps .db
            for k, v in items:
                if v is None:
                    yield from sh.db.delete(k)
                else:
                    yield from sh.db.put(k, v)
            if grp is not None:
                grp.on_ack(items)

        if self._retry is not None:
            yield from self._retry.call(attempt, site=f"cluster.shard{sid}")
        else:
            yield from attempt()

    def _batch_write(self, sid: int, sub: list) -> Generator:
        """Group-commit ``sub`` on shard ``sid`` (the replicated analogue
        of the fast path's ``sh.db.put_batch``)."""
        grp = self.groups.get(sid)

        def attempt() -> Generator:
            if grp is not None and not grp.accepting():
                raise FailoverInProgress(sid, grp.epoch)
            yield from self.shards[sid].db.put_batch(sub)
            if grp is not None:
                grp.on_ack(sub)

        if self._retry is not None:
            yield from self._retry.call(attempt, site=f"cluster.shard{sid}")
        else:
            yield from attempt()

    def _shard_read(self, sid: int, key: bytes) -> Generator:
        grp = self.groups.get(sid)

        def attempt() -> Generator:
            if grp is not None and not grp.accepting():
                raise FailoverInProgress(sid, grp.epoch)
            value = yield from self.shards[sid].db.get(key)
            return value

        if self._retry is not None:
            value = yield from self._retry.call(
                attempt, site=f"cluster.shard{sid}")
        else:
            value = yield from attempt()
        return value

    def _await_installs(self, keys) -> Generator:
        """Block while any of ``keys`` sits behind the migration's
        per-key install barrier (see :mod:`repro.cluster.reshard`)."""
        mig = self._migration
        if mig is None:
            return
        for k in list(keys):
            while (self._migration is mig and not mig.done
                   and k in mig.installing):
                yield self.env.timeout(5e-4)

    def _write_one(self, key: bytes, value) -> Generator:
        mig = self._migration
        if mig is not None:
            mig.note_write(key, value)
            yield from self._await_installs((key,))
        sid = self.router.route(key)
        sh = self.shards[sid]
        sh.write_ops += 1
        self._tel_add(sh, "write_ops", 1)
        yield from self._shard_write(sid, ((key, value),))

    def _read_one(self, key: bytes) -> Generator:
        sid = self.router.route(key)
        sh = self.shards[sid]
        sh.read_ops += 1
        self._tel_add(sh, "read_ops", 1)
        value = yield from self._shard_read(sid, key)
        mig = self._migration
        if value is None and mig is not None and mig.forward_read(key):
            # Dual-read: the copy may not have landed on the new owner
            # yet — fall back to the pre-rebalance owner.
            touch(self.env, "reshard.forward.read")
            old_sid = mig.old_router.route(key)
            if old_sid != sid:
                osh = self.shards[old_sid]
                osh.read_ops += 1
                self._tel_add(osh, "read_ops", 1)
                value = yield from self._shard_read(old_sid, key)
        return value

    def put_batch(self, pairs: list) -> Generator:
        """Group-commit a batch across its owning shards.

        Single-shard clusters take the transparent pass-through (identical
        event sequence to the plain system).  Multi-shard batches fan out
        as one named process per owning shard — spawned in ascending shard
        id order — and join on AllOf, so sub-batches are serviced
        concurrently in simulated time and the facade returns when the
        slowest shard acks (the cluster-level group-commit latency).
        """
        if self._plain:
            single = self._single
            if single is not None:
                single.write_ops += len(pairs)
                self._tel_add(single, "write_ops", len(pairs))
                yield from single.db.put_batch(pairs)
                return
            parts = self.router.split_batch(pairs)
            if len(parts) == 1:
                # One owning shard: still isolate the work in a shard-named
                # process so fault scoping and interleaving match the general
                # fan-out path.
                sid, sub = parts[0]
                sh = self.shards[sid]
                sh.write_ops += len(sub)
                self._tel_add(sh, "write_ops", len(sub))
                gen = sh.db.put_batch(sub)
                if self.env.lineage is not None:
                    gen = self._shard_op(sid, gen, "put_batch", len(sub))
                yield self.env.process(
                    gen, name=shard_process_name(sid, "put_batch"))
                return
            procs = []
            for sid, sub in parts:           # ascending sid: spec order
                sh = self.shards[sid]
                sh.write_ops += len(sub)
                self._tel_add(sh, "write_ops", len(sub))
                gen = sh.db.put_batch(sub)
                if self.env.lineage is not None:
                    gen = self._shard_op(sid, gen, "put_batch", len(sub))
                procs.append(self.env.process(
                    gen, name=shard_process_name(sid, "put_batch")))
            yield self.env.all_of(procs)
            return
        mig = self._migration
        if mig is not None:
            for k, v in pairs:
                mig.note_write(k, v)
            yield from self._await_installs(k for k, _ in pairs)
        single = self._single
        if single is not None:
            single.write_ops += len(pairs)
            self._tel_add(single, "write_ops", len(pairs))
            yield from self._batch_write(0, pairs)
            return
        parts = self.router.split_batch(pairs)
        if len(parts) == 1:
            sid, sub = parts[0]
            sh = self.shards[sid]
            sh.write_ops += len(sub)
            self._tel_add(sh, "write_ops", len(sub))
            gen = self._batch_write(sid, sub)
            if self.env.lineage is not None:
                gen = self._shard_op(sid, gen, "put_batch", len(sub))
            yield self.env.process(gen,
                                   name=shard_process_name(sid, "put_batch"))
            return
        procs = []
        for sid, sub in parts:               # ascending sid: spec order
            sh = self.shards[sid]
            sh.write_ops += len(sub)
            self._tel_add(sh, "write_ops", len(sub))
            gen = self._batch_write(sid, sub)
            if self.env.lineage is not None:
                gen = self._shard_op(sid, gen, "put_batch", len(sub))
            procs.append(self.env.process(
                gen, name=shard_process_name(sid, "put_batch")))
        yield self.env.all_of(procs)

    def _shard_op(self, sid: int, gen: Generator, kind: str,
                  count: int) -> Generator:
        """Per-shard lineage: the spawned shard process records its own op
        under scope ``cluster.shard{sid}`` (the channel-naming convention),
        so the decomposition can be conditioned per shard.  Only wrapped
        while a profiler is installed — profiler-off runs spawn the exact
        original generator, preserving the pinned trajectories."""
        lp = self.env.lineage
        ctx = (lp.op_begin(kind, count=count, scope=f"cluster.shard{sid}")
               if lp is not None else None)
        try:
            result = yield from gen
        finally:
            if lp is not None:
                lp.op_end(ctx)
        return result

    def scan(self, start_key: bytes, count: int) -> Generator:
        """Cluster range query: per-shard scans merged in key order.

        With a range router only shards whose range can intersect
        ``[start_key, ...)`` are visited; a hash router scatters keys, so
        every shard is.  Shard scans run as concurrent named processes
        (ascending sid) and the merge is by key — each key lives on
        exactly one shard, so the merged stream has no duplicates.
        """
        if self._plain:
            single = self._single
            if single is not None:
                single.read_ops += 1
                self._tel_add(single, "read_ops", 1)
                out = yield from single.db.scan(start_key, count)
                return out
            start = int.from_bytes(start_key, "big")
            targets = []
            for sh in self.shards:
                ranges = getattr(self.router, "ranges", None)
                if ranges is not None:
                    lo, hi = self.router.ranges()[sh.sid]
                    last = sh.sid == len(self.shards) - 1
                    if not last and hi <= start:
                        continue        # entirely below the scan start
                targets.append(sh)
            lineage_on = self.env.lineage is not None
            procs = [self.env.process(
                (self._shard_op(sh.sid, sh.db.scan(start_key, count),
                                "scan", count or 0)
                 if lineage_on else sh.db.scan(start_key, count)),
                name=shard_process_name(sh.sid, "scan"))
                     for sh in targets]
            for sh in targets:
                sh.read_ops += 1
                self._tel_add(sh, "read_ops", 1)
            results = yield self.env.all_of(procs)
            rows = heapq.merge(*(results[p] for p in procs))
            return list(rows)[:count] if count is not None else list(rows)
        if self._retry is not None:
            out = yield from self._retry.call(
                lambda: self._scan_once(start_key, count),
                site="cluster.scan")
        else:
            out = yield from self._scan_once(start_key, count)
        return out

    def _scan_once(self, start_key: bytes, count: int) -> Generator:
        """One scan attempt on the replicated/migrating path: admission-
        gated on every targeted replica group, and — during a migration —
        merged with an ownership-preferring dedupe (a moved key may
        transiently exist on both its old and new shard)."""
        for sid, grp in self.groups.items():
            if not grp.accepting():
                raise FailoverInProgress(sid, grp.epoch)
        single = self._single
        if single is not None:
            single.read_ops += 1
            self._tel_add(single, "read_ops", 1)
            out = yield from single.db.scan(start_key, count)
            return out
        start = int.from_bytes(start_key, "big")
        targets = []
        for sh in self.shards:
            ranges = getattr(self.router, "ranges", None)
            if ranges is not None:
                lo, hi = self.router.ranges()[sh.sid]
                last = sh.sid == len(self.shards) - 1
                if not last and hi <= start:
                    continue
            targets.append(sh)
        lineage_on = self.env.lineage is not None
        procs = [self.env.process(
            (self._shard_op(sh.sid, sh.db.scan(start_key, count),
                            "scan", count or 0)
             if lineage_on else sh.db.scan(start_key, count)),
            name=shard_process_name(sh.sid, "scan"))
                 for sh in targets]
        for sh in targets:
            sh.read_ops += 1
            self._tel_add(sh, "read_ops", 1)
        results = yield self.env.all_of(procs)
        mig = self._migration
        if mig is None:
            rows = heapq.merge(*(results[p] for p in procs))
            return list(rows)[:count] if count is not None else list(rows)
        best: dict = {}
        for sh, p in zip(targets, procs):
            for k, v in results[p]:
                owner = self.router.route(k)
                if k in mig.fresh and sh.sid != owner:
                    continue        # stale pre-rebalance copy of a fresh key
                if k not in best or sh.sid == owner:
                    best[k] = v
        rows = sorted(best.items())
        return rows[:count] if count is not None else rows

    # -- live resharding ------------------------------------------------------
    def rebalance(self, seed: Optional[int] = None,
                  router: Optional[Router] = None,
                  config: Optional[RebalanceConfig] = None):
        """Atomically repoint the cluster at a new placement and migrate
        the moved keys shard-to-shard in the background.

        With no arguments this is a hash-router seed bump (old seed + 1).
        Writes route by the new placement from this call on; reads
        dual-read (new owner, then old owner on a miss) until the
        returned migration process finishes.
        """
        if self._migration is not None:
            raise RuntimeError("a rebalance is already in progress")
        if router is None:
            if not isinstance(self.router, HashRouter):
                raise ValueError(
                    "seed-bump rebalance needs a HashRouter; pass an "
                    "explicit router= for other policies")
            if seed is None:
                seed = self.router.seed + 1
            router = HashRouter(self.router.shards, seed=seed)
        if router.shards != len(self.shards):
            raise ValueError("rebalance cannot change the shard count")
        self._ensure_reshard_telemetry()
        mig = Migration(self.env, self.router, router, config)
        self._migration = mig
        self.router = router            # the atomic write cut-over
        self.rebalances += 1
        touch(self.env, "reshard.start")
        return self.env.process(self._migrate(mig), name="cluster.reshard")

    def _migrate(self, mig: Migration) -> Generator:
        """Walk every shard, copy the keys whose owner changed to their
        new shard, and tombstone the old copies.  Copies go through the
        same admission-gated write path as clients (so they survive a
        concurrent failover and replicate to backups); keys freshly
        written after the cut-over are never overwritten — if a fresh
        write races a copy batch, the fresh value is re-applied after."""
        cfg = mig.config
        try:
            for src in self.shards:
                start = b"\x00"
                while True:
                    rows = yield from src.db.scan(start, cfg.scan_chunk)
                    if not rows:
                        break
                    mig.scanned_keys += len(rows)
                    moved = [(k, v) for k, v in rows
                             if self.router.route(k) != src.sid]
                    for i in range(0, len(moved), cfg.batch):
                        batch = moved[i:i + cfg.batch]
                        yield from fault_point(self.env,
                                               "reshard.migrate.batch")
                        # Group + raise the install barrier in one
                        # synchronous block: a client write can only
                        # interleave at a yield, so every key here is
                        # either fresh already (skipped) or barred from
                        # client writes until its copy lands.
                        copies: dict[int, list] = {}
                        for k, v in batch:
                            if k not in mig.fresh:
                                copies.setdefault(
                                    self.router.route(k), []).append((k, v))
                                mig.installing.add(k)
                        try:
                            for dst in sorted(copies):
                                yield from self._shard_write(
                                    dst, copies[dst])
                        finally:
                            for subs in copies.values():
                                for k, _v in subs:
                                    mig.installing.discard(k)
                        yield from self._shard_write(
                            src.sid, [(k, None) for k, _ in batch])
                        mig.moved_keys += len(batch)
                    if len(rows) < cfg.scan_chunk:
                        break
                    start = rows[-1][0] + b"\x00"
        finally:
            mig.done = True
            mig.finished_at = self.env.now
            self._moved_total += mig.moved_keys
            self._migration = None
            touch(self.env, "reshard.complete")

    # -- replication hooks ----------------------------------------------------
    def _rebind_shard_stats(self, sh: ClusterShard) -> None:
        """Post-promotion: point the slot's latency views (and any
        collector histogram teed on top) at the promoted stack."""
        wl = self.stats._write_latencies
        rl = self.stats._read_latencies
        sh.db.stats.write_latencies = (
            _TeeHistogram(sh.write_hist, wl) if wl is not None
            else sh.write_hist)
        sh.db.stats.read_latencies = (
            _TeeHistogram(sh.read_hist, rl) if rl is not None
            else sh.read_hist)

    def drain_replication(self) -> Generator:
        """Apply every acked record to every backup now (test/verify
        hook; ascending shard id for determinism)."""
        for sid in sorted(self.groups):
            yield from self.groups[sid].drain()

    # -- lifecycle -----------------------------------------------------------
    def wait_for_quiesce(self, poll: float = 0.01) -> Generator:
        while self._migration is not None:
            yield self.env.timeout(poll)
        for sid in sorted(self.groups):
            while self.groups[sid].state != ACTIVE:
                yield self.env.timeout(poll)
        for sh in self.shards:
            yield from sh.db.wait_for_quiesce(poll)

    def final_rollback(self) -> Generator:
        for sh in self.shards:
            yield from sh.db.final_rollback()

    def close(self) -> None:
        for grp in self.groups.values():
            grp.stop()
        for sh in self.shards:
            sh.db.close()
        for grp in self.groups.values():
            for b in grp.backups:
                b.db.close()
            for db, _ssd, _cpu in grp.retired:
                db.close()

    # -- introspection --------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def degraded_shards(self) -> int:
        return sum(1 for sh in self.shards if sh.degraded)

    def hot_shard(self, factor: float = 2.0) -> int:
        """Index of the shard whose cumulative op share exceeds ``factor``
        times the fleet mean, or -1 when the fleet is balanced."""
        totals = [sh.write_ops + sh.read_ops for sh in self.shards]
        fleet = sum(totals)
        if fleet == 0 or len(totals) < 2:
            return -1
        mean = fleet / len(totals)
        hottest = max(range(len(totals)), key=totals.__getitem__)
        return hottest if totals[hottest] > factor * mean else -1

    def aggregate_latency(self, which: str = "write") -> Optional[dict]:
        """Fleet-wide latency summary: per-shard histograms merged."""
        agg = LatencyHistogram()
        for sh in self.shards:
            agg.merge(sh.write_hist if which == "write" else sh.read_hist)
        return agg.summary() if agg.total_count else None

    def snapshot(self) -> dict:
        return {
            "shards": self.shard_count,
            "router": type(self.router).__name__,
            "degraded_shards": self.degraded_shards(),
            "hot_shard": self.hot_shard(),
            "per_shard": [sh.db.snapshot() for sh in self.shards],
        }

    def cluster_report(self) -> dict:
        """The scaling-report payload: per-shard rows + fleet aggregates."""
        per_shard = [sh.report() for sh in self.shards]
        was = [row["write_amplification"] for row in per_shard]
        doc = {
            "shards": self.shard_count,
            "router": type(self.router).__name__,
            "per_shard": per_shard,
            "aggregate_write_latency": self.aggregate_latency("write"),
            "aggregate_read_latency": self.aggregate_latency("read"),
            "degraded_shards": self.degraded_shards(),
            "hot_shard": self.hot_shard(),
            "write_amplification": {
                "min": min(was) if was else 0.0,
                "max": max(was) if was else 0.0,
                "mean": sum(was) / len(was) if was else 0.0,
            },
        }
        # Replication / resharding rows only when the features are in
        # play, so unreplicated report payloads stay byte-stable.
        if self.groups:
            doc["replication"] = [self.groups[sid].report()
                                  for sid in sorted(self.groups)]
        if self.rebalances:
            doc["rebalances"] = self.rebalances
            doc["moved_keys"] = self._moved_total
        return doc

    # -- telemetry -------------------------------------------------------------
    def _tel_add(self, shard: ClusterShard, which: str, n: int) -> None:
        tel = self.env.telemetry
        if tel is not None:
            tel.add(f"cluster.{shard.name}.{which}", n)

    def _register_telemetry(self) -> None:
        """Per-shard channels on the shared hub (no-op when disabled).

        The single-instance publishers (``lsm.*``, ``wc.*``, ``pcie.*``...)
        use fixed channel names, so in a multi-shard world their *rate*
        channels become fleet aggregates and their *gauge* channels stay
        bound to whichever shard registered first (shard 0).  The
        ``cluster.*`` namespace is the per-shard view: facade-fed op
        rates plus gauges/derivs reading each shard's objects directly.
        """
        tel = self.env.telemetry
        if tel is None:
            return
        from ..resil.degrade import STATE_GAUGE
        for sh in self.shards:
            tel.rate(f"cluster.{sh.name}.write_ops")
            tel.rate(f"cluster.{sh.name}.read_ops")
            # All gauges/derivs read through ``sh`` so they follow the
            # slot across a failover promotion (the slot's .db/.ssd swap).
            tel.deriv(f"cluster.{sh.name}.stall_time",
                      lambda sh=sh: sh.db.write_controller.total_stall_time)
            tel.gauge(f"cluster.{sh.name}.devlsm_bytes",
                      lambda sh=sh: sh.ssd.devlsm.total_bytes)
            tel.gauge(f"cluster.{sh.name}.resil_state",
                      lambda sh=sh: STATE_GAUGE[sh.resil_state])
            if sh.db.resil is not None:
                # Per-shard retry pressure: both device interfaces'
                # executors, so a storm on either path is attributed to
                # its shard (feeds retry_storm.shard{k}).
                tel.deriv(f"cluster.{sh.name}.retries",
                          lambda sh=sh: (sh.ssd.kv.retry.stats.retries
                                         + sh.ssd.block.retry.stats.retries))
        tel.gauge("cluster.degraded_shards",
                  lambda: float(self.degraded_shards()))
        tel.gauge("cluster.hot_shard", lambda: float(self.hot_shard()))
        for sid in sorted(self.groups):
            grp = self.groups[sid]
            tel.rate(f"cluster.shard{sid}.failovers")
            tel.gauge(f"cluster.shard{sid}.repl_lag",
                      lambda g=grp: float(g.replication_lag()))
            tel.gauge(f"cluster.shard{sid}.hb_misses",
                      lambda g=grp: float(g.misses))
            tel.gauge(f"cluster.shard{sid}.failover_duration",
                      lambda g=grp: g.last_failover_duration)
        # Per-shard health/SLO rules auto-instantiate with the cluster
        # (ROADMAP follow-up) — tests and the bench runner no longer wire
        # them by hand.  Rule evaluation is a pure-Python sample callback,
        # so this never perturbs a trajectory.
        if len(self.shards) > 1 or self.groups:
            from ..obs.rules import HealthMonitor, cluster_shard_rules
            self.health = HealthMonitor(
                tel, cluster_shard_rules(len(self.shards),
                                         period=tel.period))

    def _ensure_reshard_telemetry(self) -> None:
        """Register the rebalance channels on first use — a run that
        never reshards keeps its telemetry channel set (and anything
        pinned on it) unchanged."""
        if self._reshard_tel:
            return
        self._reshard_tel = True
        tel = self.env.telemetry
        if tel is None:
            return
        tel.gauge("cluster.reshard.active",
                  lambda: 0.0 if self._migration is None else 1.0)
        tel.gauge("cluster.reshard.moved",
                  lambda: float(self._moved_total
                                + (self._migration.moved_keys
                                   if self._migration is not None else 0)))
