"""Shard-scoped fault injection: aim a registry plan at one shard.

The :class:`~repro.faults.registry.FaultRegistry` is a per-Environment
singleton and fault sites carry fixed names (``kv.put.submit`` fires for
*every* shard's device), so in a cluster an armed plan would storm the
whole fleet.  :class:`ShardScopedPlan` restores isolation: it wraps an
inner plan and consults it only when the site is reached by a process
working on behalf of the target shard — identified by the
``shard<N>.``-prefixed process names the cluster facade and the client
population give every piece of shard work (see
:func:`~repro.cluster.cluster.shard_process_name`), and which each
shard's own KVACCEL daemons inherit from their ``shard<N>``-named db.

Scoping is by the *active process* at the moment the site is hit; hits
from other shards do not advance the inner plan's occurrence-dependent
state (the wrapper keeps its own per-shard occurrence count), so
``NthOccurrencePlan(3)`` scoped to shard 2 means "the 3rd time *shard 2*
reaches this site".  An optional ``op`` narrows the scope further, to
one kind of shard work (``op="wl"`` matches ``shard2.wl*`` but not
``shard2.put_batch`` — or the shard's replication daemons, which is what
keeps a primary-kill fault from also crashing the replica group's link).

Cluster chaos seeding matches the single-node fault harness:
:func:`chaos_seed` resolves ``REPRO_FAULT_SEED`` from the environment
first, so any cluster chaos run is pin-able without code changes.
"""

from __future__ import annotations

import os

from ..faults.plan import FaultPlan
from ..faults.registry import DEFAULT_SEED
from ..sim import Environment

__all__ = ["ShardScopedPlan", "arm_shard", "chaos_seed"]


def chaos_seed(default: int = None) -> int:
    """The seed cluster chaos scenarios run under.

    Resolution order mirrors the single-node harness: an explicit
    ``REPRO_FAULT_SEED`` (any int literal Python accepts, e.g. ``0x2A``)
    wins, then the caller's ``default``, then the registry's
    ``DEFAULT_SEED`` — so exported reproduction recipes pin cluster runs
    exactly like single-node ones.
    """
    raw = os.environ.get("REPRO_FAULT_SEED")
    if raw:
        try:
            return int(raw, 0)
        except ValueError:
            pass
    return DEFAULT_SEED if default is None else default


class ShardScopedPlan(FaultPlan):
    """Delegate to ``inner`` only for hits attributable to shard ``sid``."""

    def __init__(self, env: Environment, sid: int, inner: FaultPlan,
                 op: str = ""):
        self.env = env
        self.prefix = f"shard{sid}.{op}"
        self.inner = inner
        self.scoped_occurrences = 0
        self.foreign_hits = 0

    def _in_scope(self) -> bool:
        proc = self.env.active_process
        name = getattr(proc, "name", None) if proc is not None else None
        return bool(name) and name.startswith(self.prefix)

    def should_fire(self, occurrence: int, now: float) -> bool:
        if not self._in_scope():
            self.foreign_hits += 1
            return False
        self.scoped_occurrences += 1
        return self.inner.should_fire(self.scoped_occurrences, now)

    def __repr__(self) -> str:
        return (f"ShardScopedPlan({self.prefix!r}, {self.inner!r}, "
                f"scoped={self.scoped_occurrences})")


def arm_shard(registry, env: Environment, sid: int, site: str,
              plan: FaultPlan, action, op: str = "", **kw):
    """Arm ``site`` so ``plan``/``action`` apply only to shard ``sid``
    (optionally only its ``op``-named processes).

    Returns the :class:`ShardScopedPlan` wrapper (its ``foreign_hits``
    counter is the cheap way to assert the blast radius stayed put).
    """
    scoped = ShardScopedPlan(env, sid, plan, op=op)
    registry.arm(site, scoped, action, **kw)
    return scoped
