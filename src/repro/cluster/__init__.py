"""repro.cluster: a sharded multi-tenant serving layer over KVACCEL.

N independent KVACCEL shard instances in one DES world, a deterministic
key-space router in front of them, and an open-loop client population
driving skewed multi-tenant traffic — the substrate every cluster-level
question (shard-count scaling, hot shards, tenant isolation under
partial failure) is asked on.  See MODEL.md's "Cluster clock" note for
the determinism contract.
"""

from .chaos import ShardScopedPlan, arm_shard
from .cluster import (
    ClusterCpuView,
    ClusterDb,
    ClusterFabric,
    ClusterShard,
    shard_process_name,
)
from .population import (
    KEY_SKEWS,
    TRAFFIC_SHAPES,
    ClientPopulation,
    TenantSpec,
    TokenBucket,
)
from .router import (
    ROUTER_POLICIES,
    HashRouter,
    RangeRouter,
    Router,
    make_router,
)

__all__ = [
    "ClusterDb",
    "ClusterShard",
    "ClusterFabric",
    "ClusterCpuView",
    "shard_process_name",
    "Router",
    "HashRouter",
    "RangeRouter",
    "make_router",
    "ROUTER_POLICIES",
    "ClientPopulation",
    "TenantSpec",
    "TokenBucket",
    "TRAFFIC_SHAPES",
    "KEY_SKEWS",
    "ShardScopedPlan",
    "arm_shard",
]
