"""repro.cluster: a sharded multi-tenant serving layer over KVACCEL.

N independent KVACCEL shard instances in one DES world, a deterministic
key-space router in front of them, and an open-loop client population
driving skewed multi-tenant traffic — the substrate every cluster-level
question (shard-count scaling, hot shards, tenant isolation under
partial failure) is asked on.  See MODEL.md's "Cluster clock" note for
the determinism contract.
"""

from .chaos import ShardScopedPlan, arm_shard, chaos_seed
from .cluster import (
    ClusterCpuView,
    ClusterDb,
    ClusterFabric,
    ClusterShard,
    shard_process_name,
)
from .replica import (
    INDEX_SHIP,
    REPLAY,
    BackupReplica,
    ReplicaGroup,
    ReplicationConfig,
)
from .reshard import Migration, RebalanceConfig
from .scenario import (
    FailoverReport,
    build_replicated_cluster,
    failover_sweep,
    run_failover_scenario,
)
from .population import (
    KEY_SKEWS,
    TRAFFIC_SHAPES,
    ClientPopulation,
    TenantSpec,
    TokenBucket,
)
from .router import (
    ROUTER_POLICIES,
    HashRouter,
    RangeRouter,
    Router,
    make_router,
)

__all__ = [
    "ClusterDb",
    "ClusterShard",
    "ClusterFabric",
    "ClusterCpuView",
    "shard_process_name",
    "Router",
    "HashRouter",
    "RangeRouter",
    "make_router",
    "ROUTER_POLICIES",
    "ClientPopulation",
    "TenantSpec",
    "TokenBucket",
    "TRAFFIC_SHAPES",
    "KEY_SKEWS",
    "ShardScopedPlan",
    "arm_shard",
    "chaos_seed",
    "ReplicationConfig",
    "ReplicaGroup",
    "BackupReplica",
    "REPLAY",
    "INDEX_SHIP",
    "Migration",
    "RebalanceConfig",
    "build_replicated_cluster",
    "run_failover_scenario",
    "failover_sweep",
    "FailoverReport",
]
