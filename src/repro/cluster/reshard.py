"""Live resharding state: which keys moved, and who answers reads
mid-migration (ISSUE 10 tentpole, rebalance half).

A rebalance is a router swap: the cluster atomically repoints
``self.router`` at a new placement (same policy, bumped seed) and spawns
a migration driver that walks each shard's key range and copies the keys
whose owner changed.  :class:`Migration` is the pure bookkeeping that
makes the window between "writes cut over" and "copy finished" correct:

* **writes** route by the *new* placement immediately (the cut-over is
  atomic at the router swap);
* **reads** go to the new owner first; a miss on a *moved, not-yet-dirty*
  key forwards to the old owner (dual-read), because the copy may not
  have arrived yet;
* ``fresh`` records keys written (or deleted) *after* the cut-over — the
  migration driver must never overwrite those with the old shard's stale
  copy, and reads of them must not forward (a fresh delete would
  otherwise resurrect via the old owner);
* ``installing`` is the per-key install barrier: the keys of the copy
  batch currently being written to its destination shard.  A facade
  write to one of those keys *waits* until the install lands, because
  sequence numbers are allocated inside the destination's write path —
  a client write racing an in-flight install could otherwise commit
  first (earlier sequence) and be shadowed by the stale copy landing
  with a later one.  ``fresh`` alone cannot close that window: it is
  checked when the batch is grouped, strictly before the install's own
  sequence allocation.

All sets here are touched synchronously at routing time (pure Python, no
Environment interaction), so a run with no rebalance — where
``ClusterDb._migration`` stays ``None`` — has a bit-identical trajectory
to a build of the tree without this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from .router import Router

__all__ = ["RebalanceConfig", "Migration"]


@dataclass
class RebalanceConfig:
    """Migration driver knobs."""

    batch: int = 64        # moved keys per shard-to-shard copy batch
    scan_chunk: int = 256  # keys per source-shard discovery scan

    def __post_init__(self) -> None:
        if self.batch < 1 or self.scan_chunk < 1:
            raise ValueError("batch and scan_chunk must be >= 1")


class Migration:
    """One in-flight rebalance: old placement, new placement, and the
    dual-read / fresh-write bookkeeping for the window in between."""

    def __init__(self, env, old_router: Router, new_router: Router,
                 config: RebalanceConfig = None):
        if old_router.shards != new_router.shards:
            raise ValueError("rebalance cannot change the shard count")
        self.env = env
        self.old_router = old_router
        self.new_router = new_router
        self.config = config or RebalanceConfig()
        # Keys written through the facade after the cut-over, mapped to
        # their latest value (None = deleted): the new-owner copy is
        # authoritative, the old shard's value is stale.
        self.fresh: dict = {}
        # Keys mid-install on their destination shard (see module doc).
        self.installing: set = set()
        self.moved_keys = 0
        self.scanned_keys = 0
        self.done = False
        self.started_at = env.now
        self.finished_at = None

    def moved(self, key: bytes) -> bool:
        """Did this key's owner change in the rebalance?"""
        return self.old_router.route(key) != self.new_router.route(key)

    def note_write(self, key: bytes, value=None) -> None:
        """Record a post-cut-over write (``value=None`` for deletes);
        only moved keys matter (an unmoved key's single copy is always
        authoritative)."""
        if self.moved(key):
            self.fresh[key] = value

    def forward_read(self, key: bytes) -> bool:
        """Should a new-owner miss on ``key`` fall back to the old owner?

        Yes only while the copy is still running, for keys that moved and
        have *not* been freshly written — a fresh write (or delete)
        supersedes whatever the old shard holds.
        """
        return (not self.done and self.moved(key)
                and key not in self.fresh)

    def report(self) -> dict:
        return {
            "moved_keys": self.moved_keys,
            "scanned_keys": self.scanned_keys,
            "fresh_writes": len(self.fresh),
            "done": self.done,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
