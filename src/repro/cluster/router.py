"""Deterministic key-space routers: which shard owns a key.

A router is a pure function of ``(key, configuration)`` — it never touches
the :class:`~repro.sim.Environment`, consumes no randomness at routing
time, and is therefore seed-stable across runs *and* across processes
(unlike ``hash()``, which is salted per interpreter).  That purity is what
lets the parallel cell runner fan cluster cells out over workers and still
merge bit-identical results.

Two policies, mirroring the classic serving-layer split:

* :class:`HashRouter` — a 64-bit mix (FNV-1a fold + splitmix64 finalizer)
  of the key bytes and a placement seed, reduced mod N.  Spreads any key
  distribution near-uniformly; the placement seed versions the layout, so
  a reshard is "same router, new seed".
* :class:`RangeRouter` — N contiguous, gap-free, non-overlapping ranges
  over the integer key space (keys here are fixed-width big-endian ints,
  so byte order == integer order).  Keys at or beyond ``key_space`` clamp
  into the last shard: every representable key has exactly one owner.

Both expose ``route`` (one key -> one shard id) and ``split_batch``
(stable partition of a write batch, shard ids ascending, intra-shard
order preserved) — the partition the cluster's spec-ordered merge
contract is built on (MODEL.md).
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["Router", "HashRouter", "RangeRouter", "make_router",
           "ROUTER_POLICIES"]

ROUTER_POLICIES = ("hash", "range")

_M64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(h: int) -> int:
    """splitmix64 finalizer: avalanche so ``% shards`` sees all key bits."""
    h &= _M64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _M64
    return h ^ (h >> 31)


class Router:
    """Interface: a total, deterministic key -> shard-id map."""

    shards: int

    def route(self, key: bytes) -> int:
        """Return the owning shard id in ``[0, shards)`` for ``key``."""
        raise NotImplementedError

    def split_batch(self, pairs: list) -> list:
        """Partition ``[(key, value), ...]`` into ``[(sid, pairs), ...]``.

        Shard ids ascend and each sub-list preserves the batch's original
        relative order, so the split (and the cluster's AllOf merge over
        it) is a pure function of the batch — no dict-iteration or
        completion-order dependence.
        """
        parts: dict[int, list] = {}
        for pair in pairs:
            parts.setdefault(self.route(pair[0]), []).append(pair)
        return [(sid, parts[sid]) for sid in sorted(parts)]


class HashRouter(Router):
    """Seed-stable hash placement over ``shards`` shards."""

    def __init__(self, shards: int, seed: int = 0):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.seed = seed
        self._base = _mix64(_FNV_OFFSET ^ ((seed * _GOLDEN) & _M64))

    def route(self, key: bytes) -> int:
        h = self._base
        for b in key:
            h = ((h ^ b) * _FNV_PRIME) & _M64
        return _mix64(h) % self.shards

    def __repr__(self) -> str:
        return f"HashRouter(shards={self.shards}, seed={self.seed})"


class RangeRouter(Router):
    """Contiguous integer-range placement over ``shards`` shards.

    ``key_space`` is split into N even ranges ``[b_i, b_{i+1})`` with
    ``b_0 = 0``; the last shard additionally owns ``[key_space, inf)`` so
    coverage is total even for keys outside the advertised space.  Ranges
    never overlap and leave no gaps — the property tests pin this.
    """

    def __init__(self, shards: int, key_space: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if key_space < shards:
            raise ValueError("key_space must be >= shards")
        self.shards = shards
        self.key_space = key_space
        # b_i = i * key_space // shards: even to within one key, exact
        # integer arithmetic (no float boundary jitter).
        self.bounds = [i * key_space // shards for i in range(1, shards)]

    def route(self, key: bytes) -> int:
        return bisect_right(self.bounds, int.from_bytes(key, "big"))

    def ranges(self) -> list:
        """``[(lo, hi), ...]`` per shard, half-open, ascending; the final
        ``hi`` is ``key_space`` (the last shard clamps everything above)."""
        edges = [0] + self.bounds + [self.key_space]
        return list(zip(edges[:-1], edges[1:]))

    def __repr__(self) -> str:
        return f"RangeRouter(shards={self.shards}, key_space={self.key_space})"


def make_router(policy: str, shards: int, key_space: int,
                seed: int = 0) -> Router:
    """Build a router by policy name (the profile/CLI surface)."""
    if policy == "hash":
        return HashRouter(shards, seed=seed)
    if policy == "range":
        return RangeRouter(shards, key_space)
    raise ValueError(f"router policy must be one of {ROUTER_POLICIES}")
