"""Replica groups: primary/backup shard replication and deterministic
failover (ISSUE 10 tentpole).

Each cluster shard slot can be backed by a :class:`ReplicaGroup` — the
primary (the slot's live KVACCEL stack) plus K standby stacks, all
share-nothing and all scheduled in the one DES world.  Two replication
modes, modeled after the two designs in the FORTH RDMA index-replication
paper (PAPERS.md):

* ``replay`` — every acknowledged write streams to each backup's WAL as
  an ordinary write, delayed by a configurable sim-time lag window.  Low
  replication bandwidth (just the op payloads), full backup CPU (each op
  re-executes the whole write path).
* ``index-ship`` — acknowledged writes accumulate and ship wholesale at
  ship-period boundaries as one bulk install per boundary (modeling
  flushed-run/SST shipping), paying an amplification factor on the
  replication link in exchange for amortized backup-side work.

Both modes share one durable, time-ordered **group log** of acked
operations (the model of the primary's replicated WAL): the replicator
applies a log prefix to each backup, and the promotion-time catch-up
protocol replays whatever suffix a backup is missing *before* the slot
accepts writes again — which is why an acknowledged write can never be
lost to a primary kill, and what the acked-write-loss oracle in
:mod:`repro.cluster.scenario` asserts across every crash point.

Failure detection is telemetry-shaped: a per-group heartbeat daemon
checks the primary each period (process liveness, the Main-LSM read-only
latch, optionally the DEGRADED resilience state), counts misses on the
``cluster.shard{k}.hb_misses`` gauge, and triggers failover after a
configurable miss threshold.  Failover is deterministic: halt what is
left of the primary, replay the lag window into the first backup, then
atomically repoint the shard slot (``ClusterShard.db/ssd/cpu`` swap) and
return the group to ACTIVE.  While the group is not accepting, the
cluster facade raises the typed
:class:`~repro.resil.errors.FailoverInProgress` and retries through the
``repro.resil`` executor, so callers ride out the window as latency.

Everything here is off-by-default: a ``ClusterDb`` built without a
:class:`ReplicationConfig` constructs none of these objects, and with
replication on, the group only *reads* primary acks (pure-Python log
appends) — backups run on their own CPUs and devices — so the primary's
trajectory is identical to an unreplicated run until a failure happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..device import BandwidthPipe, TrafficLedger
from ..faults.registry import DROP, fault_point, touch
from ..resil import RetryPolicy
from ..sim import Environment

__all__ = [
    "REPLAY",
    "INDEX_SHIP",
    "ACTIVE",
    "FAILING_OVER",
    "ReplicationConfig",
    "BackupReplica",
    "ReplicaGroup",
]

REPLAY = "replay"
INDEX_SHIP = "index-ship"
_MODES = (REPLAY, INDEX_SHIP)

# Replica-group states.  ACTIVE: primary serving, replicator streaming.
# FAILING_OVER: slot rejects requests (FailoverInProgress) while catch-up
# replays the lag window into the backup being promoted.
ACTIVE = "active"
FAILING_OVER = "failover"

MiB = 1 << 20

# Per-record framing overhead on the replication link (sequence number,
# lengths, CRC — same order as the device capsule header).
_RECORD_OVERHEAD = 16


def _record_bytes(key: bytes, value) -> int:
    return _RECORD_OVERHEAD + len(key) + (len(value) if value else 0)


def _default_retry() -> RetryPolicy:
    """The facade's failover retry budget: capped exponential backoff
    sized to span detection (heartbeat misses) plus catch-up, so a
    request issued the instant the primary dies still lands on the
    promoted backup instead of surfacing an error."""
    return RetryPolicy(max_attempts=25, base_delay=1e-3, max_delay=2e-2)


@dataclass
class ReplicationConfig:
    """Knobs for one cluster's replica groups (shared by every shard)."""

    mode: str = REPLAY
    backups: int = 1
    # replay: a record acked at t may apply to backups from t + lag.
    lag: float = 0.005
    # index-ship: records acked before a k*ship_period boundary install in
    # one bulk write after that boundary.
    ship_period: float = 0.02
    # Space amplification of shipping whole immutable runs (duplicate and
    # not-yet-compacted entries ride along) vs streaming just the ops.
    ship_amplification: float = 1.4
    apply_batch: int = 64
    poll: float = 0.002            # replicator idle/retransmit poll
    link_bandwidth: float = 256 * MiB
    heartbeat_period: float = 0.005
    miss_threshold: int = 2
    failover_on_latch: bool = True      # Main-LSM read-only latch
    failover_on_degraded: bool = False  # resil DEGRADED state
    retry: RetryPolicy = field(default_factory=_default_retry)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if self.backups < 1:
            raise ValueError("backups must be >= 1")
        for name in ("lag", "ship_period", "ship_amplification",
                     "poll", "heartbeat_period", "link_bandwidth"):
            if getattr(self, name) <= 0 and name not in ("lag",):
                raise ValueError(f"{name} must be positive")
        if self.lag < 0:
            raise ValueError("lag must be >= 0")
        if self.apply_batch < 1 or self.miss_threshold < 1:
            raise ValueError("apply_batch and miss_threshold must be >= 1")


class BackupReplica:
    """One standby KVACCEL stack plus its position in the group log.

    ``cursor`` is the index of the next log record this backup has *not*
    yet applied; ``len(log) - cursor`` is its replication lag in records.
    """

    def __init__(self, db, ssd, cpu):
        self.db = db
        self.ssd = ssd
        self.cpu = cpu
        self.cursor = 0

    def __repr__(self) -> str:
        return f"BackupReplica({self.db.name}, cursor={self.cursor})"


class ReplicaGroup:
    """Primary + K backups behind one cluster shard slot."""

    def __init__(self, env: Environment, shard, backups: list,
                 config: ReplicationConfig, rebind=None):
        if not backups:
            raise ValueError("a replica group needs at least one backup")
        self.env = env
        self.shard = shard              # the ClusterShard slot (mutated on promote)
        self.sid = shard.sid
        self.config = config
        self.backups = list(backups)
        # The group log: time-ordered acked operations, the model of the
        # primary's durable replicated WAL.  Never truncated mid-run so a
        # promotion can always replay the suffix a backup is missing.
        self.log: list = []             # [(t_acked, key, value|None), ...]
        self.state = ACTIVE
        self.primary_alive = True
        self.epoch = 0                  # promotions completed
        self.misses = 0                 # consecutive missed heartbeats
        self.failovers = 0
        self.last_failover_duration = 0.0
        self.catchup_records = 0        # lag-window size at last promotion
        self.retired: list = []         # demoted (dead) primary stacks
        self._rebind = rebind           # cluster hook: re-attach stats sinks
        self._stopped = False
        self._applying = False          # replicator mid-apply (promotion barrier)
        # The host-to-host replication pipe.  Its per-frame fault site is
        # the dynamic "shard<N>.repl.transfer".
        self.link = BandwidthPipe(
            env, bandwidth=config.link_bandwidth, latency=5e-6,
            ledger=TrafficLedger(), name=f"shard{self.sid}.repl")
        self._repl_proc = env.process(
            self._replicate(), name=f"shard{self.sid}.repl")
        self._hb_proc = env.process(
            self._heartbeat(), name=f"shard{self.sid}.hb")

    def __repr__(self) -> str:
        return (f"ReplicaGroup(shard{self.sid}, {self.config.mode}, "
                f"state={self.state}, backups={len(self.backups)}, "
                f"log={len(self.log)}, epoch={self.epoch})")

    # -- data-plane hooks (pure Python: never touch the Environment) --------
    def on_ack(self, items) -> None:
        """Record acknowledged writes (``value=None`` for deletes)."""
        t = self.env.now
        log = self.log
        for key, value in items:
            log.append((t, key, value))

    def accepting(self) -> bool:
        return self.state == ACTIVE and self.primary_alive

    def replication_lag(self) -> int:
        """Acked records not yet applied to every backup."""
        if not self.backups:
            return 0
        return len(self.log) - min(b.cursor for b in self.backups)

    # -- chaos entry points --------------------------------------------------
    def kill_primary(self, reason: str = "chaos") -> None:
        """The primary host module dies between events: its daemons stop,
        its device survives — the same crash model as the single-node
        fault harness.  Detection and failover follow from the heartbeat
        daemon; callers wanting the in-flight op to die too interrupt the
        issuing process (see the scenario driver)."""
        if not self.primary_alive:
            return
        self.primary_alive = False
        touch(self.env, "repl.primary.kill")
        self._halt_stack(self.shard.db)

    @staticmethod
    def _halt_stack(db) -> None:
        db.detector.stop()
        db.rollback_manager.stop()

    def stop(self) -> None:
        """Let the daemons exit at their next wake (cluster close)."""
        self._stopped = True

    # -- replication ---------------------------------------------------------
    def _due(self) -> int:
        """Log index (exclusive) every backup may apply as of now."""
        cfg = self.config
        now = self.env.now
        log = self.log
        if cfg.mode == REPLAY:
            horizon = now - cfg.lag
        else:
            # Last closed ship boundary; everything acked strictly before
            # it ships in this installment.
            horizon = (now // cfg.ship_period) * cfg.ship_period
        i = len(log)
        while i > 0 and log[i - 1][0] > horizon:
            i -= 1
        return i

    def _until_next_boundary(self) -> float:
        p = self.config.ship_period
        rem = p - (self.env.now % p)
        return rem if rem > 1e-12 else p

    def _replicate(self) -> Generator:
        env = self.env
        cfg = self.config
        while not self._stopped:
            if self.state != ACTIVE or not self.backups:
                yield env.timeout(cfg.poll)
                continue
            due = self._due()
            if min(b.cursor for b in self.backups) >= due:
                yield env.timeout(cfg.poll if cfg.mode == REPLAY
                                  else self._until_next_boundary())
                continue
            action = yield from fault_point(env, "repl.link.send")
            if action is not None and action.kind == DROP:
                # A lost replication frame: the durable log retransmits on
                # the next poll, so a DROP costs lag, never data.
                yield env.timeout(cfg.poll)
                continue
            self._applying = True
            try:
                for b in list(self.backups):
                    if self.state != ACTIVE:
                        break
                    yield from self._apply(b, due)
            finally:
                self._applying = False

    def _apply(self, b: BackupReplica, upto: int,
               catchup: bool = False) -> Generator:
        """Stream ``log[b.cursor:upto]`` into one backup stack."""
        env = self.env
        cfg = self.config
        while b.cursor < upto:
            batch = self.log[b.cursor:min(upto, b.cursor + cfg.apply_batch)]
            nbytes = sum(_record_bytes(k, v) for _t, k, v in batch)
            if cfg.mode == INDEX_SHIP:
                nbytes *= cfg.ship_amplification
            yield from self.link.transfer(nbytes)
            if catchup:
                yield from fault_point(env, "repl.catchup.batch")
            else:
                yield from fault_point(env, "repl.apply")
            if cfg.mode == INDEX_SHIP:
                touch(env, "repl.ship.install")
                from ..types import make_entry
                main = b.db.main
                entries = [make_entry(k, main.next_seq(), v)
                           for _t, k, v in batch]
                yield from main.write_entries(entries)
            else:
                for _t, k, v in batch:
                    if v is None:
                        yield from b.db.delete(k)
                    else:
                        yield from b.db.put(k, v)
            b.cursor += len(batch)

    def drain(self) -> Generator:
        """Apply every logged record to every backup now (test/verify
        hook: quiesces replication regardless of lag windows)."""
        for b in list(self.backups):
            while b.cursor < len(self.log):
                yield from self._apply(b, len(self.log))

    # -- failure detection and failover -------------------------------------
    def _beat_ok(self) -> bool:
        cfg = self.config
        if not self.primary_alive:
            return False
        db = self.shard.db
        if cfg.failover_on_latch and db.main.background_error is not None:
            return False
        if cfg.failover_on_degraded and self.shard.degraded:
            return False
        return True

    def _heartbeat(self) -> Generator:
        env = self.env
        cfg = self.config
        while not self._stopped:
            yield env.timeout(cfg.heartbeat_period)
            if self._stopped or self.state != ACTIVE:
                continue
            if self._beat_ok():
                self.misses = 0
                continue
            self.misses += 1
            touch(env, "repl.heartbeat.miss")
            if self.misses >= cfg.miss_threshold and self.backups:
                self.state = FAILING_OVER
                env.process(self._failover(),
                            name=f"shard{self.sid}.failover")

    def _failover(self) -> Generator:
        env = self.env
        t0 = env.now
        touch(env, "repl.failover.start")
        self.primary_alive = False
        self._halt_stack(self.shard.db)
        # Wait out any in-progress replicator apply so the catch-up below
        # is the only writer advancing the promoted backup's cursor.
        while self._applying:
            yield env.timeout(self.config.poll)
        promoted = self.backups.pop(0)
        yield from fault_point(env, "repl.catchup.start")
        self.catchup_records = len(self.log) - promoted.cursor
        # In-flight facade ops that were already past the admission gate
        # may still ack into the log mid-catch-up; loop until drained.
        while promoted.cursor < len(self.log):
            yield from self._apply(promoted, len(self.log), catchup=True)
        touch(env, "repl.promote")
        sh = self.shard
        self.retired.append((sh.db, sh.ssd, sh.cpu))
        sh.db, sh.ssd, sh.cpu = promoted.db, promoted.ssd, promoted.cpu
        if self._rebind is not None:
            self._rebind(sh)
        self.epoch += 1
        self.failovers += 1
        self.misses = 0
        self.primary_alive = True
        self.last_failover_duration = env.now - t0
        self.state = ACTIVE
        touch(env, "repl.failover.complete")
        tel = env.telemetry
        if tel is not None:
            tel.add(f"cluster.shard{self.sid}.failovers", 1)

    # -- introspection -------------------------------------------------------
    def state_digest(self) -> dict:
        """Journal digest: the replica-role view of this slot (the
        promoted stack keeps digesting under its original backup scope;
        ``epoch`` is what moves on a role change)."""
        return {
            "mode": self.config.mode,
            "state": self.state,
            "alive": self.primary_alive,
            "epoch": self.epoch,
            "log": len(self.log),
            "cursors": [b.cursor for b in self.backups],
            "failovers": self.failovers,
        }

    def report(self) -> dict:
        return {
            "sid": self.sid,
            "mode": self.config.mode,
            "backups": len(self.backups),
            "state": self.state,
            "epoch": self.epoch,
            "failovers": self.failovers,
            "last_failover_duration": self.last_failover_duration,
            "catchup_records": self.catchup_records,
            "replication_lag": self.replication_lag(),
            "log_records": len(self.log),
            "link_bytes": self.link.ledger.total_bytes,
        }
