"""Write Stall Detector (paper Section V-C).

A detached thread that every 0.1 s inspects the three Main-LSM signals
associated with an (imminent) write stall:

1. number of SSTs in L0 (vs the slowdown trigger),
2. memtable state (immutable memtables backed up behind flush),
3. pending compaction bytes (vs the soft limit).

The verdict is latched into ``stall_condition`` for the Controller and the
Rollback Manager to read; the per-check cost (Table VI: 1.37 us) is charged
to the host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lsm.db import DbImpl
from ..sim import Environment, Interrupt

__all__ = ["WriteStallDetector", "DetectorConfig"]


@dataclass
class DetectorConfig:
    period: float = 0.1          # paper: refresh every 0.1 s
    check_cpu_cost: float = 1.37e-6   # Table VI


class WriteStallDetector:
    """Polls the Main-LSM and latches the stall verdict."""

    def __init__(self, env: Environment, db: DbImpl,
                 config: DetectorConfig | None = None):
        self.env = env
        self.db = db
        self.config = config or DetectorConfig()
        self.stall_condition = False
        self.checks = 0
        self.transitions = 0
        self.stall_condition_time = 0.0
        self._last_change = env.now
        self._stopped = False
        self.process = env.process(self._run(), name="kvaccel-detector")
        tel = env.telemetry
        if tel is not None:
            tel.gauge("detector.stall_condition",
                      lambda: 1.0 if self.stall_condition else 0.0)

    def evaluate(self) -> bool:
        """One synchronous check (also used by tests and the controller
        when it needs a fresh verdict at op time)."""
        opt = self.db.options
        imm = self.db.immutable_count
        l0 = self.db.l0_count
        pending = self.db.pending_compaction_bytes
        # Anticipatory: flush backlog at limit while the active memtable is
        # already half full means a memtable stall is imminent.
        memtable_pressure = (
            imm >= max(1, opt.max_write_buffer_number - 1)
            and self.db.memtable_bytes >= opt.write_buffer_size // 2
        )
        l0_pressure = l0 >= opt.level0_slowdown_writes_trigger
        debt_pressure = pending >= opt.soft_pending_compaction_bytes_limit
        return memtable_pressure or l0_pressure or debt_pressure

    def state_digest(self) -> dict:
        """Detector verdict + latch history for journal checkpoints."""
        return {
            "stall_condition": self.stall_condition,
            "checks": self.checks,
            "transitions": self.transitions,
            "stall_condition_time": self.stall_condition_time,
        }

    def stop(self) -> None:
        """Stop the detector thread.

        Interrupts the in-flight poll wait so the event queue drains right
        away — otherwise a closed system keeps ticking (and charging check
        CPU against a closed DB) until the simulation horizon.  Guarded for
        the cases ``interrupt`` cannot handle: a process that never started
        (``_target is None``) or stop() called from the detector itself.
        """
        self._stopped = True
        proc = self.process
        if (proc.is_alive and proc._target is not None
                and proc is not self.env.active_process):
            proc.interrupt("stopped")

    def _latch(self, verdict: bool) -> None:
        if verdict != self.stall_condition:
            self.transitions += 1
            if self.stall_condition:
                self.stall_condition_time += self.env.now - self._last_change
            self._last_change = self.env.now
            tr = self.env.tracer
            if tr is not None:
                tr.instant("detector", "detector.verdict", actor="detector",
                           args={"stall_condition": verdict})
        self.stall_condition = verdict

    def _run(self):
        try:
            while not self._stopped:
                yield self.env.timeout(self.config.period)
                if self._stopped or self.db.closed:
                    return
                self.checks += 1
                self.db.host_cpu.charge(self.config.check_cpu_cost,
                                        tag="detector")
                self._latch(self.evaluate())
        except Interrupt:
            return
