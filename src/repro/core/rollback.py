"""Rollback Manager (paper Section V-E).

Aggregates the two LSMs back into one: when the Detector reports no write
stall and the Dev-LSM holds cached pairs, the manager pulls everything back
with the iterator-based *bulky range scan* (512 KB DMA chunks), merges the
entries into Main-LSM preserving their original sequence numbers, clears
the metadata table, and resets the Dev-LSM (step 8) so the next stall
starts from a clean buffer.

Two scheduling schemes (paper):

* ``eager``  — roll back as soon as the stall clears; best for read-mixed
  workloads (Dev-LSM point reads are slow).
* ``lazy``   — wait for a quiet period (no writes for ``quiet_window``) so
  rollback I/O never competes with foreground writes; best for
  write-intensive workloads.
* ``disabled`` — never roll back during the run (the paper's write-only
  workload A configuration, where rollback happens after the workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..faults.registry import fault_point, touch
from ..resil.errors import DeviceError
from ..sim import Environment, Interrupt
from ..types import entry_size
from .controller import KvaccelController
from .detector import WriteStallDetector

__all__ = ["RollbackManager", "RollbackConfig", "RollbackRecord"]

SCHEMES = ("eager", "lazy", "disabled")


@dataclass
class RollbackConfig:
    scheme: str = "eager"
    period: float = 0.1            # check cadence (same thread family as detector)
    quiet_window: float = 0.5      # lazy: require this long with no writes
    merge_batch: int = 256         # entries per Main-LSM write batch

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        if self.period <= 0 or self.quiet_window < 0 or self.merge_batch < 1:
            raise ValueError("invalid rollback configuration")


@dataclass
class RollbackRecord:
    start: float
    end: float
    entries: int
    bytes: int


class RollbackManager:
    """Schedules and executes rollback operations."""

    def __init__(self, env: Environment, controller: KvaccelController,
                 detector: WriteStallDetector,
                 config: RollbackConfig | None = None,
                 resil=None):
        self.env = env
        self.controller = controller
        self.detector = detector
        self.config = config or RollbackConfig()
        # Optional repro.resil.DegradationManager.  A DEGRADED system wants
        # its Dev-LSM drained back into Main-LSM regardless of scheme; a
        # completed drain moves the state machine to RECOVERING.
        self.resil = resil
        self.records: list[RollbackRecord] = []
        self.in_progress = False
        self._stopped = False
        self.process = env.process(self._run(), name="kvaccel-rollback")
        tel = env.telemetry
        if tel is not None:
            tel.gauge("rollback.active",
                      lambda: 1.0 if self.in_progress else 0.0)
            tel.rate("rollback.entries")
            tel.rate("rollback.bytes")

    def stop(self) -> None:
        """Stop the scheduler thread.

        Interrupts the polling process so a closed system drains its event
        queue immediately instead of ticking until the caller's horizon.
        A rollback already in flight is left to finish (it holds the
        controller's redirection lock); only the idle wait is cancelled.
        """
        self._stopped = True
        proc = self.process
        if (proc.is_alive and not self.in_progress
                and proc._target is not None
                and proc is not self.env.active_process):
            proc.interrupt("stopped")

    # -- scheduling policy ------------------------------------------------
    def _should_rollback(self) -> bool:
        if self.in_progress or self.controller.kv.is_empty:
            return False
        drain = self.resil is not None and self.resil.wants_drain()
        if self.detector.stall_condition and not drain:
            return False  # only between stalls (paper step 1-2)
        if drain:
            # DEGRADED: drain the Dev-LSM now, even under a stall and even
            # with scheme "disabled" — its contents must reach Main-LSM
            # before the faulty device interface degrades further.
            return True
        if self.config.scheme == "eager":
            return True
        if self.config.scheme == "lazy":
            quiet = self.env.now - self.controller.last_write_time
            return quiet >= self.config.quiet_window
        return False  # disabled

    def _run(self):
        try:
            while not self._stopped:
                yield self.env.timeout(self.config.period)
                if self._stopped or self.controller.main.closed:
                    return
                if self._should_rollback():
                    if self.resil is None:
                        yield from self.rollback_once()
                    else:
                        try:
                            yield from self.rollback_once()
                        except DeviceError as exc:
                            # Scan/reset hit the faulty device; note the
                            # error and retry on the next period instead of
                            # killing the scheduler thread.
                            self.resil.record_error(exc)
                elif (self.resil is not None and self.resil.wants_drain()
                        and self.controller.kv.is_empty):
                    # Nothing to drain — the DEGRADED Dev-LSM is already
                    # empty; move straight to RECOVERING.
                    self.resil.note_drained()
        except Interrupt:
            return

    # -- the rollback operation ---------------------------------------------
    def rollback_once(self) -> Generator:
        """One full rollback: bulk scan -> merge -> clear metadata -> reset.

        While a rollback runs, the controller stops redirecting (writes go
        to Main-LSM, gated normally), so the Dev-LSM reset at step 8 cannot
        drop late-arriving entries.  Entries whose key is no longer in the
        metadata table are *stale* — a newer copy already landed in
        Main-LSM via write-path step 3-1 — and are skipped, otherwise an
        old value could shadow a newer, already-flushed one.
        """
        self.in_progress = True
        self.controller.rollback_in_progress = True
        tr = self.env.tracer
        _sp = (tr.begin("rollback", f"rollback.{self.config.scheme}",
                        args={"scheme": self.config.scheme})
               if tr is not None else None)
        try:
            t0 = self.env.now
            controller = self.controller
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "rollback.start")
            live_keys = controller.metadata.keys_snapshot()
            entries = yield from controller.kv.bulk_scan()
            entries = [e for e in entries if e[0] in live_keys]
            if self.env.faults is not None or self.env.journal is not None:
                touch(self.env, "rollback.scan.done")
            nbytes = 0
            batch = self.config.merge_batch
            tel = self.env.telemetry
            for i in range(0, len(entries), batch):
                chunk = entries[i:i + batch]
                chunk_bytes = sum(entry_size(e) for e in chunk)
                nbytes += chunk_bytes
                yield from controller.main.write_entries(chunk)
                if tel is not None:
                    # Per-batch so progress lands in the bucket it happened
                    # in — the rollback-convergence rule watches this.
                    tel.add("rollback.entries", len(chunk))
                    tel.add("rollback.bytes", chunk_bytes)
                if self.env.faults is not None or self.env.journal is not None:
                    touch(self.env, "rollback.merge.batch")
            controller.metadata.clear()
            if self.env.faults is not None or self.env.journal is not None:
                touch(self.env, "rollback.metadata.cleared")
            yield from controller.kv.reset()
            if self.env.faults is not None or self.env.journal is not None:
                touch(self.env, "rollback.complete")
            if self.resil is not None:
                self.resil.note_drained()
            self.records.append(RollbackRecord(
                start=t0, end=self.env.now, entries=len(entries), bytes=nbytes))
            if _sp is not None:
                tr.end(_sp, args={"entries": len(entries), "bytes": nbytes})
                _sp = None
        finally:
            if _sp is not None:   # aborted mid-flight (e.g. injected crash)
                tr.end(_sp, args={"aborted": True})
            self.in_progress = False
            self.controller.rollback_in_progress = False

    # -- stats --------------------------------------------------------------
    @property
    def rollback_count(self) -> int:
        return len(self.records)

    @property
    def total_entries_rolled_back(self) -> int:
        return sum(r.entries for r in self.records)

