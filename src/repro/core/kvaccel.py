"""KvaccelDb — the assembled KVACCEL system (paper Fig 7).

One facade wiring together:

* a **Main-LSM** (:class:`~repro.lsm.DbImpl`) on the hybrid SSD's block
  interface — with RocksDB's slowdown disabled, because KVACCEL "does not
  employ any slowdown mechanisms to avoid a write stall" (Section VI-B);
* the **Dev-LSM** behind the same SSD's key-value interface;
* the **Detector**, **Controller**, **Metadata Manager** and **Rollback
  Manager** software modules.

The public surface mirrors a KV store: ``put``/``get``/``delete``/
``put_batch``/``scan`` plus lifecycle and introspection helpers.  All data
operations are process generators (drive with ``yield from``).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..device.cpu import CpuModel
from ..device.hybrid import HybridSsd
from ..lsm.db import DbImpl
from ..lsm.options import LsmOptions
from ..resil import DegradationManager, ResilienceConfig, RetryExecutor
from ..sim import Environment
from .controller import KvaccelController
from .detector import DetectorConfig, WriteStallDetector
from .metadata import MetadataCosts, MetadataManager
from .range_query import range_query
from .recovery import RecoveryReport, recover_after_crash
from .rollback import RollbackConfig, RollbackManager

__all__ = ["KvaccelDb"]


class KvaccelDb:
    """The full KVACCEL stack over one hybrid dual-interface SSD."""

    def __init__(
        self,
        env: Environment,
        options: LsmOptions,
        ssd: HybridSsd,
        host_cpu: CpuModel,
        name: str = "kvaccel",
        rollback: str | RollbackConfig = "eager",
        detector_config: Optional[DetectorConfig] = None,
        metadata_costs: Optional[MetadataCosts] = None,
        disable_slowdown: bool = True,
        resilience: Optional[ResilienceConfig] = None,
        **db_kw,
    ):
        self.env = env
        self.ssd = ssd
        self.host_cpu = host_cpu
        self.name = name
        if disable_slowdown and options.slowdown_enabled:
            import copy
            options = copy.deepcopy(options)
            options.slowdown_enabled = False
        # None keeps every hot path untouched (production trajectories
        # depend on it); a ResilienceConfig turns on retries around both
        # device interfaces plus the HEALTHY/DEGRADED/RECOVERING machine.
        self.resil = (DegradationManager(env, resilience)
                      if resilience is not None else None)
        if resilience is not None:
            ssd.kv.retry = RetryExecutor(env, resilience.retry, name="kv")
            ssd.block.retry = RetryExecutor(env, resilience.retry,
                                            name="block")
        self.main = DbImpl(env, options, ssd.block, host_cpu,
                           name=f"{name}.main", **db_kw)
        self.detector = WriteStallDetector(env, self.main, detector_config)
        self.metadata = MetadataManager(host_cpu, metadata_costs)
        self.controller = KvaccelController(env, self.main, ssd.kv,
                                            self.detector, self.metadata,
                                            resil=self.resil)
        rb_config = (rollback if isinstance(rollback, RollbackConfig)
                     else RollbackConfig(scheme=rollback))
        if detector_config is not None:
            rb_config.period = detector_config.period
        self.rollback_manager = RollbackManager(env, self.controller,
                                                self.detector, rb_config,
                                                resil=self.resil)

    # -- data plane -----------------------------------------------------------
    def put(self, key: bytes, value) -> Generator:
        yield from self.controller.put(key, value)

    def put_batch(self, pairs: list) -> Generator:
        yield from self.controller.put_batch(pairs)

    def delete(self, key: bytes) -> Generator:
        yield from self.controller.delete(key)

    def get(self, key: bytes) -> Generator:
        value = yield from self.controller.get(key)
        return value

    def scan(self, start_key: bytes, count: int) -> Generator:
        out = yield from range_query(self.controller, start_key, count)
        return out

    # -- lifecycle ---------------------------------------------------------------
    def final_rollback(self) -> Generator:
        """Force a rollback now (end-of-workload drain for lazy/disabled)."""
        if not self.ssd.kv.is_empty:
            yield from self.rollback_manager.rollback_once()

    def recover(self) -> Generator:
        """Crash-recover the lost metadata table (Section VI-D)."""
        if self.main.background_error is not None:
            self.main.resume()
        if self.resil is not None:
            self.resil.reset()
        report: RecoveryReport = yield from recover_after_crash(self.controller)
        return report

    def resume(self) -> None:
        """Clear a latched Main-LSM background error (RocksDB ``Resume``)."""
        self.main.resume()

    def wait_for_quiesce(self, poll: float = 0.01) -> Generator:
        yield from self.main.wait_for_quiesce(poll)

    def close(self) -> None:
        self.detector.stop()
        self.rollback_manager.stop()
        self.main.close()

    # -- introspection ---------------------------------------------------------
    @property
    def stats(self):
        return self.main.stats

    @property
    def write_controller(self):
        return self.main.write_controller

    def snapshot(self) -> dict:
        snap = self.main.property_snapshot()
        snap.update({
            "redirected_writes": self.controller.redirected_writes,
            "normal_writes": self.controller.normal_writes,
            "devlsm_entries": self.ssd.devlsm.entry_count,
            "devlsm_bytes": self.ssd.devlsm.total_bytes,
            "metadata_keys": len(self.metadata),
            "rollbacks": self.rollback_manager.rollback_count,
            "detector_stall": self.detector.stall_condition,
        })
        if self.resil is not None:
            snap.update({
                "resil_state": self.resil.state,
                "resil_device_errors": self.resil.device_errors,
                "resil_fallback_writes": self.resil.fallback_writes,
                "kv_retries": self.ssd.kv.retry.stats.retries,
                "block_retries": self.ssd.block.retry.stats.retries,
            })
        return snap
