"""Metadata Manager (paper Section V-C).

An in-host-memory hash table recording which user keys currently live in
the Dev-LSM.  Read and write paths consult it for membership before
choosing an interface; entries are removed when a newer write lands in
Main-LSM (write path step 3-1) and cleared wholesale after rollback.

Costs follow Table VI: key insert 0.45 us, check 0.20 us, delete 0.28 us —
charged to the host CPU per call.  The table is volatile: on crash it is
lost and recovered by a full Dev-LSM range scan (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.cpu import CpuModel

__all__ = ["MetadataManager", "MetadataCosts"]


@dataclass
class MetadataCosts:
    insert: float = 0.45e-6
    check: float = 0.20e-6
    delete: float = 0.28e-6


class MetadataManager:
    """Host hash table: key -> present-in-Dev-LSM."""

    def __init__(self, host_cpu: CpuModel, costs: MetadataCosts | None = None):
        self.host_cpu = host_cpu
        self.costs = costs or MetadataCosts()
        self._keys: set[bytes] = set()
        self.inserts = 0
        self.checks = 0
        self.deletes = 0

    def insert(self, key: bytes) -> None:
        self.host_cpu.charge(self.costs.insert, tag="metadata")
        self._keys.add(key)
        self.inserts += 1

    def contains(self, key: bytes) -> bool:
        self.host_cpu.charge(self.costs.check, tag="metadata")
        self.checks += 1
        return key in self._keys

    def remove(self, key: bytes) -> None:
        self.host_cpu.charge(self.costs.delete, tag="metadata")
        self._keys.discard(key)
        self.deletes += 1

    def clear(self) -> None:
        self._keys.clear()

    def drop(self) -> None:
        """Simulate losing the volatile table in a crash (no CPU charge)."""
        self._keys = set()

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def is_empty(self) -> bool:
        return not self._keys

    def keys_snapshot(self) -> set:
        """Copy of the tracked keys (tests / recovery verification)."""
        return set(self._keys)
