"""Range queries across the hybrid interfaces (paper Section V-F).

One iterator per interface — the Main-LSM's merging iterator and the
Dev-LSM's NVMe-KV iterator (SEEK + per-NEXT commands, uncached) — joined by
an *iterator comparator* that always advances the side holding the smaller
key and resolves same-key collisions by sequence number.

The Dev-LSM side is the expensive one (every NEXT is an NVMe command plus a
NAND page read), which is why KVACCEL's Table V range-query throughput
trails the pure host LSMs: the comparator is rate-bound by the device
iterator whenever the Dev-LSM is non-empty.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..types import KIND_DELETE, Entry
from .controller import KvaccelController

__all__ = ["DualIterator", "range_query"]


class DualIterator:
    """Comparator-driven merge of the Main-LSM and Dev-LSM iterators."""

    def __init__(self, controller: KvaccelController, prefetch: int = 256):
        self.controller = controller
        self.prefetch = max(1, prefetch)
        self._main_buf: list = []
        self._main_pos = 0
        self._main_exhausted = False
        self._main_next_key: Optional[bytes] = None
        self._dev_it = None
        self._dev_entry: Optional[Entry] = None
        self._dev_exhausted = True

    # -- per-side cursors ------------------------------------------------
    def _refill_main(self, from_key: bytes) -> Generator:
        entries = yield from self.controller.main.scan_internal(
            from_key, self.prefetch, include_tombstones=True)
        self._main_buf = entries
        self._main_pos = 0
        self._main_exhausted = len(entries) < self.prefetch

    def _main_peek(self) -> Optional[Entry]:
        if self._main_pos < len(self._main_buf):
            return self._main_buf[self._main_pos]
        return None

    def _main_advance(self) -> Generator:
        self._main_pos += 1
        if self._main_pos >= len(self._main_buf) and not self._main_exhausted:
            last = self._main_buf[-1][0]
            # resume strictly after the last delivered key
            yield from self._refill_main(last + b"\x00")

    def _dev_advance(self) -> Generator:
        entry = yield from self.controller.kv.iter_next(self._dev_it)
        self._dev_entry = entry
        self._dev_exhausted = entry is None

    # -- protocol ---------------------------------------------------------
    def seek(self, key: bytes) -> Generator:
        """Position both iterators at the first entry >= ``key`` (steps 1-3)."""
        yield from self._refill_main(key)
        controller = self.controller
        if not controller.kv.is_empty:
            self._dev_it = yield from controller.kv.create_iterator()
            entry = yield from controller.kv.iter_seek(self._dev_it, key)
            self._dev_entry = entry
            self._dev_exhausted = entry is None
        else:
            self._dev_it = None
            self._dev_entry = None
            self._dev_exhausted = True

    def next(self) -> Generator:
        """Return the next live user entry, or None when both sides end.

        Implements the comparator of Fig 10: pick the smaller key; on a
        tie, the higher sequence number wins and the loser is skipped.
        Tombstones suppress the key entirely.
        """
        while True:
            m = self._main_peek()
            d = self._dev_entry
            if m is None and d is None:
                return None
            if d is None or (m is not None and m[0] < d[0]):
                yield from self._main_advance()
                winner = m
            elif m is None or d[0] < m[0]:
                yield from self._dev_advance()
                winner = d
            else:  # same user key: sequence number decides, both advance
                winner = m if m[1] >= d[1] else d
                yield from self._main_advance()
                yield from self._dev_advance()
            if winner[2] == KIND_DELETE:
                continue
            return winner


def range_query(controller: KvaccelController, start_key: bytes,
                count: int) -> Generator:
    """Seek + ``count`` Next()s across both interfaces; list of (key, value).

    The Main-LSM side prefetches in request-sized buffers: small scans must
    not pay for a deep default prefetch (tombstones/shadowing trigger
    refills when more is needed).
    """
    it = DualIterator(controller, prefetch=max(8, min(256, count)))
    yield from it.seek(start_key)
    out = []
    while len(out) < count:
        entry = yield from it.next()
        if entry is None:
            break
        out.append((entry[0], entry[3]))
    return out
