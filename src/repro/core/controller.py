"""KVACCEL Controller (paper Section V-C): dynamic I/O redirection.

The Controller routes every point operation to the correct interface:

* Write path — stall detected: allocate a sequence number, mark the key in
  the Metadata Manager, PUT through the key-value interface.  No stall:
  write into Main-LSM; if the key had a Dev-LSM copy, the metadata record
  is deleted (the Main-LSM copy is now newest — step 3-1).
* Read path — Metadata Manager membership decides the interface: keys in
  the Dev-LSM are served by KV GET, all others (or when the Dev-LSM is
  empty) by Main-LSM.

Sequence numbers come from the Main-LSM's global counter, so newest-wins
holds across both interfaces and rollback merges land in the right order.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..device.kv_dev import KvDevice
from ..faults.registry import fault_point, touch
from ..lsm.db import DbImpl
from ..resil.errors import DeviceError
from ..sim import Environment
from ..types import KIND_DELETE, KIND_PUT, make_entry
from .detector import WriteStallDetector
from .metadata import MetadataManager

__all__ = ["KvaccelController"]


class KvaccelController:
    """Routes operations between Main-LSM and the Dev-LSM."""

    def __init__(self, env: Environment, main: DbImpl, kv: KvDevice,
                 detector: WriteStallDetector, metadata: MetadataManager,
                 resil=None):
        self.env = env
        self.main = main
        self.kv = kv
        self.detector = detector
        self.metadata = metadata
        # Optional repro.resil.DegradationManager.  When set, persistent
        # Dev-LSM failures flip the system DEGRADED: redirection is
        # suspended and failed redirected batches fall back to Main-LSM
        # with their already-allocated sequence numbers, so no ack is lost.
        self.resil = resil
        self.redirected_writes = 0
        self.normal_writes = 0
        self.dev_reads = 0
        self.main_reads = 0
        self.last_write_time = env.now
        # Set by the RollbackManager while a rollback runs: redirection is
        # suspended so the Dev-LSM reset cannot drop late arrivals.
        self.rollback_in_progress = False
        self._last_route: Optional[str] = None
        tel = env.telemetry
        if tel is not None:
            tel.rate("ctl.redirected")
            tel.rate("ctl.normal")

    def state_digest(self) -> dict:
        """Routing-decision state for journal digest checkpoints."""
        return {
            "redirected_writes": self.redirected_writes,
            "normal_writes": self.normal_writes,
            "dev_reads": self.dev_reads,
            "main_reads": self.main_reads,
            "rollback_in_progress": self.rollback_in_progress,
            "last_route": self._last_route,
            "marked_keys": len(self.metadata),
        }

    def _redirect_allowed(self) -> bool:
        """Should this write go to the Dev-LSM?"""
        return (self.detector.stall_condition
                and not self.rollback_in_progress
                and (self.resil is None or self.resil.allows_redirect()))

    def _fallback(self, triples: list, exc: DeviceError) -> Generator:
        """Serve a failed redirected batch from Main-LSM instead.

        The sequence numbers were already allocated, so the entries are
        written through ``write_entries`` (seq-preserving); the keys are
        un-marked in the metadata table because their newest copy now
        lives in Main-LSM.
        """
        self.resil.record_error(exc)
        if self.env.faults is not None or self.env.journal is not None:
            touch(self.env, "resil.fallback")
        for key, _seq, _value in triples:
            if not self.metadata.is_empty and self.metadata.contains(key):
                self.metadata.remove(key)
        entries = [make_entry(k, s, v,
                              kind=KIND_DELETE if v is None else KIND_PUT)
                   for k, s, v in triples]
        lp = self.env.lineage
        if lp is not None:
            lp.enter("degraded")
        try:
            yield from self.main.write_entries(entries)
        finally:
            if lp is not None:
                lp.leave()
        for _ in entries:
            self.resil.record_fallback()

    def _route(self, to: str) -> None:
        """Trace an interface switch (main<->dev) on route changes."""
        if to != self._last_route:
            tr = self.env.tracer
            if tr is not None and self._last_route is not None:
                tr.instant("ctl", "ctl.switch", actor="write_controller",
                           args={"to": to})
            self._last_route = to

    # -- write path ----------------------------------------------------------
    def put(self, key: bytes, value) -> Generator:
        yield from self.put_batch([(key, value)])

    def put_batch(self, pairs: list) -> Generator:
        """Route a write batch; the interface choice is the detector's
        latched verdict (refreshed every 0.1 s, paper Section VI-A)."""
        self.last_write_time = self.env.now
        if self._redirect_allowed():
            self._route("dev")
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "ctl.put.redirect")
            t0 = self.env.now
            triples = []
            for key, value in pairs:
                seq = self.main.next_seq()
                self.metadata.insert(key)
                triples.append((key, seq, value))
            lp = self.env.lineage
            if lp is not None:
                lp.enter("redirect")
            try:
                if self.resil is None:
                    yield from self.kv.put_batch(triples)
                else:
                    try:
                        yield from self.kv.put_batch(triples)
                        self.resil.record_success()
                    except DeviceError as exc:
                        yield from self._fallback(triples, exc)
            finally:
                if lp is not None:
                    lp.leave()
            self.redirected_writes += len(triples)
            tel = self.env.telemetry
            if tel is not None:
                tel.add("ctl.redirected", len(triples))
            # Redirected writes complete too — record their latency in the
            # same books as Main-LSM writes so P99 covers the whole system.
            self.main.stats.record_write_latency(self.env.now - t0,
                                                 count=len(triples))
        else:
            self._route("main")
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "ctl.put.normal")
            for key, _value in pairs:
                if not self.metadata.is_empty and self.metadata.contains(key):
                    self.metadata.remove(key)  # Main-LSM copy becomes newest
            yield from self.main.put_batch(pairs)
            self.normal_writes += len(pairs)
            tel = self.env.telemetry
            if tel is not None:
                tel.add("ctl.normal", len(pairs))

    def delete(self, key: bytes) -> Generator:
        self.last_write_time = self.env.now
        if self._redirect_allowed():
            self._route("dev")
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "ctl.delete.redirect")
            seq = self.main.next_seq()
            self.metadata.insert(key)  # tombstone lives in Dev-LSM
            lp = self.env.lineage
            if lp is not None:
                lp.enter("redirect")
            try:
                if self.resil is None:
                    yield from self.kv.delete(key, seq)
                else:
                    try:
                        yield from self.kv.delete(key, seq)
                        self.resil.record_success()
                    except DeviceError as exc:
                        yield from self._fallback([(key, seq, None)], exc)
            finally:
                if lp is not None:
                    lp.leave()
            self.redirected_writes += 1
        else:
            self._route("main")
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "ctl.delete.normal")
            if not self.metadata.is_empty and self.metadata.contains(key):
                self.metadata.remove(key)
            yield from self.main.delete(key)
            self.normal_writes += 1

    # -- read path -------------------------------------------------------------
    def get(self, key: bytes) -> Generator:
        """Read path steps (1)-(3) of Section V-C."""
        if not self.kv.is_empty and self.metadata.contains(key):
            if self.env.faults is not None or self.env.journal is not None:
                yield from fault_point(self.env, "ctl.get.dev")
            try:
                entry = yield from self.kv.get(key)
            except DeviceError as exc:
                # Do NOT fall back to Main-LSM here: the Dev-LSM holds the
                # newest copy, so a main read would return stale data.
                # Surface the error; the degradation manager notes it.
                if self.resil is not None:
                    self.resil.record_error(exc)
                raise
            self.dev_reads += 1
            if entry is None:
                # metadata said Dev-LSM but a rollback raced us: fall back.
                value = yield from self.main.get(key)
                return value
            if entry[2] == KIND_DELETE:
                return None
            return entry[3]
        if self.env.faults is not None or self.env.journal is not None:
            yield from fault_point(self.env, "ctl.get.main")
        value = yield from self.main.get(key)
        self.main_reads += 1
        return value
