"""KVACCEL Controller (paper Section V-C): dynamic I/O redirection.

The Controller routes every point operation to the correct interface:

* Write path — stall detected: allocate a sequence number, mark the key in
  the Metadata Manager, PUT through the key-value interface.  No stall:
  write into Main-LSM; if the key had a Dev-LSM copy, the metadata record
  is deleted (the Main-LSM copy is now newest — step 3-1).
* Read path — Metadata Manager membership decides the interface: keys in
  the Dev-LSM are served by KV GET, all others (or when the Dev-LSM is
  empty) by Main-LSM.

Sequence numbers come from the Main-LSM's global counter, so newest-wins
holds across both interfaces and rollback merges land in the right order.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..device.kv_dev import KvDevice
from ..faults.registry import fault_point
from ..lsm.db import DbImpl
from ..sim import Environment
from ..types import KIND_DELETE
from .detector import WriteStallDetector
from .metadata import MetadataManager

__all__ = ["KvaccelController"]


class KvaccelController:
    """Routes operations between Main-LSM and the Dev-LSM."""

    def __init__(self, env: Environment, main: DbImpl, kv: KvDevice,
                 detector: WriteStallDetector, metadata: MetadataManager):
        self.env = env
        self.main = main
        self.kv = kv
        self.detector = detector
        self.metadata = metadata
        self.redirected_writes = 0
        self.normal_writes = 0
        self.dev_reads = 0
        self.main_reads = 0
        self.last_write_time = env.now
        # Set by the RollbackManager while a rollback runs: redirection is
        # suspended so the Dev-LSM reset cannot drop late arrivals.
        self.rollback_in_progress = False
        self._last_route: Optional[str] = None
        tel = env.telemetry
        if tel is not None:
            tel.rate("ctl.redirected")
            tel.rate("ctl.normal")

    def _route(self, to: str) -> None:
        """Trace an interface switch (main<->dev) on route changes."""
        if to != self._last_route:
            tr = self.env.tracer
            if tr is not None and self._last_route is not None:
                tr.instant("ctl", "ctl.switch", actor="write_controller",
                           args={"to": to})
            self._last_route = to

    # -- write path ----------------------------------------------------------
    def put(self, key: bytes, value) -> Generator:
        yield from self.put_batch([(key, value)])

    def put_batch(self, pairs: list) -> Generator:
        """Route a write batch; the interface choice is the detector's
        latched verdict (refreshed every 0.1 s, paper Section VI-A)."""
        self.last_write_time = self.env.now
        if self.detector.stall_condition and not self.rollback_in_progress:
            self._route("dev")
            if self.env.faults is not None:
                yield from fault_point(self.env, "ctl.put.redirect")
            t0 = self.env.now
            triples = []
            for key, value in pairs:
                seq = self.main.next_seq()
                self.metadata.insert(key)
                triples.append((key, seq, value))
            yield from self.kv.put_batch(triples)
            self.redirected_writes += len(triples)
            tel = self.env.telemetry
            if tel is not None:
                tel.add("ctl.redirected", len(triples))
            # Redirected writes complete too — record their latency in the
            # same books as Main-LSM writes so P99 covers the whole system.
            self.main.stats.record_write_latency(self.env.now - t0,
                                                 count=len(triples))
        else:
            self._route("main")
            if self.env.faults is not None:
                yield from fault_point(self.env, "ctl.put.normal")
            for key, _value in pairs:
                if not self.metadata.is_empty and self.metadata.contains(key):
                    self.metadata.remove(key)  # Main-LSM copy becomes newest
            yield from self.main.put_batch(pairs)
            self.normal_writes += len(pairs)
            tel = self.env.telemetry
            if tel is not None:
                tel.add("ctl.normal", len(pairs))

    def delete(self, key: bytes) -> Generator:
        self.last_write_time = self.env.now
        if self.detector.stall_condition and not self.rollback_in_progress:
            self._route("dev")
            if self.env.faults is not None:
                yield from fault_point(self.env, "ctl.delete.redirect")
            seq = self.main.next_seq()
            self.metadata.insert(key)  # tombstone lives in Dev-LSM
            yield from self.kv.delete(key, seq)
            self.redirected_writes += 1
        else:
            self._route("main")
            if self.env.faults is not None:
                yield from fault_point(self.env, "ctl.delete.normal")
            if not self.metadata.is_empty and self.metadata.contains(key):
                self.metadata.remove(key)
            yield from self.main.delete(key)
            self.normal_writes += 1

    # -- read path -------------------------------------------------------------
    def get(self, key: bytes) -> Generator:
        """Read path steps (1)-(3) of Section V-C."""
        if not self.kv.is_empty and self.metadata.contains(key):
            if self.env.faults is not None:
                yield from fault_point(self.env, "ctl.get.dev")
            entry = yield from self.kv.get(key)
            self.dev_reads += 1
            if entry is None:
                # metadata said Dev-LSM but a rollback raced us: fall back.
                value = yield from self.main.get(key)
                return value
            if entry[2] == KIND_DELETE:
                return None
            return entry[3]
        if self.env.faults is not None:
            yield from fault_point(self.env, "ctl.get.main")
        value = yield from self.main.get(key)
        self.main_reads += 1
        return value
