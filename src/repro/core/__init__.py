"""KVACCEL core: detector, controller, metadata, rollback, range query."""

from .controller import KvaccelController
from .detector import DetectorConfig, WriteStallDetector
from .kvaccel import KvaccelDb
from .metadata import MetadataCosts, MetadataManager
from .range_query import DualIterator, range_query
from .recovery import RecoveryReport, recover_after_crash
from .rollback import RollbackConfig, RollbackManager, RollbackRecord

__all__ = [
    "KvaccelController",
    "DetectorConfig",
    "WriteStallDetector",
    "KvaccelDb",
    "MetadataCosts",
    "MetadataManager",
    "DualIterator",
    "range_query",
    "RecoveryReport",
    "recover_after_crash",
    "RollbackConfig",
    "RollbackManager",
    "RollbackRecord",
]
