"""Crash recovery of the Metadata Manager (paper Section VI-D).

The metadata hash table lives in volatile host memory.  After a crash it is
gone — but every redirected pair is durable in the Dev-LSM's NAND, so
recovery is a forced rollback: range-scan the entire key-value interface,
merge everything back into Main-LSM, and reset.  Afterwards the (empty)
metadata table is trivially consistent: no key lives in the Dev-LSM.

The paper reports 10,000 pairs restored in 1.1 s; the recovery bench
reproduces that measurement on the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..faults.registry import fault_point, touch
from ..types import entry_size
from .controller import KvaccelController

__all__ = ["recover_after_crash", "RecoveryReport"]


@dataclass
class RecoveryReport:
    entries_recovered: int
    bytes_recovered: int
    elapsed: float


def recover_after_crash(controller: KvaccelController,
                        merge_batch: int = 256) -> Generator:
    """Rebuild consistency after losing the metadata table.

    Unlike a scheduled rollback there is no metadata snapshot to filter
    stale entries with — the table is gone.  Each scanned entry is checked
    against Main-LSM's newest version of that key and merged only if it is
    in fact newer: an LSM memtable must never receive an entry older than
    data already below it, or reads would return the stale copy.
    """
    env = controller.env
    t0 = env.now
    tr = env.tracer
    _sp = (tr.begin("recovery", "recovery.metadata", actor="recovery")
           if tr is not None else None)
    if env.faults is not None or env.journal is not None:
        yield from fault_point(env, "recovery.start")
    controller.metadata.drop()
    scanned = yield from controller.kv.bulk_scan()
    if env.faults is not None or env.journal is not None:
        touch(env, "recovery.scan.done")
    entries = []
    for e in scanned:
        current = yield from controller.main.get_internal(e[0])
        if current is None or e[1] > current[1]:
            entries.append(e)
    nbytes = 0
    tel = env.telemetry
    for i in range(0, len(entries), merge_batch):
        chunk = entries[i:i + merge_batch]
        chunk_bytes = sum(entry_size(e) for e in chunk)
        nbytes += chunk_bytes
        yield from controller.main.write_entries(chunk)
        if tel is not None:
            tel.add("recovery.entries", len(chunk))
        if env.faults is not None or env.journal is not None:
            touch(env, "recovery.merge.batch")
    yield from controller.kv.reset()
    controller.metadata.clear()
    if env.faults is not None or env.journal is not None:
        touch(env, "recovery.complete")
    if _sp is not None:
        tr.end(_sp, args={"entries": len(entries), "bytes": nbytes})
    return RecoveryReport(
        entries_recovered=len(entries),
        bytes_recovered=nbytes,
        elapsed=env.now - t0,
    )
