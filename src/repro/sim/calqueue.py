"""Calendar-queue event scheduler for the DES kernel.

A calendar queue (Brown, CACM 1988) buckets future events by timestamp the
way a desk calendar buckets appointments by day: enqueue hashes the event's
time to a bucket in O(1), dequeue serves the current bucket in sorted order
and only "turns the page" when the bucket is exhausted.  For the kernel's
timeout-dominated workloads — millions of short, clustered delays — this
replaces the O(log n) binary-heap churn with O(1) amortised operations.

Design constraints, in priority order:

1. **Exact total order.**  Entries are ``(time, priority, seq, event)``
   tuples and must dequeue in exactly the heap's order — same-timestamp
   ties broken by priority then schedule sequence.  This is the kernel's
   determinism contract; every golden trajectory pins on it.  The queue
   guarantees it structurally: the current bucket is kept sorted (late
   arrivals are insorted at their exact rank), future buckets cover
   disjoint, later time ranges, and the far/overflow heap only holds
   entries later than every bucket.  No tuning decision can reorder
   events — resizing and mode switches migrate entries, never ranks.

2. **Heap fallback.**  Small queues, far-future entries, and pathological
   distributions (everything at +inf, extreme spreads) are exactly where
   calendar queues degrade, so the queue starts in plain binary-heap mode
   and only *upgrades* to calendar mode once the population is large
   enough to pay for bucketing.  Far-future entries always live in an
   overflow heap; a queue that keeps draining below the profitable size
   downgrades back, and after ``MAX_FALLBACKS`` round trips it locks
   itself into heap mode (the workload is telling us bucketing loses).

3. **Hot-loop friendliness.**  ``Environment.run`` hoists ``_cur`` and
   ``_heap`` into locals, so every migration mutates those *list objects
   in place* (``cur[:] = ...``, ``heap.clear(); heap.extend(...)``) —
   rebinding them would silently desynchronise the dispatch loop.
   Exactly one of the two is ever populated: heap mode keeps ``_cur``
   empty, calendar mode keeps ``_heap`` empty.

Mode selection can be forced with the ``REPRO_SCHED`` environment variable
(``heap`` | ``cal``); the default (``auto``) upgrades and downgrades by
population as described above.
"""

from __future__ import annotations

import os
import sys
from bisect import insort
from heapq import heapify, heappop, heappush

__all__ = ["CalendarQueue"]

_INF = float("inf")

# Bucket-width tuning targets this many entries per bucket refill.
_TARGET_OCC = 16
# Occupancy band checked every _RESIZE_EVERY refills: shrink buckets above
# the band (sorting refills got expensive), widen below it (page turns
# dominate).
_OCC_HI = 48.0
_OCC_LO = 4.0
_RESIZE_EVERY = 256
# Entries this many buckets past the current one go to the overflow heap
# instead of materialising empty calendar pages.
_FAR_SPAN = 4096
# Heap mode upgrades to calendar mode above this population ...
_UPGRADE_AT = 8192
# ... and calendar mode downgrades back below this one (hysteresis).
# Measured crossover (CPython 3.11, jittered-timer churn): C-accelerated
# heapq wins below ~16k time-distributed pending entries, the calendar
# wins above.  Real experiment cells idle at 50–200 pending (drivers +
# samplers + pollers) and their signalling traffic rides the now lane, so
# only genuine timer floods (scale benches, many-connection models) pay
# for bucketing — the upgrade point sits just below the crossover.
_DOWNGRADE_BELOW = 2048
# Consumed-slot prefix of the current bucket tolerated before compaction
# (only same-timestamp-heavy workloads ever grow it; page turns reset it).
_COMPACT_PTR = 8192
# Downgrades tolerated before the queue locks itself into heap mode.
_MAX_FALLBACKS = 3


class CalendarQueue:
    """Dual-mode (binary-heap / calendar) priority queue of event entries.

    The kernel's push seam is inlined at its hot sites::

        if q._cal:
            q.push(entry)
        else:
            heappush(q._heap, entry)
            if len(q._heap) > q._upgrade_at:
                q._consider_upgrade()

    and the dequeue side reads ``_cur``/``_ptr``/``_heap`` directly (see
    ``Environment.run``).  Cold callers use :meth:`_pop_entry` /
    :meth:`peek_time`.
    """

    __slots__ = (
        "_heap", "_cal", "_cur", "_ptr", "_cur_idx", "_buckets", "_bidx",
        "_far", "_far_t", "_n_future", "_width", "_inv_width",
        "_nowq", "_nptr",
        "_upgrade_at", "_no_cal", "_forced", "_pushes_cal",
        "_refills", "_refill_events", "_occ_refills", "_occ_events",
        "_insorts", "_far_pushed", "_upgrades", "_downgrades", "_resizes",
    )

    def __init__(self, force: str | None = None):
        if force is None:
            force = os.environ.get("REPRO_SCHED", "").strip().lower() or None
        if force not in (None, "auto", "heap", "cal"):
            raise ValueError(
                f"REPRO_SCHED must be auto, heap or cal, not {force!r}")
        self._heap: list = []          # heap-mode storage (empty in cal mode)
        self._cal = False              # True once upgraded to calendar mode
        self._cur: list = []           # current bucket, ascending-sorted;
        self._ptr = 0                  # consumed slots [0:_ptr) are None
        self._cur_idx = 0              # calendar index of the current bucket
        self._buckets: dict[int, list] = {}   # future buckets (unsorted)
        self._bidx: list[int] = []     # min-heap of future bucket indices
        self._far: list = []           # overflow heap: t >= _far_t (or +inf)
        self._far_t = _INF             # finite once in calendar mode
        self._n_future = 0             # entries in _buckets plus _far
        # Now lane: entries scheduled at exactly the current simulation
        # time (succeed, process finish/boot, zero-delay timeouts).  The
        # clock never moves backwards and seq strictly increases, so
        # appends arrive pre-sorted and dequeue needs at most one
        # comparison against the bucket/heap head — the dominant
        # signalling pattern costs O(1) with zero comparisons when the
        # timed side is idle.  Mode transitions never touch this lane.
        self._nowq: list = []
        self._nptr = 0                 # consumed slots [0:_nptr) are None
        self._width = 1.0
        self._inv_width = 1.0
        self._forced = force
        self._no_cal = force == "heap"
        if force == "heap":
            self._upgrade_at = sys.maxsize
        elif force == "cal":
            self._upgrade_at = 0       # upgrade at the first opportunity
        else:
            self._upgrade_at = _UPGRADE_AT
        self._pushes_cal = 0
        self._refills = 0
        self._refill_events = 0
        self._occ_refills = 0
        self._occ_events = 0
        self._insorts = 0
        self._far_pushed = 0
        self._upgrades = 0
        self._downgrades = 0
        self._resizes = 0

    def __len__(self) -> int:
        return ((len(self._cur) - self._ptr) + len(self._heap)
                + self._n_future + (len(self._nowq) - self._nptr))

    # -- now lane ----------------------------------------------------------
    def push_now(self, entry: tuple) -> None:
        """Enqueue an entry timestamped exactly *now* (cold-path form).

        Correct only for entries whose time equals the current simulation
        time at the moment of the call — the Environment's push seams
        guarantee it (succeed, zero-delay schedules).  Hot sites inline
        the body.
        """
        nowq = self._nowq
        nowq.append(entry)
        if self._nptr > _COMPACT_PTR:
            del nowq[:self._nptr]
            self._nptr = 0

    # -- calendar-mode enqueue -------------------------------------------
    def push(self, entry: tuple) -> None:
        """Enqueue in calendar mode (heap mode pushes straight to ``_heap``).

        Entries for the bucket currently being served are insorted at their
        exact rank (``lo=_ptr`` keeps the bisection off the consumed-slot
        ``None`` prefix — entries never schedule into the past, so the rank
        is always at or after the consume pointer).
        """
        t = entry[0]
        cur_ = self._cur
        if self._ptr < len(cur_) and cur_[-1][0] == _INF:
            # Serving the final all-+inf bucket (see _advance).  Every
            # new entry ranks inside or after it — a finite time or a
            # priority-0 interrupt at +inf can rank *before* pending
            # +inf entries, so bucket/far routing would serve it late;
            # insort places it at its exact (time, priority, seq) rank.
            insort(cur_, entry, lo=self._ptr)
            self._insorts += 1
        elif t >= self._far_t:
            heappush(self._far, entry)
            self._far_pushed += 1
            self._n_future += 1
        else:
            idx = int(t * self._inv_width)
            if idx <= self._cur_idx:
                ptr = self._ptr
                if ptr > _COMPACT_PTR:
                    # Same-timestamp-heavy workloads refill the current
                    # bucket faster than pages turn; drop the consumed
                    # None prefix in place (run() re-reads _ptr each
                    # iteration, so the hoisted list stays coherent).
                    del self._cur[:ptr]
                    self._ptr = ptr = 0
                insort(self._cur, entry, lo=ptr)
                self._insorts += 1
            else:
                b = self._buckets.get(idx)
                if b is None:
                    self._buckets[idx] = [entry]
                    heappush(self._bidx, idx)
                else:
                    b.append(entry)
                self._n_future += 1
        self._pushes_cal += 1
        if not (self._pushes_cal & 1023) and len(self) < _DOWNGRADE_BELOW \
                and self._forced != "cal":
            self._downgrade()

    # -- mode transitions -------------------------------------------------
    def _consider_upgrade(self) -> None:
        """Heap → calendar, sized so buckets average ``_TARGET_OCC`` entries.

        Called from the push seam when the heap population crosses
        ``_upgrade_at``.  Width derives from the pending span: ``span *
        target / n`` makes the expected per-bucket population the target.
        """
        if self._no_cal:
            return
        heap = self._heap
        n = len(heap)
        if n == 0:
            return
        lo = heap[0][0]
        if lo == _INF:
            return                      # everything far-future: heap wins
        hi = lo
        for e in heap:
            t = e[0]
            if t > hi and t != _INF:
                hi = t
        span = hi - lo
        width = span * _TARGET_OCC / n if span > 0.0 else 1.0
        if not width > 0.0 or width == _INF:
            width = 1.0
        self._width = width
        inv = self._inv_width = 1.0 / width
        # One below the first entry's bucket, so every pending entry lands
        # in a *future* bucket and dequeue order stays structural.
        cur_idx = self._cur_idx = int(lo * inv) - 1
        far_t = self._far_t = (cur_idx + 1 + _FAR_SPAN) * width
        buckets = self._buckets
        bidx = self._bidx
        far = self._far
        for e in heap:
            if e[0] >= far_t:
                heappush(far, e)
            else:
                idx = int(e[0] * inv)
                b = buckets.get(idx)
                if b is None:
                    buckets[idx] = [e]
                    heappush(bidx, idx)
                else:
                    b.append(e)
        heap.clear()                    # in place: run() holds this object
        self._n_future = n
        self._cal = True
        self._upgrades += 1

    def _downgrade(self) -> None:
        """Calendar → heap: drain every structure back into ``_heap``."""
        self._to_heap()
        self._downgrades += 1
        if self._downgrades >= _MAX_FALLBACKS and self._forced is None:
            # The population keeps oscillating around the upgrade point:
            # bucketing is losing money on migrations.  Lock heap mode.
            self._no_cal = True
            self._upgrade_at = sys.maxsize

    def _to_heap(self) -> None:
        heap = self._heap
        cur = self._cur
        if self._ptr < len(cur):
            heap.extend(cur[self._ptr:])
        for b in self._buckets.values():
            heap.extend(b)
        heap.extend(self._far)
        heapify(heap)
        cur.clear()                     # in place: run() holds this object
        self._ptr = 0
        self._buckets.clear()
        self._bidx.clear()
        self._far.clear()
        self._far_t = _INF
        self._n_future = 0
        self._cal = False

    # -- bucket advance ----------------------------------------------------
    def _advance(self) -> None:
        """Turn the calendar page: refill ``_cur`` with the next bucket.

        Caller guarantees the current bucket is exhausted and
        ``_n_future > 0``.  Due far-heap entries migrate into buckets
        first, so the overflow heap can never hide an entry earlier than
        the bucket being served.
        """
        far = self._far
        bidx = self._bidx
        buckets = self._buckets
        width = self._width
        inv = self._inv_width
        cur = self._cur
        if far:
            t0 = far[0][0]
            if t0 == _INF and not bidx:
                # Only +inf entries remain.  Serve them as one final sorted
                # bucket; while it is being served, push() insorts every
                # new entry (finite, +inf, any priority) into it at exact
                # rank, so order stays exact.
                n = len(far)
                far.sort()
                cur[:] = far
                far.clear()
                self._ptr = 0
                self._n_future -= n
                self._refills += 1
                self._refill_events += n
                return
            if t0 != _INF:
                fidx = int(t0 * inv)
                if not bidx or fidx <= bidx[0]:
                    # The far head is due (at or before the earliest
                    # bucket): migrate a _FAR_SPAN window of far entries
                    # into real buckets before serving.
                    limit_t = (fidx + 1 + _FAR_SPAN) * width
                    while far:
                        ft = far[0][0]
                        if ft == _INF or ft >= limit_t:
                            break
                        e = heappop(far)
                        idx = int(e[0] * inv)
                        b = buckets.get(idx)
                        if b is None:
                            buckets[idx] = [e]
                            heappush(bidx, idx)
                        else:
                            b.append(e)
                    self._far_t = limit_t
        nidx = heappop(bidx)
        bucket = buckets.pop(nidx)
        bucket.sort()
        cur[:] = bucket                 # in place: run() holds this object
        self._ptr = 0
        self._cur_idx = nidx
        far_t = (nidx + 1 + _FAR_SPAN) * width
        if far_t > self._far_t:
            self._far_t = far_t
        n = len(bucket)
        self._n_future -= n
        self._refills += 1
        self._refill_events += n
        self._occ_refills += 1
        self._occ_events += n
        if self._occ_refills >= _RESIZE_EVERY:
            self._maybe_resize()

    def _maybe_resize(self) -> None:
        """Re-tune the bucket width when refill occupancy leaves the band."""
        avg = self._occ_events / self._occ_refills
        self._occ_refills = 0
        self._occ_events = 0
        if avg > _OCC_HI:
            self._rebuild(self._width * (_TARGET_OCC / avg))
        elif avg < _OCC_LO:
            self._rebuild(self._width * (_TARGET_OCC / max(avg, 0.5)))

    def _rebuild(self, new_width: float) -> None:
        """Re-place all future entries under ``new_width``.

        The current bucket's *time boundary* is preserved: entries and
        future pushes earlier than the old bucket's exclusive end keep
        insorting into ``_cur`` (always rank-exact), so the resize cannot
        reorder anything.
        """
        if not new_width > 0.0 or new_width == _INF:
            return
        boundary = (self._cur_idx + 1) * self._width
        entries: list = []
        for b in self._buckets.values():
            entries.extend(b)
        entries.extend(self._far)
        self._buckets.clear()
        self._bidx.clear()
        self._far.clear()
        self._width = new_width
        inv = self._inv_width = 1.0 / new_width
        # Smallest index whose bucket end covers the old boundary, so no
        # re-placed (strictly later) entry can land at or below it.
        cur_idx = self._cur_idx = int(boundary * inv)
        far_t = self._far_t = (cur_idx + 1 + _FAR_SPAN) * new_width
        buckets = self._buckets
        bidx = self._bidx
        far = self._far
        cur = self._cur
        n_future = 0
        for e in entries:
            t = e[0]
            if t >= far_t:
                heappush(far, e)
                n_future += 1
            else:
                idx = int(t * inv)
                if idx <= cur_idx:
                    insort(cur, e, lo=self._ptr)
                else:
                    b = buckets.get(idx)
                    if b is None:
                        buckets[idx] = [e]
                        heappush(bidx, idx)
                    else:
                        b.append(e)
                    n_future += 1
        self._n_future = n_future
        self._resizes += 1

    # -- cold-path dequeue / peek ----------------------------------------
    def _pop_entry(self) -> tuple:
        """Pop the minimum entry (cold path; ``run()`` inlines this).

        The winner is min(now-lane head, bucket/heap head) — one tuple
        comparison.  Every stored entry's time is >= the current clock and
        every now-lane entry's time is <= it, so when the timed structures
        are exhausted but future buckets remain, the page must be turned
        *before* the now lane can be served (a +inf far entry may rank
        before a +inf now-lane entry by seq).
        """
        nowq = self._nowq
        nptr = self._nptr
        have_now = nptr < len(nowq)
        ptr = self._ptr
        cur = self._cur
        if ptr >= len(cur):
            heap = self._heap
            if heap:
                if have_now and nowq[nptr] < heap[0]:
                    entry = nowq[nptr]
                    nowq[nptr] = None   # drop the ref: event pools check
                    self._nptr = nptr + 1   # refcounts after dispatch
                    return entry
                return heappop(heap)
            if self._n_future:
                self._advance()
                ptr = self._ptr
            elif have_now:
                entry = nowq[nptr]
                nowq[nptr] = None
                self._nptr = nptr + 1
                return entry
            else:
                raise IndexError("pop from empty CalendarQueue")
        if have_now and nowq[nptr] < cur[ptr]:
            entry = nowq[nptr]
            nowq[nptr] = None
            self._nptr = nptr + 1
            return entry
        entry = cur[ptr]
        cur[ptr] = None
        self._ptr = ptr + 1
        return entry

    def peek_time(self) -> float:
        """Time of the next entry, or +inf when empty (may turn the page)."""
        if self._ptr < len(self._cur):
            t = self._cur[self._ptr][0]
        elif self._heap:
            t = self._heap[0][0]
        elif self._n_future:
            self._advance()
            t = self._cur[self._ptr][0]
        else:
            t = _INF
        nptr = self._nptr
        if nptr < len(self._nowq):
            nt = self._nowq[nptr][0]
            if nt < t:
                return nt
        return t

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """Queue-discipline counters for the kernel self-profiler."""
        refills = self._refills
        return {
            "mode": "cal" if self._cal else "heap",
            "forced": self._forced or "auto",
            "pending": len(self),
            "now_pending": len(self._nowq) - self._nptr,
            "width": float(self._width),
            "bucket_count": len(self._buckets),
            "far_pending": len(self._far),
            "avg_bucket_occupancy": (
                self._refill_events / refills if refills else 0.0),
            "refills": refills,
            "insorts": self._insorts,
            "far_pushed": self._far_pushed,
            "upgrades": self._upgrades,
            "downgrades": self._downgrades,
            "resizes": self._resizes,
            "fallback_rate": (
                self._downgrades / self._upgrades if self._upgrades else 0.0),
            "heap_mode_locked": self._no_cal,
        }
