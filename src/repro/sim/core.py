"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`Environment` owns an event queue and a clock; *processes* are Python
generators that ``yield`` events (most commonly :class:`Timeout`) and are
resumed when those events fire.  The kernel is deterministic: events that
fire at the same timestamp are processed in schedule order.

The whole reproduction (host LSM, device model, workload drivers, samplers)
is built from processes scheduled on one Environment, which is what lets us
report per-second time series equivalent to the paper's wall-clock
measurements.

Scheduling runs on a :class:`~repro.sim.calqueue.CalendarQueue`: a binary
heap while the pending population is small, upgrading to O(1)-amortised
calendar buckets for the timeout-dominated steady state (see calqueue.py
for the structural order-exactness argument).  Hot event classes —
:class:`Timeout`, bare :class:`Event`, and the internal process-resume
event — are recycled through per-environment freelists, gated by a
refcount check so pooling can never resurrect an object something still
references.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from time import perf_counter_ns
from typing import Any, Callable, Generator, Iterable, Optional

from .calqueue import _COMPACT_PTR, CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "MacroStats",
    "SimulationError",
    "KernelProfile",
    "install_kernel_profiler",
    "uninstall_kernel_profiler",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the queue, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events hold a value (or an exception) and a list of callbacks invoked
    when the event is processed.  Processes waiting on an event are resumed
    through such callbacks.
    """

    __slots__ = ("env", "callbacks", "_proc", "_value", "_ok", "_state",
                 "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        # Fast slot: the single Process waiting on this event, when that
        # process registered first and alone.  The dispatch loops resume it
        # inline, skipping the _resume trampoline frame; any further
        # waiters go through the callbacks list as usual.
        self._proc: Optional["Process"] = None
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._seq += 1
        # succeed() always fires at the current time, so it lands on the
        # CalendarQueue's now lane: a pre-sorted append (the clock never
        # moves backwards, seq strictly increases) that skips the heap and
        # its same-timestamp tuple-comparison walks entirely.  Inline
        # mirror of CalendarQueue.push_now — succeed is hot enough
        # (resource grants, ping-pong handoffs) to warrant it.
        q = env._queue
        nowq = q._nowq
        nowq.append((env._now, 1, env._seq, self))
        if q._nptr > _COMPACT_PTR:
            del nowq[:q._nptr]
            q._nptr = 0
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire now, raising ``exception`` in waiters."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        proc = self._proc
        if proc is not None:
            # Registered before anything in the list, so resumes first.
            self._proc = None
            proc._resume(self)
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody handled the failure: surface it to the caller of run().
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the kernel's dominant allocation (every driver loop,
    sampler tick, and flush poll creates one), so ``Environment.timeout``
    recycles processed instances through a freelist.  Construction here is
    flattened (no ``super().__init__`` chain) for the cold path.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._proc = None
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        env._seq += 1
        # Mirror of the CalendarQueue push seam (see calqueue.py).
        q = env._queue
        entry = (env._now + delay, 1, env._seq, self)
        if q._cal:
            q.push(entry)
        else:
            heap = q._heap
            heappush(heap, entry)
            if len(heap) > q._upgrade_at:
                q._consider_upgrade()


class _ProcessResume(Event):
    """Internal event used to bootstrap / resume / interrupt a process."""

    __slots__ = ()


class Process(Event):
    """A running generator on the simulation timeline.

    A Process is itself an Event that fires when the generator returns
    (with the generator's return value) or raises.  Other processes can
    therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name", "_send", "_resume_cb",
                 "_resume_ev")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._resume_cb = self._resume          # cached: one resume per event
        self._target: Optional[Event] = None  # event the process waits on
        self.name = name or getattr(generator, "__name__", "process")
        # One reusable resume event bootstraps the process and is recycled
        # for every immediate resume (already-fired yield targets).  It is
        # reusable whenever it is not sitting on the queue (_PROCESSED).
        ppool = env._presume_pool
        boot = ppool.pop() if ppool else _ProcessResume(env)
        boot._state = _TRIGGERED
        boot._proc = self
        self._resume_ev = boot
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None:
            # Detach from the pending target so its firing cannot resume the
            # process a second time.  If the target already fired, its fast
            # slot / callbacks list were detached before dispatch, so both
            # branches miss harmlessly.
            if self._target._proc is self:
                self._target._proc = None
            else:
                try:
                    self._target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
            self._target = None
        env = self.env
        ppool = env._presume_pool
        interrupt_ev = ppool.pop() if ppool else _ProcessResume(env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        interrupt_ev._proc = self
        env._schedule(interrupt_ev, priority=True)

    # -- internal ------------------------------------------------------
    def _finish(self, ok: bool, value: Any) -> None:
        """Terminate: fire this Process-as-Event with the final value."""
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self._target = None
        self.env._schedule(self)

    def _resume_processed(self, next_target: Event) -> None:
        """Wait on an already-fired event: resume again at this timestamp,
        recycling this process's resume event when it is off-queue."""
        env = self.env
        resume = self._resume_ev
        if resume._state != _PROCESSED:
            # Still scheduled (e.g. detached by an interrupt at this
            # timestamp): it cannot carry a second resume.
            ppool = env._presume_pool
            resume = ppool.pop() if ppool else _ProcessResume(env)
            self._resume_ev = resume
        else:
            resume._defused = False
        resume._ok = next_target._ok
        resume._value = next_target._value
        if not next_target._ok:
            resume._defused = True
            next_target._defused = True
        resume._state = _TRIGGERED
        resume._proc = self
        env._schedule(resume)
        self._target = resume

    def _resume(self, event: Event) -> None:
        # NOTE: run() inlines this method for the fast-slot path (one
        # Python frame per event saved); behavioural changes here must be
        # mirrored in the run() loop bodies.
        if self._state != _PENDING:  # e.g. interrupted after termination
            return
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_target = self._send(event._value)
            else:
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self._finish(False, exc)
            return
        env._active_process = None

        # Duck-typed Event check: anything with kernel state and a callback
        # list is an Event; the try/except costs nothing on the hot path.
        try:
            state = next_target._state
            cbs = next_target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, "
                f"expected an Event"
            ) from None
        if state == _PROCESSED:
            self._resume_processed(next_target)
        elif next_target._proc is None and not cbs:
            # First, sole waiter: take the fast slot.  Failable events are
            # defused up front — the waiter receives any failure via
            # generator.throw, so the kernel must not re-raise it at
            # dispatch time.  (Timeouts can never fail; skipping the store
            # keeps their recycle path cheap.)
            if type(next_target) is not Timeout:
                next_target._defused = True
            next_target._proc = self
            self._target = next_target
        else:
            next_target._defused = True
            cbs.append(self._resume_cb)
            self._target = next_target


class _MultiEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._state == _PROCESSED:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == _PROCESSED
        }


class AllOf(_MultiEvent):
    """Fires when all child events have fired; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_MultiEvent):
    """Fires when the first child event fires; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._results())


class MacroStats:
    """Coalescing counters for macro (channel-burst) device events.

    Device layers that batch multiple page operations into one scheduled
    kernel event — NAND channel bursts, chunked bulk-scan DMA — report
    here: ``ops`` physical operations were carried by ``events`` scheduled
    timeouts across ``bursts`` burst calls.  ``coalesce_factor``
    (ops per scheduled event) is the macro-event payoff figure the kernel
    self-profiler surfaces.
    """

    __slots__ = ("ops", "events", "bursts")

    def __init__(self):
        self.ops = 0
        self.events = 0
        self.bursts = 0

    @property
    def coalesce_factor(self) -> float:
        return self.ops / self.events if self.events else 0.0

    def to_dict(self) -> dict:
        return {
            "ops": int(self.ops),
            "events": int(self.events),
            "bursts": int(self.bursts),
            "coalesce_factor": float(self.coalesce_factor),
        }


# Upper bound on recycled instances kept per freelist per Environment.
# Sized to cover every concurrently-pending hot event in real experiments
# (drivers + samplers + pollers is tens, not hundreds) while bounding idle
# memory.
_TIMEOUT_POOL_CAP = 256


class Environment:
    """The simulation clock and event queue."""

    # Kernel-hot attributes live in slots (faster loads/stores on the
    # per-event path); __dict__ stays available for extension layers that
    # hang state off the env (faults, tracer, telemetry, ...).
    __slots__ = ("_now", "_queue", "_seq", "_timeout_pool", "_event_pool",
                 "_presume_pool", "_active_process", "__dict__")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue = CalendarQueue()
        self._seq = 0
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self._presume_pool: list[_ProcessResume] = []
        self._active_process: Optional[Process] = None
        # Optional repro.faults.FaultRegistry; fault probes throughout the
        # stack check this slot and are no-ops while it is None.
        self.faults = None
        # Optional repro.obs.Tracer; trace probes follow the same pattern —
        # one attribute read and zero allocations while this stays None.
        self.tracer = None
        # Optional repro.obs.TelemetryHub; telemetry publishers follow the
        # same guard, so unmonitored runs stay bit-identical.
        self.telemetry = None
        # Optional repro.obs.LineageProfiler; per-op critical-path probes
        # throughout the stack check this slot — one attribute read, zero
        # allocations while it stays None.
        self.lineage = None
        # Optional KernelProfile; run() delegates to the instrumented loop
        # while installed and is untouched otherwise.
        self.kernel_profiler = None
        # Optional repro.obs.Journal flight recorder; run() delegates to
        # the journaled loop while installed.  Purely passive — it never
        # schedules events — so journaled trajectories are bit-identical.
        self.journal = None
        # Macro-event coalescing counters (always on: three int adds per
        # burst, no per-op cost).
        self.macro = MacroStats()

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled on this environment.

        Every scheduled event is eventually processed when ``run()`` drains
        the queue, so this doubles as the processed-event count for
        events/sec reporting (``repro.perf``, bench baselines) and is
        stable across kernel-internal changes like event pooling.
        """
        return self._seq

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        self._seq += 1
        q = self._queue
        if delay == 0.0 and not priority:
            # Fires at exactly the current time: now lane (process
            # boot/finish, fail, immediate resumes).  See Event.succeed.
            nowq = q._nowq
            nowq.append((self._now, 1, self._seq, event))
            if q._nptr > _COMPACT_PTR:
                del nowq[:q._nptr]
                q._nptr = 0
            return
        # priority events (interrupts) sort before same-time ordinary
        # events; the (time, priority, seq) key ranks them ahead of the
        # now lane's priority-1 entries at dequeue.
        entry = (self._now + delay, 0 if priority else 1, self._seq, event)
        if q._cal:
            q.push(entry)
        else:
            heap = q._heap
            heappush(heap, entry)
            if len(heap) > q._upgrade_at:
                q._consider_upgrade()

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a pre-built pending event to fire at absolute time."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        if event._state != _PENDING:
            raise SimulationError("event already triggered")
        event._ok = True
        event._state = _TRIGGERED
        self._seq += 1
        q = self._queue
        entry = (when, 1, self._seq, event)
        if q._cal:
            q.push(entry)
        else:
            heap = q._heap
            heappush(heap, entry)
            if len(heap) > q._upgrade_at:
                q._consider_upgrade()

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create (or recycle) a bare :class:`Event`.

        Recycled instances are reset at recycle time (see the dispatch
        loops) and only ever enter the freelist when nothing else
        references them, so reuse is indistinguishable from construction.
        """
        pool = self._event_pool
        if pool:
            return pool.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create (or recycle) a :class:`Timeout` firing ``delay`` from now.

        Recycled instances behave identically to fresh ones: the freelist
        only ever holds processed Timeouts that nothing else references
        (checked by refcount in :meth:`run`), and scheduling order is
        governed purely by the (time, priority, seq) key, so pooling
        cannot perturb the determinism contract.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay: {delay!r}")
            ev = pool.pop()
            ev.delay = delay
            ev._value = value
            # Neither _ok nor _defused is reset: a Timeout can never fail,
            # so _ok stays True for the object's whole lifetime and
            # _defused is never consulted (the failure re-raise is the
            # only reader and requires _ok False).
            ev._state = _TRIGGERED
            seq = self._seq + 1
            self._seq = seq
            # Mirror of the CalendarQueue push seam (see calqueue.py).
            q = self._queue
            entry = (self._now + delay, 1, seq, ev)
            if q._cal:
                q.push(entry)
            else:
                heap = q._heap
                heappush(heap, entry)
                if len(heap) > q._upgrade_at:
                    q._consider_upgrade()
            return ev
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def _recycle(self, event: Event) -> None:
        """Return a processed hot-class event to its freelist when nothing
        else references it (cold-path mirror of the inline recycle blocks
        in :meth:`run`)."""
        # Refcount 3 == caller's local + our parameter + getrefcount's
        # argument: nothing outside this call chain references the event.
        cls = type(event)
        if cls is Timeout:
            if (len(self._timeout_pool) < _TIMEOUT_POOL_CAP
                    and sys.getrefcount(event) == 3):
                self._timeout_pool.append(event)
        elif cls is Event:
            if (len(self._event_pool) < _TIMEOUT_POOL_CAP
                    and sys.getrefcount(event) == 3):
                event._value = None
                event._state = _PENDING
                event._ok = True
                event._defused = False
                self._event_pool.append(event)
        elif cls is _ProcessResume:
            if (len(self._presume_pool) < _TIMEOUT_POOL_CAP
                    and sys.getrefcount(event) == 3):
                event._value = None
                event._state = _PENDING
                event._ok = True
                event._defused = False
                self._presume_pool.append(event)

    def step(self) -> None:
        """Process the single next event."""
        q = self._queue
        if not len(q):
            raise SimulationError("no more events")
        when, _prio, _seq, event = q._pop_entry()
        self._now = when
        jr = self.journal
        if jr is not None:
            if when >= jr._next_ckpt:
                jr._checkpoint(when)
            proc = event._proc
            if proc is not None:
                jname = proc.name
            else:
                jname = ""
                for cb in event.callbacks:
                    owner = getattr(cb, "__self__", None)
                    if type(owner) is Process:
                        jname = owner.name
                        break
            jr.record_event(when, jname, type(event).__name__)
        event._run_callbacks()
        self._recycle(event)

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._queue.peek_time()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp or an Event; with an Event, returns its
        value once it fires.

        The loop inlines :meth:`step` and the event-dispatch body
        (``Event._run_callbacks``) with every per-step lookup cached in
        locals — this is the hottest code in the repository, every
        simulated second of every experiment passes through it.  The
        dequeue side reads the CalendarQueue's current bucket and heap
        directly (the queue mutates those list objects only in place, see
        calqueue.py); determinism (same-timestamp schedule order,
        interrupt priority) lives entirely in the ``(time, priority,
        seq)`` entry key, which every mode shares.  The loop variants
        below must stay semantically in lockstep with ``step()``.

        Processed hot-class events that nothing else references (refcount
        check) are recycled into the per-class freelists.
        """
        if self.kernel_profiler is not None:
            return self._run_profiled(until)
        if self.journal is not None:
            return self._run_journaled(until)
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"until {deadline} is in the past (now={self._now})")

        # Per-step lookups hoisted out of the loop.  cur/heap are the
        # CalendarQueue's storage lists; the queue only ever mutates them
        # in place, so the local bindings stay valid across mode switches.
        q = self._queue
        cur = q._cur
        heap = q._heap
        nowq = q._nowq
        pop = heappop
        pool = self._timeout_pool
        epool = self._event_pool
        ppool = self._presume_pool
        pool_cap = _TIMEOUT_POOL_CAP
        getrefcount = sys.getrefcount
        PENDING = _PENDING
        PROCESSED = _PROCESSED
        timeout_cls = Timeout
        event_cls = Event
        presume_cls = _ProcessResume

        if stop_event is not None:
            # Stop-event runs (rare: drain-to-signal in tests and chaos
            # harnesses) use the compact reference dispatch; the inlined
            # variants below cover the perf-critical modes.
            stopped: list = []
            if stop_event._state != _PROCESSED:
                # Cheaper than re-reading stop_event._state every
                # iteration: one sentinel callback flips a local flag.
                stop_event.callbacks.append(stopped.append)
            while len(q):
                if stopped:
                    break
                when, _prio, _seq, event = q._pop_entry()
                self._now = when
                event._run_callbacks()
                self._recycle(event)
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value

        # Two inlined loop variants (drain / deadline) so the per-step body
        # carries only the checks its mode needs.  Dispatch is identical in
        # both: the fast-slot waiter (``_proc``) is resumed *inline*,
        # saving the Process._resume trampoline frame — the inline block
        # mirrors Process._resume, keep the two in lockstep — then
        # callbacks run, then the dead event is recycled if unreferenced.
        # Events are unpacked straight out of the bucket/heap (no entry
        # local survives dispatch): a live entry tuple would hold a hidden
        # reference and silently defeat every refcount-gated freelist.
        # The dequeue head picks min(now-lane head, bucket/heap head) with
        # at most one tuple comparison; when only the now lane is occupied
        # (signalling steady state) pops are straight list indexing with
        # zero comparisons.  Future buckets must be paged in before the
        # now lane may be served alone — a +inf far entry can rank before
        # a +inf now-lane entry by seq (see CalendarQueue._pop_entry).
        if deadline == float("inf"):
            while True:
                nptr = q._nptr
                ptr = q._ptr
                if ptr < len(cur):
                    if nptr < len(nowq) and nowq[nptr] < cur[ptr]:
                        when, _prio, _seq, event = nowq[nptr]
                        nowq[nptr] = None
                        q._nptr = nptr + 1
                    else:
                        when, _prio, _seq, event = cur[ptr]
                        cur[ptr] = None
                        q._ptr = ptr + 1
                elif heap:
                    if nptr < len(nowq) and nowq[nptr] < heap[0]:
                        when, _prio, _seq, event = nowq[nptr]
                        nowq[nptr] = None
                        q._nptr = nptr + 1
                    else:
                        when, _prio, _seq, event = pop(heap)
                elif q._n_future:
                    q._advance()
                    continue
                elif nptr < len(nowq):
                    when, _prio, _seq, event = nowq[nptr]
                    nowq[nptr] = None
                    q._nptr = nptr + 1
                else:
                    break
                self._now = when
                proc = event._proc
                if proc is not None:
                    event._state = PROCESSED
                    event._proc = None
                    if proc._state == PENDING:
                        self._active_process = proc
                        try:
                            if event._ok:
                                nt = proc._send(event._value)
                            else:
                                nt = proc._generator.throw(event._value)
                        except StopIteration as stop:
                            self._active_process = None
                            proc._finish(True, stop.value)
                        except BaseException as exc:
                            self._active_process = None
                            proc._finish(False, exc)
                        else:
                            self._active_process = None
                            try:
                                nstate = nt._state
                                ncbs = nt.callbacks
                            except AttributeError:
                                raise SimulationError(
                                    f"process {proc.name!r} yielded "
                                    f"{nt!r}, expected an Event"
                                ) from None
                            if nstate == PROCESSED:
                                proc._resume_processed(nt)
                            elif nt._proc is None and not ncbs:
                                if type(nt) is not timeout_cls:
                                    nt._defused = True
                                nt._proc = proc
                                proc._target = nt
                            else:
                                nt._defused = True
                                ncbs.append(proc._resume_cb)
                                proc._target = nt
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    # No failure check: fast-slot registration defuses
                    # every failable event class up front.
                else:
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event._defused:
                        # Nobody handled the failure: surface it.
                        raise event._value
                cls = type(event)
                if cls is timeout_cls:
                    if (len(pool) < pool_cap
                            and getrefcount(event) == 2):  # local + arg only
                        pool.append(event)
                elif cls is event_cls:
                    if (len(epool) < pool_cap
                            and getrefcount(event) == 2):
                        event._value = None
                        event._state = 0
                        event._ok = True
                        event._defused = False
                        epool.append(event)
                elif cls is presume_cls:
                    if (len(ppool) < pool_cap
                            and getrefcount(event) == 2):
                        event._value = None
                        event._state = 0
                        event._ok = True
                        event._defused = False
                        ppool.append(event)
        else:
            while True:
                # SimPy semantics: the deadline is exclusive — events
                # scheduled exactly at `until` are left unprocessed.
                # Peek-commit per lane: the winning head is checked
                # against the deadline before it is consumed.
                nptr = q._nptr
                ptr = q._ptr
                if ptr < len(cur):
                    if nptr < len(nowq) and nowq[nptr] < cur[ptr]:
                        entry = nowq[nptr]
                        if entry[0] >= deadline:
                            self._now = deadline
                            return None
                        nowq[nptr] = None
                        q._nptr = nptr + 1
                    else:
                        entry = cur[ptr]
                        if entry[0] >= deadline:
                            self._now = deadline
                            return None
                        cur[ptr] = None
                        q._ptr = ptr + 1
                elif heap:
                    if nptr < len(nowq) and nowq[nptr] < heap[0]:
                        entry = nowq[nptr]
                        if entry[0] >= deadline:
                            self._now = deadline
                            return None
                        nowq[nptr] = None
                        q._nptr = nptr + 1
                    else:
                        entry = heap[0]
                        if entry[0] >= deadline:
                            self._now = deadline
                            return None
                        pop(heap)
                elif q._n_future:
                    q._advance()
                    continue
                elif nptr < len(nowq):
                    entry = nowq[nptr]
                    if entry[0] >= deadline:
                        self._now = deadline
                        return None
                    nowq[nptr] = None
                    q._nptr = nptr + 1
                else:
                    break
                when, _prio, _seq, event = entry
                entry = None    # drop the tuple ref: freelists check refcounts
                self._now = when
                proc = event._proc
                if proc is not None:
                    event._state = PROCESSED
                    event._proc = None
                    if proc._state == PENDING:
                        self._active_process = proc
                        try:
                            if event._ok:
                                nt = proc._send(event._value)
                            else:
                                nt = proc._generator.throw(event._value)
                        except StopIteration as stop:
                            self._active_process = None
                            proc._finish(True, stop.value)
                        except BaseException as exc:
                            self._active_process = None
                            proc._finish(False, exc)
                        else:
                            self._active_process = None
                            try:
                                nstate = nt._state
                                ncbs = nt.callbacks
                            except AttributeError:
                                raise SimulationError(
                                    f"process {proc.name!r} yielded "
                                    f"{nt!r}, expected an Event"
                                ) from None
                            if nstate == PROCESSED:
                                proc._resume_processed(nt)
                            elif nt._proc is None and not ncbs:
                                if type(nt) is not timeout_cls:
                                    nt._defused = True
                                nt._proc = proc
                                proc._target = nt
                            else:
                                nt._defused = True
                                ncbs.append(proc._resume_cb)
                                proc._target = nt
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    # No failure check: fast-slot registration defuses
                    # every failable event class up front.
                else:
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event._defused:
                        # Nobody handled the failure: surface it.
                        raise event._value
                cls = type(event)
                if cls is timeout_cls:
                    if (len(pool) < pool_cap
                            and getrefcount(event) == 2):  # local + arg only
                        pool.append(event)
                elif cls is event_cls:
                    if (len(epool) < pool_cap
                            and getrefcount(event) == 2):
                        event._value = None
                        event._state = 0
                        event._ok = True
                        event._defused = False
                        epool.append(event)
                elif cls is presume_cls:
                    if (len(ppool) < pool_cap
                            and getrefcount(event) == 2):
                        event._value = None
                        event._state = 0
                        event._ok = True
                        event._defused = False
                        ppool.append(event)

        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None

    def _run_profiled(self, until: Optional[float | Event] = None) -> Any:
        """run() with kernel self-profiling: generic event dispatch plus
        per-class counters and coarse wall-clock sampling.

        Semantically in lockstep with :meth:`run`'s inlined loops — same
        queue order, same ``_run_callbacks`` behaviour (the inlined
        fast-slot path mirrors it by construction), same freelist recycle
        rule — so profiled runs follow the identical trajectory, just
        slower.
        """
        prof = self.kernel_profiler
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until {deadline} is in the past (now={self._now})")

        q = self._queue

        stopped: list = []
        if stop_event is not None and stop_event._state != _PROCESSED:
            stop_event.callbacks.append(stopped.append)

        by_class = prof.events_by_class
        resumes = prof.resumes_by_process
        sampled_ns = prof.sampled_wall_ns_by_class
        sampled_n = prof.sampled_events_by_class
        sample_every = prof.sample_every
        jr = self.journal  # profiled runs can journal too
        wall_t0 = perf_counter_ns()
        try:
            while len(q):
                if stopped and stop_event is not None:
                    break
                if q.peek_time() >= deadline:
                    self._now = deadline
                    return None
                when, _prio, _seq, event = q._pop_entry()
                self._now = when
                prof.heap_pops += 1
                cls = type(event).__name__
                by_class[cls] = by_class.get(cls, 0) + 1
                jname = ""
                proc = event._proc
                if proc is not None:
                    jname = name = proc.name
                    resumes[name] = resumes.get(name, 0) + 1
                    for cb in event.callbacks:
                        # Further process waiters queue behind the fast
                        # slot; count their resumes too.
                        owner = getattr(cb, "__self__", None)
                        if type(owner) is Process:
                            name = owner.name
                            resumes[name] = resumes.get(name, 0) + 1
                else:
                    for cb in event.callbacks:
                        owner = getattr(cb, "__self__", None)
                        if type(owner) is Process:
                            name = owner.name
                            if not jname:
                                jname = name
                            resumes[name] = resumes.get(name, 0) + 1
                if jr is not None:
                    if when >= jr._next_ckpt:
                        jr._checkpoint(when)
                    jr.record_event(when, jname, cls)
                if prof.heap_pops % sample_every == 0:
                    t0 = perf_counter_ns()
                    event._run_callbacks()
                    dt = perf_counter_ns() - t0
                    sampled_ns[cls] = sampled_ns.get(cls, 0) + dt
                    sampled_n[cls] = sampled_n.get(cls, 0) + 1
                else:
                    event._run_callbacks()
                npooled = (len(self._timeout_pool) + len(self._event_pool)
                           + len(self._presume_pool))
                self._recycle(event)
                if (len(self._timeout_pool) + len(self._event_pool)
                        + len(self._presume_pool)) > npooled:
                    prof.pool_recycled += 1
        finally:
            prof.wall_ns += perf_counter_ns() - wall_t0

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None

    def _run_journaled(self, until: Optional[float | Event] = None) -> Any:
        """run() with the flight recorder: generic event dispatch plus one
        journal record per executed event and a digest checkpoint whenever
        the popped event crosses the next boundary.

        Semantically in lockstep with :meth:`run`'s inlined loops (same
        queue order, ``_run_callbacks`` dispatch, same freelist recycle
        rule); the journal is write-only side state, so journaled runs
        follow the identical trajectory.  The checkpoint fires *before*
        the boundary-crossing event dispatches, so the digest captures
        layer state as of the boundary itself.
        """
        jr = self.journal
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until {deadline} is in the past (now={self._now})")

        q = self._queue
        process_cls = Process
        record = jr.record_event

        stopped: list = []
        if stop_event is not None and stop_event._state != _PROCESSED:
            stop_event.callbacks.append(stopped.append)

        while len(q):
            if stopped and stop_event is not None:
                break
            if q.peek_time() >= deadline:
                self._now = deadline
                return None
            when, _prio, _seq, event = q._pop_entry()
            self._now = when
            if when >= jr._next_ckpt:
                jr._checkpoint(when)
            proc = event._proc
            if proc is not None:
                jname = proc.name
            else:
                jname = ""
                for cb in event.callbacks:
                    owner = getattr(cb, "__self__", None)
                    if type(owner) is process_cls:
                        jname = owner.name
                        break
            record(when, jname, type(event).__name__)
            event._run_callbacks()
            self._recycle(event)

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None


class KernelProfile:
    """Wall-clock self-profile of one Environment's event loop.

    Collected by :meth:`Environment._run_profiled` while installed via
    :func:`install_kernel_profiler`.  All counters are exact except the
    wall-ns-per-class figures, which sample one event in ``sample_every``
    (timing every dispatch would perturb the very loop being measured);
    :meth:`to_dict` scales the samples back up to estimated totals.

    Everything here is wall-clock instrumentation — the simulated
    trajectory of a profiled run is bit-identical to an unprofiled one.
    ``to_dict`` additionally snapshots the scheduler's queue-discipline
    stats (mode, bucket occupancy, fallback rate) and the macro-event
    coalescing counters.
    """

    def __init__(self, sample_every: int = 16):
        self.sample_every = max(1, int(sample_every))
        self.events_by_class: dict[str, int] = {}
        self.resumes_by_process: dict[str, int] = {}
        self.sampled_wall_ns_by_class: dict[str, int] = {}
        self.sampled_events_by_class: dict[str, int] = {}
        self.heap_pops = 0
        self.pool_recycled = 0
        self.timeout_requests = 0
        self.timeout_pool_hits = 0
        self.resource_requests = 0
        self.resource_grants = 0
        self.resource_queued = 0
        self.wall_ns = 0
        self._env: Optional[Environment] = None
        self._seq0 = 0

    @property
    def heap_pushes(self) -> int:
        """Every ``_seq`` increment pairs with exactly one queue push (in
        ``_schedule``, ``schedule_at``, ``timeout()``, ``succeed()`` and
        ``Timeout.__init__``), so the push count is the ``_seq`` delta."""
        if self._env is None:
            return 0
        return self._env._seq - self._seq0

    @property
    def timeout_pool_hit_rate(self) -> float:
        if self.timeout_requests == 0:
            return 0.0
        return self.timeout_pool_hits / self.timeout_requests

    def estimated_wall_ns_by_class(self) -> dict[str, float]:
        """Scale the sampled per-class wall time up to estimated totals."""
        out: dict[str, float] = {}
        for cls, total in self.events_by_class.items():
            n = self.sampled_events_by_class.get(cls, 0)
            if n:
                out[cls] = self.sampled_wall_ns_by_class[cls] / n * total
        return out

    def to_dict(self) -> dict:
        env = self._env
        return {
            "heap_pushes": int(self.heap_pushes),
            "heap_pops": int(self.heap_pops),
            "events_by_class": dict(self.events_by_class),
            "resumes_by_process": dict(self.resumes_by_process),
            "timeout_requests": int(self.timeout_requests),
            "timeout_pool_hits": int(self.timeout_pool_hits),
            "timeout_pool_hit_rate": float(self.timeout_pool_hit_rate),
            "pool_recycled": int(self.pool_recycled),
            "resource_requests": int(self.resource_requests),
            "resource_grants": int(self.resource_grants),
            "resource_queued": int(self.resource_queued),
            "sample_every": int(self.sample_every),
            "sampled_events_by_class": dict(self.sampled_events_by_class),
            "wall_ns": int(self.wall_ns),
            "estimated_wall_ns_by_class": {
                k: float(v)
                for k, v in self.estimated_wall_ns_by_class().items()},
            "queue": env._queue.stats() if env is not None else {},
            "macro": env.macro.to_dict() if env is not None else {},
        }


def install_kernel_profiler(env: Environment,
                            sample_every: int = 16) -> KernelProfile:
    """Attach a :class:`KernelProfile` to ``env``.

    ``env.timeout`` is shadowed with a counting wrapper (instance dict
    shadows the class method) so pool hit rate can be measured without
    touching the class; :func:`uninstall_kernel_profiler` restores it.
    """
    if env.kernel_profiler is not None:
        raise SimulationError("kernel profiler already installed")
    prof = KernelProfile(sample_every=sample_every)
    prof._env = env
    prof._seq0 = env._seq
    env.kernel_profiler = prof
    orig_timeout = env.timeout

    def counting_timeout(delay: float, value: Any = None) -> Timeout:
        prof.timeout_requests += 1
        if env._timeout_pool:
            prof.timeout_pool_hits += 1
        return orig_timeout(delay, value)

    env.timeout = counting_timeout
    return prof


def uninstall_kernel_profiler(env: Environment) -> Optional[KernelProfile]:
    """Detach the profiler and restore the un-shadowed ``env.timeout``."""
    prof = env.kernel_profiler
    env.kernel_profiler = None
    env.__dict__.pop("timeout", None)
    return prof
