"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`Environment` owns an event heap and a clock; *processes* are Python
generators that ``yield`` events (most commonly :class:`Timeout`) and are
resumed when those events fire.  The kernel is deterministic: events that
fire at the same timestamp are processed in schedule order.

The whole reproduction (host LSM, device model, workload drivers, samplers)
is built from processes scheduled on one Environment, which is what lets us
report per-second time series equivalent to the paper's wall-clock
measurements.
"""

from __future__ import annotations

import heapq
import sys
from heapq import heappop, heappush
from time import perf_counter_ns
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "KernelProfile",
    "install_kernel_profiler",
    "uninstall_kernel_profiler",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events hold a value (or an exception) and a list of callbacks invoked
    when the event is processed.  Processes waiting on an event are resumed
    through such callbacks.
    """

    __slots__ = ("env", "callbacks", "_proc", "_value", "_ok", "_state",
                 "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        # Fast slot: the single Process waiting on this event, when that
        # process is the *only* waiter and the event is a Timeout.  run()
        # resumes it inline, skipping the _resume trampoline frame; any
        # further waiters go through the callbacks list as usual.
        self._proc: Optional["Process"] = None
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire now, raising ``exception`` in waiters."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        proc = self._proc
        if proc is not None:
            # Registered before anything in the list, so resumes first.
            self._proc = None
            proc._resume(self)
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody handled the failure: surface it to the caller of run().
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts are the kernel's dominant allocation (every driver loop,
    sampler tick, and flush poll creates one), so ``Environment.timeout``
    recycles processed instances through a freelist.  Construction here is
    flattened (no ``super().__init__`` chain) for the cold path.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._proc = None
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        env._seq += 1
        heappush(env._heap, (env._now + delay, 1, env._seq, self))


class _ProcessResume(Event):
    """Internal event used to bootstrap / resume a process."""

    __slots__ = ()


class Process(Event):
    """A running generator on the simulation timeline.

    A Process is itself an Event that fires when the generator returns
    (with the generator's return value) or raises.  Other processes can
    therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name", "_send", "_resume_cb",
                 "_resume_ev")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._resume_cb = self._resume          # cached: one resume per event
        self._target: Optional[Event] = None  # event the process waits on
        self.name = name or getattr(generator, "__name__", "process")
        # One reusable resume event bootstraps the process and is recycled
        # for every immediate resume (already-fired yield targets).  It is
        # reusable whenever it is not sitting on the heap (_PROCESSED).
        boot = _ProcessResume(env)
        boot._ok = True
        boot._state = _TRIGGERED
        boot.callbacks.append(self._resume_cb)
        self._resume_ev = boot
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None:
            # Detach from the pending target so its firing cannot resume the
            # process a second time.  If the target already fired, its fast
            # slot / callbacks list were detached before dispatch, so both
            # branches miss harmlessly.
            if self._target._proc is self:
                self._target._proc = None
            else:
                try:
                    self._target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
            self._target = None
        interrupt_ev = _ProcessResume(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        interrupt_ev.callbacks.append(self._resume_cb)
        self.env._schedule(interrupt_ev, priority=True)

    # -- internal ------------------------------------------------------
    def _finish(self, ok: bool, value: Any) -> None:
        """Terminate: fire this Process-as-Event with the final value."""
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self._target = None
        self.env._schedule(self)

    def _resume_processed(self, next_target: Event) -> None:
        """Wait on an already-fired event: resume again at this timestamp,
        recycling this process's resume event when it is off-heap."""
        env = self.env
        resume = self._resume_ev
        if resume._state != _PROCESSED:
            # Still scheduled (e.g. detached by an interrupt at this
            # timestamp): it cannot carry a second resume.
            resume = _ProcessResume(env)
            self._resume_ev = resume
        else:
            resume._defused = False
        resume._ok = next_target._ok
        resume._value = next_target._value
        if not next_target._ok:
            resume._defused = True
            next_target._defused = True
        resume._state = _TRIGGERED
        resume.callbacks.append(self._resume_cb)
        env._schedule(resume)
        self._target = resume

    def _resume(self, event: Event) -> None:
        # NOTE: run() inlines this method for the Timeout fast path (one
        # Python frame per event saved); behavioural changes here must be
        # mirrored in both run() loop bodies.
        if self._state != _PENDING:  # e.g. interrupted after termination
            return
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_target = self._send(event._value)
            else:
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self._finish(False, exc)
            return
        env._active_process = None

        # Duck-typed Event check: anything with kernel state and a callback
        # list is an Event; the try/except costs nothing on the hot path.
        try:
            state = next_target._state
            cbs = next_target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, "
                f"expected an Event"
            ) from None
        if state == _PROCESSED:
            self._resume_processed(next_target)
        elif (type(next_target) is Timeout and next_target._proc is None
                and not cbs):
            # Sole waiter on a pending Timeout: take the fast slot.  No
            # defusing needed — a Timeout can never fail.
            next_target._proc = self
            self._target = next_target
        else:
            # A waiting process will receive any failure via generator.throw,
            # so the kernel must not re-raise it at callback time.
            next_target._defused = True
            cbs.append(self._resume_cb)
            self._target = next_target


class _MultiEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._state == _PROCESSED:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == _PROCESSED
        }


class AllOf(_MultiEvent):
    """Fires when all child events have fired; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_MultiEvent):
    """Fires when the first child event fires; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._results())


# Upper bound on recycled Timeout instances kept per Environment.  Sized to
# cover every concurrently-pending Timeout in real experiments (drivers +
# samplers + pollers is tens, not hundreds) while bounding idle memory.
_TIMEOUT_POOL_CAP = 256


class Environment:
    """The simulation clock and event queue."""

    # Kernel-hot attributes live in slots (faster loads/stores on the
    # per-event path); __dict__ stays available for extension layers that
    # hang state off the env (faults, tracer, telemetry, ...).
    __slots__ = ("_now", "_heap", "_seq", "_timeout_pool",
                 "_active_process", "__dict__")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._timeout_pool: list[Timeout] = []
        self._active_process: Optional[Process] = None
        # Optional repro.faults.FaultRegistry; fault probes throughout the
        # stack check this slot and are no-ops while it is None.
        self.faults = None
        # Optional repro.obs.Tracer; trace probes follow the same pattern —
        # one attribute read and zero allocations while this stays None.
        self.tracer = None
        # Optional repro.obs.TelemetryHub; telemetry publishers follow the
        # same guard, so unmonitored runs stay bit-identical.
        self.telemetry = None
        # Optional repro.obs.LineageProfiler; per-op critical-path probes
        # throughout the stack check this slot — one attribute read, zero
        # allocations while it stays None.
        self.lineage = None
        # Optional KernelProfile; run() delegates to the instrumented loop
        # while installed and is untouched otherwise.
        self.kernel_profiler = None
        # Optional repro.obs.Journal flight recorder; run() delegates to
        # the journaled loop while installed.  Purely passive — it never
        # schedules events — so journaled trajectories are bit-identical.
        self.journal = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled on this environment.

        Every scheduled event is eventually processed when ``run()`` drains
        the heap, so this doubles as the processed-event count for
        events/sec reporting (``repro.perf``, bench baselines) and is
        stable across kernel-internal changes like event pooling.
        """
        return self._seq

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        self._seq += 1
        # priority events (interrupts) sort before same-time ordinary events
        heapq.heappush(
            self._heap, (self._now + delay, 0 if priority else 1, self._seq, event)
        )

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a pre-built pending event to fire at absolute time."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        if event._state != _PENDING:
            raise SimulationError("event already triggered")
        event._ok = True
        event._state = _TRIGGERED
        self._seq += 1
        heapq.heappush(self._heap, (when, 1, self._seq, event))

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create (or recycle) a :class:`Timeout` firing ``delay`` from now.

        Recycled instances behave identically to fresh ones: the freelist
        only ever holds processed Timeouts that nothing else references
        (checked by refcount in :meth:`run`), and scheduling order is
        governed purely by the (time, priority, seq) key, so pooling
        cannot perturb the determinism contract.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay: {delay!r}")
            ev = pool.pop()
            ev.delay = delay
            ev._value = value
            # _ok is not reset: a Timeout can never fail, so it stays True
            # for the object's whole lifetime, recycled or not.
            ev._state = _TRIGGERED
            ev._defused = False
            seq = self._seq + 1
            self._seq = seq
            heappush(self._heap, (self._now + delay, 1, seq, ev))
            return ev
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        jr = self.journal
        if jr is not None:
            if when >= jr._next_ckpt:
                jr._checkpoint(when)
            proc = event._proc
            if proc is not None:
                jname = proc.name
            else:
                jname = ""
                for cb in event.callbacks:
                    owner = getattr(cb, "__self__", None)
                    if type(owner) is Process:
                        jname = owner.name
                        break
            jr.record_event(when, jname, type(event).__name__)
        event._run_callbacks()
        pool = self._timeout_pool
        if (type(event) is Timeout and len(pool) < _TIMEOUT_POOL_CAP
                and sys.getrefcount(event) == 2):  # local var + getrefcount arg
            pool.append(event)

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp or an Event; with an Event, returns its
        value once it fires.

        The loop inlines :meth:`step` and the event-dispatch body
        (``Event._run_callbacks``) with every per-step lookup cached in
        locals — this is the hottest code in the repository, every
        simulated second of every experiment passes through it.  The two
        loop variants below must stay semantically in lockstep with
        ``step()``; determinism (same-timestamp schedule order, interrupt
        priority) lives entirely in the heap key, which they share.

        Processed Timeouts that nothing else references (refcount check)
        are recycled into :meth:`timeout`'s freelist.
        """
        if self.kernel_profiler is not None:
            return self._run_profiled(until)
        if self.journal is not None:
            return self._run_journaled(until)
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"until {deadline} is in the past (now={self._now})")

        # Per-step lookups hoisted out of the loop.
        heap = self._heap
        pop = heappop
        pool = self._timeout_pool
        pool_cap = _TIMEOUT_POOL_CAP
        getrefcount = sys.getrefcount
        PENDING = _PENDING
        PROCESSED = _PROCESSED
        timeout_cls = Timeout

        stopped: list = []
        if stop_event is not None and stop_event._state != _PROCESSED:
            # Cheaper than re-reading stop_event._state every iteration:
            # one sentinel callback flips a local flag when it fires.
            stop_event.callbacks.append(stopped.append)

        # Two loop variants (no-deadline / deadline) so the per-step body
        # carries only the checks its mode needs.  Dispatch is identical in
        # both and splits by event type: Timeouts take the fast path — the
        # waiting process (fast slot ``_proc``) is resumed *inline*, saving
        # the Process._resume trampoline frame, and the dead Timeout is
        # recycled into the freelist; everything else goes through the
        # generic callback dispatch.  The inline block mirrors
        # Process._resume — keep the two in lockstep.
        if deadline == float("inf"):
            while heap:
                if stopped and stop_event is not None:
                    break
                when, _prio, _seq, event = pop(heap)
                self._now = when
                if type(event) is timeout_cls:
                    event._state = PROCESSED
                    proc = event._proc
                    if proc is not None:
                        event._proc = None
                        if proc._state == PENDING:
                            self._active_process = proc
                            try:
                                nt = proc._send(event._value)
                            except StopIteration as stop:
                                self._active_process = None
                                proc._finish(True, stop.value)
                            except BaseException as exc:
                                self._active_process = None
                                proc._finish(False, exc)
                            else:
                                self._active_process = None
                                try:
                                    nstate = nt._state
                                    ncbs = nt.callbacks
                                except AttributeError:
                                    raise SimulationError(
                                        f"process {proc.name!r} yielded "
                                        f"{nt!r}, expected an Event"
                                    ) from None
                                if nstate == PROCESSED:
                                    proc._resume_processed(nt)
                                elif (type(nt) is timeout_cls
                                        and nt._proc is None and not ncbs):
                                    nt._proc = proc
                                    proc._target = nt
                                else:
                                    nt._defused = True
                                    ncbs.append(proc._resume_cb)
                                    proc._target = nt
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    # No failure check: a Timeout can never fail.
                    if (len(pool) < pool_cap
                            and getrefcount(event) == 2):  # local + arg only
                        pool.append(event)
                else:
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event._defused:
                        # Nobody handled the failure: surface it.
                        raise event._value
        else:
            while heap:
                # SimPy semantics: the deadline is exclusive — events
                # scheduled exactly at `until` are left unprocessed.
                if heap[0][0] >= deadline:
                    self._now = deadline
                    return None
                when, _prio, _seq, event = pop(heap)
                self._now = when
                if type(event) is timeout_cls:
                    event._state = PROCESSED
                    proc = event._proc
                    if proc is not None:
                        event._proc = None
                        if proc._state == PENDING:
                            self._active_process = proc
                            try:
                                nt = proc._send(event._value)
                            except StopIteration as stop:
                                self._active_process = None
                                proc._finish(True, stop.value)
                            except BaseException as exc:
                                self._active_process = None
                                proc._finish(False, exc)
                            else:
                                self._active_process = None
                                try:
                                    nstate = nt._state
                                    ncbs = nt.callbacks
                                except AttributeError:
                                    raise SimulationError(
                                        f"process {proc.name!r} yielded "
                                        f"{nt!r}, expected an Event"
                                    ) from None
                                if nstate == PROCESSED:
                                    proc._resume_processed(nt)
                                elif (type(nt) is timeout_cls
                                        and nt._proc is None and not ncbs):
                                    nt._proc = proc
                                    proc._target = nt
                                else:
                                    nt._defused = True
                                    ncbs.append(proc._resume_cb)
                                    proc._target = nt
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    # No failure check: a Timeout can never fail.
                    if (len(pool) < pool_cap
                            and getrefcount(event) == 2):  # local + arg only
                        pool.append(event)
                else:
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if not event._ok and not event._defused:
                        # Nobody handled the failure: surface it.
                        raise event._value

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None

    def _run_profiled(self, until: Optional[float | Event] = None) -> Any:
        """run() with kernel self-profiling: generic event dispatch plus
        per-class counters and coarse wall-clock sampling.

        Semantically in lockstep with :meth:`run`'s inlined loops — same
        heap key, same ``_run_callbacks`` behaviour (the inlined Timeout
        fast path mirrors it by construction), same freelist recycle rule —
        so profiled runs follow the identical trajectory, just slower.
        """
        prof = self.kernel_profiler
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until {deadline} is in the past (now={self._now})")

        heap = self._heap
        pop = heappop
        pool = self._timeout_pool
        pool_cap = _TIMEOUT_POOL_CAP
        getrefcount = sys.getrefcount
        timeout_cls = Timeout

        stopped: list = []
        if stop_event is not None and stop_event._state != _PROCESSED:
            stop_event.callbacks.append(stopped.append)

        by_class = prof.events_by_class
        resumes = prof.resumes_by_process
        sampled_ns = prof.sampled_wall_ns_by_class
        sampled_n = prof.sampled_events_by_class
        sample_every = prof.sample_every
        jr = self.journal  # profiled runs can journal too
        wall_t0 = perf_counter_ns()
        try:
            while heap:
                if stopped and stop_event is not None:
                    break
                if heap[0][0] >= deadline:
                    self._now = deadline
                    return None
                when, _prio, _seq, event = pop(heap)
                self._now = when
                prof.heap_pops += 1
                cls = type(event).__name__
                by_class[cls] = by_class.get(cls, 0) + 1
                jname = ""
                proc = event._proc
                if proc is not None:
                    jname = name = proc.name
                    resumes[name] = resumes.get(name, 0) + 1
                else:
                    for cb in event.callbacks:
                        owner = getattr(cb, "__self__", None)
                        if type(owner) is Process:
                            name = owner.name
                            if not jname:
                                jname = name
                            resumes[name] = resumes.get(name, 0) + 1
                if jr is not None:
                    if when >= jr._next_ckpt:
                        jr._checkpoint(when)
                    jr.record_event(when, jname, cls)
                if prof.heap_pops % sample_every == 0:
                    t0 = perf_counter_ns()
                    event._run_callbacks()
                    dt = perf_counter_ns() - t0
                    sampled_ns[cls] = sampled_ns.get(cls, 0) + dt
                    sampled_n[cls] = sampled_n.get(cls, 0) + 1
                else:
                    event._run_callbacks()
                if (type(event) is timeout_cls and len(pool) < pool_cap
                        and getrefcount(event) == 2):  # local var + arg only
                    pool.append(event)
                    prof.pool_recycled += 1
        finally:
            prof.wall_ns += perf_counter_ns() - wall_t0

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None

    def _run_journaled(self, until: Optional[float | Event] = None) -> Any:
        """run() with the flight recorder: generic event dispatch plus one
        journal record per executed event and a digest checkpoint whenever
        the popped event crosses the next boundary.

        Semantically in lockstep with :meth:`run`'s inlined loops (same
        heap key, ``_run_callbacks`` dispatch, same freelist recycle rule);
        the journal is write-only side state, so journaled runs follow the
        identical trajectory.  The checkpoint fires *before* the boundary-
        crossing event dispatches, so the digest captures layer state as of
        the boundary itself.
        """
        jr = self.journal
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until {deadline} is in the past (now={self._now})")

        heap = self._heap
        pop = heappop
        pool = self._timeout_pool
        pool_cap = _TIMEOUT_POOL_CAP
        getrefcount = sys.getrefcount
        timeout_cls = Timeout
        process_cls = Process
        record = jr.record_event

        stopped: list = []
        if stop_event is not None and stop_event._state != _PROCESSED:
            stop_event.callbacks.append(stopped.append)

        while heap:
            if stopped and stop_event is not None:
                break
            if heap[0][0] >= deadline:
                self._now = deadline
                return None
            when, _prio, _seq, event = pop(heap)
            self._now = when
            if when >= jr._next_ckpt:
                jr._checkpoint(when)
            proc = event._proc
            if proc is not None:
                jname = proc.name
            else:
                jname = ""
                for cb in event.callbacks:
                    owner = getattr(cb, "__self__", None)
                    if type(owner) is process_cls:
                        jname = owner.name
                        break
            record(when, jname, type(event).__name__)
            event._run_callbacks()
            if (type(event) is timeout_cls and len(pool) < pool_cap
                    and getrefcount(event) == 2):  # local var + arg only
                pool.append(event)

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None


class KernelProfile:
    """Wall-clock self-profile of one Environment's event loop.

    Collected by :meth:`Environment._run_profiled` while installed via
    :func:`install_kernel_profiler`.  All counters are exact except the
    wall-ns-per-class figures, which sample one event in ``sample_every``
    (timing every dispatch would perturb the very loop being measured);
    :meth:`to_dict` scales the samples back up to estimated totals.

    Everything here is wall-clock instrumentation — the simulated
    trajectory of a profiled run is bit-identical to an unprofiled one.
    """

    def __init__(self, sample_every: int = 16):
        self.sample_every = max(1, int(sample_every))
        self.events_by_class: dict[str, int] = {}
        self.resumes_by_process: dict[str, int] = {}
        self.sampled_wall_ns_by_class: dict[str, int] = {}
        self.sampled_events_by_class: dict[str, int] = {}
        self.heap_pops = 0
        self.pool_recycled = 0
        self.timeout_requests = 0
        self.timeout_pool_hits = 0
        self.resource_requests = 0
        self.resource_grants = 0
        self.resource_queued = 0
        self.wall_ns = 0
        self._env: Optional[Environment] = None
        self._seq0 = 0

    @property
    def heap_pushes(self) -> int:
        """Every ``_seq`` increment pairs with exactly one heappush (in
        ``_schedule``, ``schedule_at``, ``timeout()`` and
        ``Timeout.__init__``), so the push count is the ``_seq`` delta."""
        if self._env is None:
            return 0
        return self._env._seq - self._seq0

    @property
    def timeout_pool_hit_rate(self) -> float:
        if self.timeout_requests == 0:
            return 0.0
        return self.timeout_pool_hits / self.timeout_requests

    def estimated_wall_ns_by_class(self) -> dict[str, float]:
        """Scale the sampled per-class wall time up to estimated totals."""
        out: dict[str, float] = {}
        for cls, total in self.events_by_class.items():
            n = self.sampled_events_by_class.get(cls, 0)
            if n:
                out[cls] = self.sampled_wall_ns_by_class[cls] / n * total
        return out

    def to_dict(self) -> dict:
        return {
            "heap_pushes": int(self.heap_pushes),
            "heap_pops": int(self.heap_pops),
            "events_by_class": dict(self.events_by_class),
            "resumes_by_process": dict(self.resumes_by_process),
            "timeout_requests": int(self.timeout_requests),
            "timeout_pool_hits": int(self.timeout_pool_hits),
            "timeout_pool_hit_rate": float(self.timeout_pool_hit_rate),
            "pool_recycled": int(self.pool_recycled),
            "resource_requests": int(self.resource_requests),
            "resource_grants": int(self.resource_grants),
            "resource_queued": int(self.resource_queued),
            "sample_every": int(self.sample_every),
            "sampled_events_by_class": dict(self.sampled_events_by_class),
            "wall_ns": int(self.wall_ns),
            "estimated_wall_ns_by_class": {
                k: float(v)
                for k, v in self.estimated_wall_ns_by_class().items()},
        }


def install_kernel_profiler(env: Environment,
                            sample_every: int = 16) -> KernelProfile:
    """Attach a :class:`KernelProfile` to ``env``.

    ``env.timeout`` is shadowed with a counting wrapper (instance dict
    shadows the class method) so pool hit rate can be measured without
    touching the class; :func:`uninstall_kernel_profiler` restores it.
    """
    if env.kernel_profiler is not None:
        raise SimulationError("kernel profiler already installed")
    prof = KernelProfile(sample_every=sample_every)
    prof._env = env
    prof._seq0 = env._seq
    env.kernel_profiler = prof
    orig_timeout = env.timeout

    def counting_timeout(delay: float, value: Any = None) -> Timeout:
        prof.timeout_requests += 1
        if env._timeout_pool:
            prof.timeout_pool_hits += 1
        return orig_timeout(delay, value)

    env.timeout = counting_timeout
    return prof


def uninstall_kernel_profiler(env: Environment) -> Optional[KernelProfile]:
    """Detach the profiler and restore the un-shadowed ``env.timeout``."""
    prof = env.kernel_profiler
    env.kernel_profiler = None
    env.__dict__.pop("timeout", None)
    return prof
