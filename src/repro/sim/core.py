"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an
:class:`Environment` owns an event heap and a clock; *processes* are Python
generators that ``yield`` events (most commonly :class:`Timeout`) and are
resumed when those events fire.  The kernel is deterministic: events that
fire at the same timestamp are processed in schedule order.

The whole reproduction (host LSM, device model, workload drivers, samplers)
is built from processes scheduled on one Environment, which is what lets us
report per-second time series equivalent to the paper's wall-clock
measurements.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events hold a value (or an exception) and a list of callbacks invoked
    when the event is processed.  Processes waiting on an event are resumed
    through such callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire now with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire now, raising ``exception`` in waiters."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody handled the failure: surface it to the caller of run().
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay)


class _ProcessResume(Event):
    """Internal event used to bootstrap / resume a process."""

    __slots__ = ()


class Process(Event):
    """A running generator on the simulation timeline.

    A Process is itself an Event that fires when the generator returns
    (with the generator's return value) or raises.  Other processes can
    therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event the process waits on
        self.name = name or getattr(generator, "__name__", "process")
        boot = _ProcessResume(env)
        boot._ok = True
        boot._state = _TRIGGERED
        boot.callbacks.append(self._resume)
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_ev = _ProcessResume(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        interrupt_ev.callbacks.append(self._resume)
        self.env._schedule(interrupt_ev, priority=True)

    # -- internal ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self.is_alive:  # e.g. interrupted after normal termination
            return
        self.env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self._ok = True
            self._value = stop.value
            self._state = _TRIGGERED
            self.env._schedule(self)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self._state = _TRIGGERED
            self.env._schedule(self)
            return
        self.env._active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, expected an Event"
            )
        if next_target._state == _PROCESSED:
            # Already-fired event: resume immediately (same timestamp).
            resume = _ProcessResume(self.env)
            resume._ok = next_target._ok
            resume._value = next_target._value
            if not next_target._ok:
                resume._defused = True
                next_target._defused = True
            resume._state = _TRIGGERED
            resume.callbacks.append(self._resume)
            self.env._schedule(resume)
            self._target = resume
        else:
            # A waiting process will receive any failure via generator.throw,
            # so the kernel must not re-raise it at callback time.
            next_target._defused = True
            next_target.callbacks.append(self._resume)
            self._target = next_target


class _MultiEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._state == _PROCESSED:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._state == _PROCESSED
        }


class AllOf(_MultiEvent):
    """Fires when all child events have fired; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_MultiEvent):
    """Fires when the first child event fires; value is {event: value}."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed(self._results())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Optional repro.faults.FaultRegistry; fault probes throughout the
        # stack check this slot and are no-ops while it is None.
        self.faults = None
        # Optional repro.obs.Tracer; trace probes follow the same pattern —
        # one attribute read and zero allocations while this stays None.
        self.tracer = None
        # Optional repro.obs.TelemetryHub; telemetry publishers follow the
        # same guard, so unmonitored runs stay bit-identical.
        self.telemetry = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        self._seq += 1
        # priority events (interrupts) sort before same-time ordinary events
        heapq.heappush(
            self._heap, (self._now + delay, 0 if priority else 1, self._seq, event)
        )

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule a pre-built pending event to fire at absolute time."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        if event._state != _PENDING:
            raise SimulationError("event already triggered")
        event._ok = True
        event._state = _TRIGGERED
        self._seq += 1
        heapq.heappush(self._heap, (when, 1, self._seq, event))

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp or an Event; with an Event, returns its
        value once it fires.
        """
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(f"until {deadline} is in the past (now={self._now})")

        while self._heap:
            if stop_event is not None and stop_event._state == _PROCESSED:
                break
            # SimPy semantics: the deadline is exclusive — events scheduled
            # exactly at `until` are left unprocessed.
            if self._heap[0][0] >= deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if stop_event._state != _PROCESSED:
                raise SimulationError("run(until=event): event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None
