"""Shared-resource primitives for the simulation kernel.

These model contention: a :class:`Resource` is a counted semaphore with a
FIFO queue (compaction-thread pools, NAND channels), a :class:`Container`
holds a continuous level (device DRAM budget), and a :class:`Store` is a
FIFO of Python objects (work queues between threads).

All request/put/get operations return events, so processes simply ``yield``
them.  Request events double as context managers so the common pattern is::

    with resource.request() as req:
        yield req
        ... hold the resource ...
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Container", "Store", "PriorityResource"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self._released = False
        resource._do_request(self)

    def release(self) -> None:
        self.resource.release(self)

    # Context-manager protocol: releases on exit.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """Counted FIFO resource (semaphore with queue introspection)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @capacity.setter
    def capacity(self, value: int) -> None:
        """Grow or shrink capacity at runtime (ADOC tunes thread pools).

        Shrinking never revokes granted slots; it only delays future grants.
        """
        if value < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = value
        self._grant()

    @property
    def count(self) -> int:
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request._released:
            return
        request._released = True
        try:
            self.users.remove(request)
        except ValueError:
            # Request was still queued: cancel instead.
            self._cancel(request)
            return
        self._grant()

    # -- internal -----------------------------------------------------
    def _do_request(self, request: Request) -> None:
        prof = self.env.kernel_profiler
        if prof is not None:
            prof.resource_requests += 1
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed(request)
            if prof is not None:
                prof.resource_grants += 1
        else:
            self.queue.append(request)
            if prof is not None:
                prof.resource_queued += 1

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        prof = self.env.kernel_profiler
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt)
            if prof is not None:
                prof.resource_grants += 1


class PriorityRequest(Request):
    __slots__ = ("priority", "order")

    def __init__(self, resource: "PriorityResource", priority: int):
        self.priority = priority
        self.order = resource._order = resource._order + 1
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource whose queue is served lowest-priority-value first.

    Used for flush-over-compaction I/O scheduling (SILK-style priorities
    inside our device queues).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._order = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _grant(self) -> None:
        prof = self.env.kernel_profiler
        while self.queue and len(self.users) < self._capacity:
            nxt = min(self.queue, key=lambda r: (r.priority, r.order))
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed(nxt)
            if prof is not None:
                prof.resource_grants += 1


class Container:
    """A continuous quantity with blocking get/put at level bounds."""

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed()
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed()
                    progress = True


class Store:
    """FIFO object queue with blocking get."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        self.env = env
        self.capacity = capacity if capacity is not None else float("inf")
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progress = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progress = True


def _check_env(env: Environment) -> None:
    if not isinstance(env, Environment):
        raise SimulationError("expected an Environment")
