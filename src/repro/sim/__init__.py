"""Discrete-event simulation kernel (SimPy-like, dependency-free)."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, PriorityResource, Request, Resource, Store
from .samplers import PeriodicSampler, RateMeter

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "PeriodicSampler",
    "RateMeter",
]
