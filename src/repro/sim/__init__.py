"""Discrete-event simulation kernel (SimPy-like, dependency-free)."""

from .calqueue import CalendarQueue
from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    KernelProfile,
    MacroStats,
    Process,
    SimulationError,
    Timeout,
    install_kernel_profiler,
    uninstall_kernel_profiler,
)
from .resources import Container, PriorityResource, Request, Resource, Store
from .samplers import PeriodicSampler, RateMeter

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "PeriodicSampler",
    "RateMeter",
    "CalendarQueue",
    "KernelProfile",
    "MacroStats",
    "install_kernel_profiler",
    "uninstall_kernel_profiler",
]
