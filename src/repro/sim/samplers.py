"""Periodic sampling utilities.

The paper reports 1-second time series (throughput, PCIe traffic via Intel
PCM).  :class:`PeriodicSampler` is the simulation-side equivalent: a process
that wakes every ``period`` simulated seconds and appends the value of a
callback to a series.
"""

from __future__ import annotations

from typing import Callable, Optional

from .core import Environment, Process

__all__ = ["PeriodicSampler", "RateMeter"]


class RateMeter:
    """Counts discrete occurrences and exposes deltas between samples.

    Used for ops/s: the workload driver calls :meth:`add` per completed op,
    and the sampler reads :meth:`take_delta` once per second.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self._last = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.total += amount

    def take_delta(self) -> float:
        delta = self.total - self._last
        self._last = self.total
        return delta


class PeriodicSampler:
    """Samples ``fn()`` every ``period`` sim-seconds into ``times``/``values``."""

    def __init__(
        self,
        env: Environment,
        fn: Callable[[], float],
        period: float = 1.0,
        name: Optional[str] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.fn = fn
        self.period = period
        self.times: list[float] = []
        self.values: list[float] = []
        self._t_start = env.now
        self._stopped = False
        self.process: Process = env.process(self._run(), name=name or "sampler")

    def stop(self, flush: bool = False) -> None:
        """Stop sampling.  With ``flush=True`` the final partial bucket is
        recorded at the current sim time instead of being dropped.

        ``flush`` defaults to False because existing series consumers
        (e.g. the fig11 low-decile floor metric) expect only whole-period
        buckets; opt in where length agreement with ceil-bucketed series
        such as ``TrafficLedger.series`` matters.
        """
        self._stopped = True
        if flush:
            self.flush()

    def flush(self) -> bool:
        """Record the partial bucket since the last tick, if any.

        Returns True if a sample was appended.  A no-op when the clock sits
        exactly on the last recorded tick, so flushing is idempotent.
        """
        last = self.times[-1] if self.times else self._t_start
        if self.env.now > last:
            self.times.append(self.env.now)
            self.values.append(self.fn())
            return True
        return False

    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.period)
            if self._stopped:
                break
            self.times.append(self.env.now)
            self.values.append(self.fn())
