"""TelemetryHub: the unified per-second time-series pipeline.

The paper's entire evaluation is 1-second telemetry — Intel PCM link
samples and ops/s series are what Figs 2/4/5/11/14 are made of.  The hub
is the simulation-side equivalent of that measurement rig: one sampling
process wakes every ``period`` simulated seconds and closes a *bucket*
across every named channel, so all series share a single time axis.

Install pattern (mirrors ``repro.faults`` and the :class:`Tracer`)::

    hub = TelemetryHub(env, period=1.0).install(env)   # env.telemetry = hub

and every publisher in the stack is guarded by a plain
``env.telemetry is not None`` check — with no hub installed a probe costs
one attribute read and allocates nothing, so disabled runs stay
bit-identical.  The hub itself is purely passive: its tick process only
reads state and never perturbs the simulated trajectory.

Channel kinds:

* **rate** — publishers call :meth:`add`; each bucket holds the sum of
  amounts added during it (ops, bytes, events);
* **gauge** — a callback sampled at each bucket end (memtable bytes, L0
  file count, write-controller state);
* **deriv** — a callback returning a *cumulative* quantity; each bucket
  holds the delta since the previous sample (NAND busy seconds, stall
  seconds) — how a hardware counter sampled once a second behaves.

Consumers: :class:`~repro.obs.rules.HealthMonitor` subscribes via
:meth:`on_sample`; exporters render the same data as Prometheus text,
CSV, or terminal sparklines.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Channel", "TelemetryHub", "RATE", "GAUGE", "DERIV"]

RATE = "rate"
GAUGE = "gauge"
DERIV = "deriv"

_KINDS = (RATE, GAUGE, DERIV)


class Channel:
    """One named per-bucket series."""

    __slots__ = ("name", "kind", "fn", "values", "_acc", "_last_cum")

    def __init__(self, name: str, kind: str,
                 fn: Optional[Callable[[], float]] = None):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}")
        if kind in (GAUGE, DERIV) and fn is None:
            raise ValueError(f"{kind} channel {name!r} needs a callback")
        self.name = name
        self.kind = kind
        self.fn = fn
        self.values: list[float] = []
        self._acc = 0.0           # rate: amount accumulated this bucket
        self._last_cum: Optional[float] = None   # deriv: previous sample

    def _close_bucket(self) -> float:
        """Compute and append this bucket's value."""
        if self.kind == RATE:
            v, self._acc = self._acc, 0.0
        elif self.kind == GAUGE:
            v = float(self.fn())
        else:  # DERIV
            cum = float(self.fn())
            v = cum - self._last_cum if self._last_cum is not None else cum
            self._last_cum = cum
        self.values.append(v)
        return v

    @property
    def total(self) -> float:
        """Sum over all closed buckets (plus, for rate, the open bucket)."""
        if self.kind == RATE:
            return sum(self.values) + self._acc
        return sum(self.values)

    def __repr__(self) -> str:
        return f"Channel({self.name}, {self.kind}, buckets={len(self.values)})"


class TelemetryHub:
    """Named per-second channels on one shared sim-time axis."""

    def __init__(self, env, period: float = 1.0):
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.period = period
        self.times: list[float] = []
        self.channels: dict[str, Channel] = {}
        self._callbacks: list[Callable[[float, dict], None]] = []
        self._stopped = False
        self._t_start = env.now
        self._t_last = env.now     # end of the last closed bucket
        self.process = env.process(self._run(), name="telemetry")

    # -- wiring ------------------------------------------------------------
    def install(self, env) -> "TelemetryHub":
        """Attach to an Environment; publishers find us via
        ``env.telemetry``."""
        env.telemetry = self
        return self

    @staticmethod
    def of(env) -> Optional["TelemetryHub"]:
        return getattr(env, "telemetry", None)

    def on_sample(self, callback: Callable[[float, dict], None]) -> None:
        """Subscribe ``callback(t, {channel: bucket_value})`` to every
        closed bucket.  Callbacks must be read-only with respect to the
        simulation — they run inside the sampling process."""
        self._callbacks.append(callback)

    # -- channel declaration ------------------------------------------------
    def _declare(self, name: str, kind: str, fn=None) -> Channel:
        ch = self.channels.get(name)
        if ch is None:
            ch = Channel(name, kind, fn)
            # Channels born mid-run backfill zeros so every series stays
            # aligned with ``times``.
            ch.values = [0.0] * len(self.times)
            self.channels[name] = ch
        elif ch.kind != kind:
            raise ValueError(
                f"channel {name!r} is {ch.kind}, not {kind}")
        return ch

    def rate(self, name: str) -> Channel:
        """Declare (or fetch) a rate channel."""
        return self._declare(name, RATE)

    def gauge(self, name: str, fn: Callable[[], float]) -> Channel:
        """Declare a gauge channel sampled at each bucket end."""
        return self._declare(name, GAUGE, fn)

    def deriv(self, name: str, fn: Callable[[], float]) -> Channel:
        """Declare a cumulative-counter channel exported as per-bucket
        deltas."""
        return self._declare(name, DERIV, fn)

    # -- the hot path --------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate into a rate channel (auto-declared on first use)."""
        ch = self.channels.get(name)
        if ch is None:
            ch = self._declare(name, RATE)
        ch._acc += amount

    # -- sampling ------------------------------------------------------------
    def _sample(self) -> None:
        t = self.env.now
        self.times.append(t)
        self._t_last = t
        sample = {name: ch._close_bucket()
                  for name, ch in self.channels.items()}
        for cb in self._callbacks:
            cb(t, sample)

    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.period)
            if self._stopped:
                break
            self._sample()

    def flush(self) -> bool:
        """Close the final partial bucket at the current sim time.

        Returns True if a bucket was emitted.  The end-of-horizon partial
        bucket must not be silently dropped — series built here have to
        agree in length with :class:`~repro.device.TrafficLedger`'s
        bucketing, which rounds the horizon *up*.
        """
        if self.env.now > self._t_last:
            self._sample()
            return True
        return False

    def stop(self, flush: bool = True) -> None:
        self._stopped = True
        if flush:
            self.flush()

    # -- reading -------------------------------------------------------------
    def series(self, name: str) -> list[float]:
        return list(self.channels[name].values)

    def names(self) -> list[str]:
        return sorted(self.channels)

    def last(self, name: str, default: float = 0.0) -> float:
        vals = self.channels[name].values if name in self.channels else None
        return vals[-1] if vals else default

    def export(self) -> dict:
        """Plain-data view: one shared time axis + every channel series."""
        return {
            "period": self.period,
            "t_start": self._t_start,
            "times": list(self.times),
            "channels": {name: list(ch.values)
                         for name, ch in sorted(self.channels.items())},
            "kinds": {name: ch.kind
                      for name, ch in sorted(self.channels.items())},
        }

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (f"TelemetryHub(period={self.period}, buckets={len(self.times)}, "
                f"channels={len(self.channels)})")
