"""Latency lineage: per-op critical-path decomposition on the sim clock.

The telemetry layer (PR 3) says *that* stalls happened; this module says
*which ops paid for them and through which path*.  A
:class:`LineageProfiler` hangs off ``env.lineage`` (same env-is-None
guard as faults/tracer/telemetry — one attribute read, zero allocations
while off) and follows each operation from the workload driver down
through db → write_controller → wal/memtable → controller redirect →
kv_dev/devlsm → pcie → nand, plus the resilience layer's retry backoffs
and degraded-mode fallbacks.

**Attribution model (leaf-stack).**  Probes bracket interesting stretches
with ``enter(segment)`` / ``leave()``.  Segments nest; every instant of
an op's lifetime is attributed to the *innermost* open segment at that
instant, so a WAL append that spends its time inside a PCIe transfer
bills that time to ``pcie``, not ``wal``.  This makes the decomposition a
partition: the per-segment seconds of one op sum to its end-to-end
latency exactly, with any uncovered stretch reported as the explicit
``unattributed`` segment — never silently dropped.  The profiler checks
this invariant on every op and records (rather than hides) violations.

Everything here runs on the **simulation clock** and is purely passive:
probes never yield and never touch the event heap, so a profiled run
takes the exact same simulated trajectory as an unprofiled one.  The
wall-clock counterpart (where does the *Python interpreter* spend time)
is :class:`repro.sim.KernelProfile`.

Top-K exemplars are selected deterministically: op ids are assigned in
``op_begin`` order (itself deterministic under a fixed seed) and ties on
end-to-end latency are broken toward the earliest op id.
"""

from __future__ import annotations

from heapq import heappush, heappushpop
from typing import Optional

__all__ = [
    "LineageProfiler",
    "SEGMENTS",
    "DEFAULT_BANDS",
    "LINEAGE_SCHEMA",
    "percentile_bands",
    "lineage_report",
    "ops_from_chrome",
    "exemplars_from_chrome",
    "check_lineage_invariant",
]

LINEAGE_SCHEMA = "repro-lineage"
LINEAGE_VERSION = 1

# Canonical segment names, in display order.  Probes may introduce others;
# unknown segments sort after these.
SEGMENTS = (
    "stall",          # write controller STOPPED wait
    "slowdown",       # write controller DELAYED naps
    "cpu",            # host CPU service (put path, NVMe submit, ...)
    "wal",            # WAL buffering / group commit (host file system)
    "memtable",       # memtable insert + switch-on-full
    "redirect",       # KVACCEL controller Dev-LSM redirect path
    "queue",          # waiting for a pcie/nand resource slot
    "pcie",           # PCIe link transfer service
    "nand",           # NAND array busy time
    "retry",          # repro.resil retry backoff sleeps
    "degraded",       # degraded-mode Main-LSM fallback writes
    "unattributed",   # residual not covered by any probe
)

# Percentile bands for the conditioned decomposition, as (lo, hi) in
# percent of the per-op end-to-end latency distribution.
DEFAULT_BANDS = ((0.0, 50.0), (50.0, 90.0), (90.0, 99.0), (99.0, 100.0))

# Float-accumulation tolerance for the sum(segments) == e2e invariant,
# relative to the op's end-to-end latency.
_INVARIANT_RTOL = 1e-9
_INVARIANT_ATOL = 1e-12


class _OpCtx:
    """Live lineage record of one in-flight operation."""

    __slots__ = ("op_id", "kind", "count", "nbytes", "scope", "t0",
                 "proc", "stack", "segs", "spans", "trace_span")

    def __init__(self, op_id: int, kind: str, count: int, nbytes: int,
                 scope: str, t0: float, proc):
        self.op_id = op_id
        self.kind = kind
        self.count = count
        self.nbytes = nbytes
        self.scope = scope
        self.t0 = t0
        self.proc = proc
        # Stack frames are [segment, accrual_mark, span_t0]; on enter the
        # current top accrues elapsed time and re-marks, so each instant
        # lands in exactly one (innermost) segment.
        self.stack: list[list] = []
        self.segs: dict[str, float] = {}
        self.spans: list[tuple] = []   # (segment, t0, t1, depth)
        self.trace_span = None


class LineageProfiler:
    """Collects per-op segment decompositions from an instrumented run.

    Install with ``env.lineage = LineageProfiler(env)``; drivers bracket
    each logical op with :meth:`op_begin` / :meth:`op_end`, components
    bracket their interesting stretches with :meth:`enter` / :meth:`leave`.
    Probe calls made by a process with no op in flight (background flush,
    compaction, samplers) are no-ops, so lineage naturally measures the
    *foreground* critical path.
    """

    def __init__(self, env, top_k: int = 5, keep_ops: bool = True):
        self.env = env
        self.top_k = int(top_k)
        self.keep_ops = keep_ops
        self.ops: list[dict] = []
        self.op_count = 0
        self.invariant_violations = 0
        self.violations: list[dict] = []
        self._active: dict = {}        # Process -> _OpCtx
        self._next_id = 0
        self._exemplars: list[tuple] = []   # min-heap (e2e, -op_id, rec)

    def install(self) -> "LineageProfiler":
        self.env.lineage = self
        return self

    # -- op bracketing -----------------------------------------------------
    def op_begin(self, kind: str, count: int = 1, nbytes: int = 0,
                 scope: str = "db") -> Optional[_OpCtx]:
        """Open a lineage record for the active process; returns the ctx
        (``None`` if no process is active or one op is already open —
        lineage ops do not nest within a process)."""
        env = self.env
        proc = env._active_process
        if proc is None or proc in self._active:
            return None
        ctx = _OpCtx(self._next_id, kind, count, nbytes, scope,
                     env._now, proc)
        self._next_id += 1
        self._active[proc] = ctx
        tr = env.tracer
        if tr is not None:
            ctx.trace_span = tr.begin("op", kind, args={
                "op_id": ctx.op_id, "count": count, "nbytes": nbytes,
                "scope": scope})
        return ctx

    def op_end(self, ctx: Optional[_OpCtx]) -> Optional[dict]:
        """Close the record: drain dangling segments, compute the residual
        ``unattributed`` slice, enforce the partition invariant, and fold
        the op into the aggregate + exemplar sets."""
        if ctx is None:
            return None
        env = self.env
        now = env._now
        stack = ctx.stack
        segs = ctx.segs
        while stack:   # dangling frames (exception unwound past a leave)
            seg, mark, span_t0 = stack.pop()
            segs[seg] = segs.get(seg, 0.0) + (now - mark)
            ctx.spans.append((seg, span_t0, now, len(stack)))
            if stack:
                stack[-1][1] = now
        e2e = now - ctx.t0
        attributed = sum(segs.values())
        residual = e2e - attributed
        tol = _INVARIANT_ATOL + _INVARIANT_RTOL * abs(e2e)
        if residual < -tol:
            # Over-attribution: segments claim more time than the op took.
            # By construction this cannot happen; record it loudly.
            self.invariant_violations += 1
            if len(self.violations) < 16:
                self.violations.append({
                    "op_id": ctx.op_id, "kind": ctx.kind, "e2e": e2e,
                    "attributed": attributed, "residual": residual})
        segs["unattributed"] = residual if residual > 0.0 else 0.0
        rec = {
            "op_id": ctx.op_id,
            "kind": ctx.kind,
            "scope": ctx.scope,
            "count": ctx.count,
            "nbytes": ctx.nbytes,
            "t0": ctx.t0,
            "e2e": e2e,
            "segs": dict(segs),
        }
        self.op_count += 1
        if self.keep_ops:
            self.ops.append(rec)
        if self.top_k > 0:
            # Deterministic top-K: min-heap keyed (e2e, -op_id), so equal
            # latencies keep the earliest op id.  The heap copy carries the
            # full span tree; evicted ops drop theirs.
            item = (e2e, -ctx.op_id,
                    dict(rec, spans=[list(s) for s in ctx.spans]))
            if len(self._exemplars) < self.top_k:
                heappush(self._exemplars, item)
            elif item[:2] > self._exemplars[0][:2]:
                heappushpop(self._exemplars, item)
        if ctx.trace_span is not None:
            args = {"e2e": e2e}
            for seg, v in segs.items():
                args[f"seg_{seg}"] = v
            env.tracer.end(ctx.trace_span, args=args)
        self._active.pop(ctx.proc, None)
        return rec

    # -- segment bracketing ------------------------------------------------
    def enter(self, segment: str) -> None:
        """Open ``segment`` for the active process's in-flight op (no-op
        when that process has none)."""
        env = self.env
        ctx = self._active.get(env._active_process)
        if ctx is None:
            return
        now = env._now
        stack = ctx.stack
        if stack:
            top = stack[-1]
            ctx.segs[top[0]] = ctx.segs.get(top[0], 0.0) + (now - top[1])
            top[1] = now
        stack.append([segment, now, now])

    def leave(self) -> None:
        """Close the innermost open segment (no-op when none is open)."""
        env = self.env
        ctx = self._active.get(env._active_process)
        if ctx is None:
            return
        stack = ctx.stack
        if not stack:
            return
        now = env._now
        seg, mark, span_t0 = stack.pop()
        ctx.segs[seg] = ctx.segs.get(seg, 0.0) + (now - mark)
        ctx.spans.append((seg, span_t0, now, len(stack)))
        if stack:
            stack[-1][1] = now

    # -- export ------------------------------------------------------------
    def exemplars(self) -> list[dict]:
        """Top-K slowest ops (with span trees), slowest first."""
        return [item[2] for item in
                sorted(self._exemplars, key=lambda it: (-it[0], it[1]))]

    def to_dict(self) -> dict:
        """Plain-data export (picklable: survives the parallel cell
        runner's fork boundary and JSON serialization)."""
        return {
            "schema": LINEAGE_SCHEMA,
            "version": LINEAGE_VERSION,
            "op_count": self.op_count,
            "top_k": self.top_k,
            "ops": [dict(r, segs=dict(r["segs"])) for r in self.ops],
            "exemplars": self.exemplars(),
            "invariant_violations": self.invariant_violations,
            "violations": list(self.violations),
        }


# -- invariant ---------------------------------------------------------------

def check_lineage_invariant(ops: list[dict]) -> list[str]:
    """Verify sum(segments) == e2e for every op record; returns a list of
    violation strings (empty = the partition holds)."""
    problems = []
    for rec in ops:
        e2e = rec["e2e"]
        total = sum(rec["segs"].values())
        tol = _INVARIANT_ATOL + _INVARIANT_RTOL * abs(e2e)
        # The explicit `unattributed` slice must make the sum exact.
        if abs(total - e2e) > max(tol, 1e-9 * max(1.0, abs(e2e))):
            problems.append(
                f"op {rec.get('op_id')}: segments sum to {total!r}, "
                f"e2e is {e2e!r} (diff {total - e2e:+.3e})")
        if "unattributed" not in rec["segs"]:
            problems.append(
                f"op {rec.get('op_id')}: missing explicit "
                f"'unattributed' segment")
    return problems


# -- aggregation -------------------------------------------------------------

def _segment_rank(names) -> list[str]:
    known = [s for s in SEGMENTS if s in names]
    unknown = sorted(n for n in names if n not in SEGMENTS)
    return known + unknown


def percentile_bands(ops: list[dict],
                     bands: tuple = DEFAULT_BANDS) -> list[dict]:
    """Percentile-conditioned decomposition: ops are ranked by end-to-end
    latency and sliced into percentile bands; each band reports how its
    summed latency splits across segments ("ops in the p99 bucket spend
    71% of their time in stall")."""
    if not ops:
        return []
    ranked = sorted(ops, key=lambda r: (r["e2e"], r["op_id"]))
    n = len(ranked)
    out = []
    for lo, hi in bands:
        i0 = int(n * lo / 100.0)
        i1 = n if hi >= 100.0 else int(n * hi / 100.0)
        chunk = ranked[i0:i1]
        if not chunk:
            continue
        total = sum(r["e2e"] for r in chunk)
        seg_seconds: dict[str, float] = {}
        for r in chunk:
            for seg, v in r["segs"].items():
                seg_seconds[seg] = seg_seconds.get(seg, 0.0) + v
        shares = {seg: (v / total if total > 0.0 else 0.0)
                  for seg, v in seg_seconds.items()}
        out.append({
            "band": f"p{lo:g}-p{hi:g}",
            "lo": lo,
            "hi": hi,
            "n": len(chunk),
            "mean_e2e": total / len(chunk),
            "total_e2e": total,
            "seg_seconds": seg_seconds,
            "shares": shares,
        })
    return out


# -- rendering ---------------------------------------------------------------

def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:,.0f}"


def lineage_report(ops: list[dict], title: str = "lineage",
                   exemplars: Optional[list[dict]] = None,
                   bands: tuple = DEFAULT_BANDS,
                   max_segments: int = 8) -> str:
    """Human-readable percentile-conditioned segment table (plus exemplar
    span trees when provided)."""
    lines = [f"latency lineage — {title}"]
    if not ops:
        lines.append("  (no ops recorded)")
        return "\n".join(lines)
    rows = percentile_bands(ops, bands=bands)
    overall: dict[str, float] = {}
    for row in rows:
        for seg, v in row["seg_seconds"].items():
            overall[seg] = overall.get(seg, 0.0) + v
    ranked_segs = _segment_rank(overall)
    # Keep the biggest contributors as columns; always show unattributed.
    by_weight = sorted(ranked_segs, key=lambda s: -overall.get(s, 0.0))
    cols = [s for s in ranked_segs if s in set(by_weight[:max_segments])
            or s == "unattributed"]
    total_e2e = sum(r["e2e"] for r in ops)
    lines.append(f"  ops: {len(ops)}   total e2e: "
                 f"{_fmt_us(total_e2e)} us (sim clock)")
    hdr = f"  {'band':<10} {'n':>7} {'mean_us':>10}"
    for seg in cols:
        hdr += f" {seg[:9]:>9}"
    lines.append(hdr)
    for row in rows:
        line = (f"  {row['band']:<10} {row['n']:>7} "
                f"{row['mean_e2e'] * 1e6:>10,.1f}")
        for seg in cols:
            share = row["shares"].get(seg, 0.0)
            line += f" {share * 100:>8.1f}%"
        lines.append(line)
    if exemplars:
        lines.append(f"  top-{len(exemplars)} slowest ops:")
        for rec in exemplars:
            segs = sorted(((v, s) for s, v in rec["segs"].items() if v > 0),
                          reverse=True)
            top = ", ".join(f"{s}={_fmt_us(v)}us" for v, s in segs[:4])
            lines.append(f"    op #{rec['op_id']} {rec['kind']} "
                         f"[{rec.get('scope', 'db')}] "
                         f"e2e={_fmt_us(rec['e2e'])}us  {top}")
            for seg, t0, t1, depth in sorted(rec.get("spans", []),
                                             key=lambda s: (s[1], s[3])):
                indent = "      " + "  " * int(depth)
                lines.append(f"{indent}{seg}: {_fmt_us(t1 - t0)}us "
                             f"@t={t0:.6f}")
    return "\n".join(lines)


# -- chrome-trace round trip -------------------------------------------------

def ops_from_chrome(doc: dict) -> list[dict]:
    """Rebuild op records from a Chrome trace recorded with lineage on.

    ``op_end`` flattens each decomposition into json-safe span args
    (``seg_<name>``), so the CLI can recompute the full percentile table
    from the trace file alone."""
    from .export import spans_from_chrome
    ops = []
    for span in spans_from_chrome(doc):
        args = span.get("args") or {}
        if span.get("cat") != "op" or "e2e" not in args:
            continue
        segs = {k[4:]: float(v) for k, v in args.items()
                if k.startswith("seg_")}
        ops.append({
            "op_id": int(args.get("op_id", len(ops))),
            "kind": span.get("name", "op"),
            "scope": args.get("scope", "db"),
            "count": int(args.get("count", 1)),
            "nbytes": int(args.get("nbytes", 0)),
            "t0": span["t0"],
            "e2e": float(args["e2e"]),
            "segs": segs,
        })
    return ops


def exemplars_from_chrome(doc: dict, ops: Optional[list[dict]] = None,
                          top_k: int = 5) -> list[dict]:
    """Top-K slowest ops from a trace, with span trees reconstructed by
    same-actor time containment (the trace already carries the component
    spans recorded inside each op's window)."""
    from .export import spans_from_chrome
    if ops is None:
        ops = ops_from_chrome(doc)
    ranked = sorted(ops, key=lambda r: (-r["e2e"], r["op_id"]))[:top_k]
    spans = spans_from_chrome(doc)
    op_windows = {}
    for span in spans:
        args = span.get("args") or {}
        if span.get("cat") == "op" and "op_id" in args:
            op_windows[int(args["op_id"])] = span
    out = []
    eps = 1e-12
    for rec in ranked:
        window = op_windows.get(rec["op_id"])
        children = []
        if window is not None:
            inside = [s for s in spans
                      if s is not window
                      and s.get("actor") == window.get("actor")
                      and s["t0"] >= window["t0"] - eps
                      and s["t1"] <= window["t1"] + eps]
            inside.sort(key=lambda s: (s["t0"], -(s["t1"] - s["t0"])))
            open_stack: list[dict] = []
            for s in inside:
                while open_stack and s["t0"] >= open_stack[-1]["t1"] - eps:
                    open_stack.pop()
                children.append([s["name"], s["t0"], s["t1"],
                                 len(open_stack)])
                open_stack.append(s)
        out.append(dict(rec, spans=children))
    return out
