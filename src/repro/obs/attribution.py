"""Per-stall attribution: the *why* behind every write stall.

The paper attributes stalls to memtable / L0 / pending-bytes pressure by
eyeballing 1-second PCM aggregates.  With a trace we can do it exactly:
for every stall span the report lists the latched
:class:`~repro.lsm.write_controller.StallReason`, the LSM pressure at
entry (L0 count, immutable backlog, compaction debt), how much compaction
ran concurrently with the stall window, and how many bytes the Dev-LSM
absorbed through the KV interface while the main path was blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .tracer import SpanRecord, Tracer

__all__ = ["StallAttribution", "stall_attribution", "attribution_report",
           "top_spans"]

SpanLike = Union[SpanRecord, dict]


def _fields(span: SpanLike) -> tuple:
    """(cat, name, actor, t0, t1, args) for SpanRecord or chrome dict."""
    if isinstance(span, SpanRecord):
        return (span.cat, span.name, span.actor, span.t0,
                span.t1 if span.t1 is not None else span.t0,
                span.args or {})
    return (span.get("cat", ""), span.get("name", ""),
            span.get("actor", ""), span["t0"], span["t1"],
            span.get("args") or {})


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


@dataclass
class StallAttribution:
    """One stall window, explained."""

    start: float
    end: float
    reason: str
    l0_files: Optional[int] = None
    immutable_memtables: Optional[int] = None
    pending_compaction_bytes: Optional[int] = None
    concurrent_compaction_time: float = 0.0     # span-seconds overlapping
    concurrent_compactions: int = 0
    concurrent_flush_time: float = 0.0
    redirect_bytes: float = 0.0                 # Dev-LSM absorption
    redirect_ops: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


def _spans(source: Union[Tracer, Iterable[SpanLike]]) -> list[SpanLike]:
    if isinstance(source, Tracer):
        return list(source.spans())
    return [s for s in source]


def stall_attribution(source: Union[Tracer, Iterable[SpanLike]]
                      ) -> list[StallAttribution]:
    """Attribute every stall span in a tracer (or chrome span list)."""
    spans = _spans(source)
    out: list[StallAttribution] = []
    for span in spans:
        cat, _name, _actor, t0, t1, args = _fields(span)
        if cat != "stall":
            continue
        att = StallAttribution(
            start=t0, end=t1,
            reason=str(args.get("reason", "unknown")),
            l0_files=args.get("l0"),
            immutable_memtables=args.get("imm"),
            pending_compaction_bytes=args.get("pending_bytes"),
        )
        for other in spans:
            ocat, oname, _oactor, o0, o1, oargs = _fields(other)
            ov = _overlap(t0, t1, o0, o1)
            if ov <= 0:
                continue
            if ocat == "compaction":
                att.concurrent_compaction_time += ov
                att.concurrent_compactions += 1
            elif ocat == "flush":
                att.concurrent_flush_time += ov
            elif ocat == "kv" and oname.startswith(("kv.put", "kv.delete")):
                att.redirect_bytes += float(oargs.get("bytes", 0) or 0)
                att.redirect_ops += 1
        out.append(att)
    out.sort(key=lambda a: a.start)
    return out


def attribution_report(source: Union[Tracer, Iterable[SpanLike]],
                       title: str = "Stall attribution") -> str:
    """Human-readable per-stall table (the ``--report`` output)."""
    atts = stall_attribution(source)
    lines = [title, "=" * len(title)]
    if not atts:
        lines.append("no stall spans in trace")
        return "\n".join(lines)
    hdr = (f"{'#':>3} {'start':>9} {'dur(ms)':>9} {'reason':<14} "
           f"{'L0':>4} {'imm':>4} {'debt(MiB)':>10} {'compact(ms)':>12} "
           f"{'flush(ms)':>10} {'redirect':>12}")
    lines.append(hdr)
    lines.append("-" * len(hdr))
    for i, a in enumerate(atts, 1):
        debt = (f"{a.pending_compaction_bytes / (1 << 20):.1f}"
                if a.pending_compaction_bytes is not None else "-")
        lines.append(
            f"{i:>3} {a.start:>9.3f} {a.duration * 1e3:>9.2f} "
            f"{a.reason:<14} "
            f"{a.l0_files if a.l0_files is not None else '-':>4} "
            f"{a.immutable_memtables if a.immutable_memtables is not None else '-':>4} "
            f"{debt:>10} {a.concurrent_compaction_time * 1e3:>12.2f} "
            f"{a.concurrent_flush_time * 1e3:>10.2f} "
            f"{a.redirect_bytes / 1024:>10.1f}KiB")
    total = sum(a.duration for a in atts)
    by_reason: dict[str, float] = {}
    for a in atts:
        by_reason[a.reason] = by_reason.get(a.reason, 0.0) + a.duration
    lines.append("-" * len(hdr))
    lines.append(f"{len(atts)} stall(s), {total * 1e3:.2f} ms total; "
                 + ", ".join(f"{r}: {t * 1e3:.2f} ms"
                             for r, t in sorted(by_reason.items())))
    return "\n".join(lines)


def top_spans(source: Union[Tracer, Iterable[SpanLike]], n: int = 5
              ) -> dict[str, list[tuple[float, str, float]]]:
    """Per category, the ``n`` longest spans as (duration, name, t0)."""
    by_cat: dict[str, list[tuple[float, str, float]]] = {}
    for span in _spans(source):
        cat, name, _actor, t0, t1, _args = _fields(span)
        by_cat.setdefault(cat, []).append((t1 - t0, name, t0))
    return {
        cat: sorted(items, key=lambda it: -it[0])[:n]
        for cat, items in sorted(by_cat.items())
    }
