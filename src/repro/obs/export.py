"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL stream.

Chrome format notes (the subset we emit, loadable in Perfetto and
``chrome://tracing``):

* spans become complete events (``ph: "X"``) with ``ts``/``dur`` in
  microseconds — **simulated** seconds scaled by 1e6, not wall time;
* instants become ``ph: "i"`` (thread-scoped), counters ``ph: "C"``;
* each actor (writer process, flusher, compactor, detector, Dev-LSM, NAND
  caller, ...) gets its own pseudo-thread via ``thread_name`` metadata.

``validate_chrome_trace`` is the schema check CI runs against every trace
the smoke bench produces.
"""

from __future__ import annotations

import json
from typing import Optional

from .tracer import CounterRecord, InstantRecord, SpanRecord, Tracer

__all__ = [
    "SIM_SECONDS_TO_US",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_chrome_trace",
    "spans_from_chrome",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
]

# Chrome traces use microsecond timestamps; ours are simulated seconds.
SIM_SECONDS_TO_US = 1e6

_PID = 1


def _json_safe(args: Optional[dict]) -> dict:
    if not args:
        return {}
    out = {}
    for k, v in args.items():
        if isinstance(v, bytes):
            v = v.decode("utf-8", "replace")
        elif not isinstance(v, (str, int, float, bool, type(None))):
            v = repr(v)
        out[str(k)] = v
    return out


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Flatten a tracer into a sorted Chrome ``traceEvents`` list."""
    tids: dict[str, int] = {}

    def tid_of(actor: str) -> int:
        tid = tids.get(actor)
        if tid is None:
            tid = len(tids) + 1
            tids[actor] = tid
        return tid

    events: list[dict] = []
    for rec in tracer.events:
        if isinstance(rec, SpanRecord):
            if not rec.closed:
                continue
            events.append({
                "name": rec.name,
                "cat": rec.cat,
                "ph": "X",
                "ts": rec.t0 * SIM_SECONDS_TO_US,
                "dur": (rec.t1 - rec.t0) * SIM_SECONDS_TO_US,
                "pid": _PID,
                "tid": tid_of(rec.actor),
                "args": _json_safe(rec.args),
            })
        elif isinstance(rec, InstantRecord):
            events.append({
                "name": rec.name,
                "cat": rec.cat,
                "ph": "i",
                "s": "t",
                "ts": rec.t * SIM_SECONDS_TO_US,
                "pid": _PID,
                "tid": tid_of(rec.actor),
                "args": _json_safe(rec.args),
            })
        elif isinstance(rec, CounterRecord):
            events.append({
                "name": rec.name,
                "cat": "counter",
                "ph": "C",
                "ts": rec.t * SIM_SECONDS_TO_US,
                "pid": _PID,
                "tid": tid_of(rec.actor),
                "args": {"value": rec.value},
            })
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    meta = [{
        "name": "thread_name",
        "ph": "M",
        "pid": _PID,
        "tid": tid,
        "args": {"name": actor},
    } for actor, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    meta.append({
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": 0,
        "args": {"name": "repro-sim"},
    })
    return meta + events


def to_chrome_trace(tracer: Tracer, label: str = "repro") -> dict:
    """The full Chrome trace document."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "clock": "simulated seconds scaled to us (not wall time)",
            "dropped_events": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       label: str = "repro") -> dict:
    """Export, self-validate, and write the trace; returns the document."""
    doc = to_chrome_trace(tracer, label=label)
    assert_valid_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def write_jsonl(tracer: Tracer, path: str) -> int:
    """One JSON object per record, in emission order; returns the count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in tracer.events:
            if isinstance(rec, SpanRecord):
                obj = {"type": "span", "cat": rec.cat, "name": rec.name,
                       "actor": rec.actor, "t0": rec.t0, "t1": rec.t1,
                       "depth": rec.depth, "args": _json_safe(rec.args)}
            elif isinstance(rec, InstantRecord):
                obj = {"type": "instant", "cat": rec.cat, "name": rec.name,
                       "actor": rec.actor, "t": rec.t,
                       "args": _json_safe(rec.args)}
            else:
                obj = {"type": "counter", "name": rec.name,
                       "actor": rec.actor, "t": rec.t, "value": rec.value}
            fh.write(json.dumps(obj) + "\n")
            n += 1
    return n


def load_chrome_trace(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def spans_from_chrome(doc: dict) -> list[dict]:
    """Span-like dicts (cat/name/actor/t0/t1/args) from a Chrome doc.

    The inverse of :func:`chrome_trace_events` for ``X`` events — what the
    analysis CLI uses when it only has the JSON file, not the Tracer.
    """
    tid_names = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid_names[ev.get("tid")] = ev.get("args", {}).get("name", "?")
    spans = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        t0 = ev["ts"] / SIM_SECONDS_TO_US
        spans.append({
            "cat": ev.get("cat", ""),
            "name": ev.get("name", ""),
            "actor": tid_names.get(ev.get("tid"), str(ev.get("tid"))),
            "t0": t0,
            "t1": t0 + ev.get("dur", 0.0) / SIM_SECONDS_TO_US,
            "args": ev.get("args", {}),
        })
    return spans


# -- schema check ----------------------------------------------------------
_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(doc) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a dict, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    last_ts = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} must be an int")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts not monotonic ({ts} < {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter needs args")
    return errors


def assert_valid_chrome_trace(doc) -> None:
    errors = validate_chrome_trace(doc)
    if errors:
        preview = "; ".join(errors[:5])
        raise ValueError(
            f"invalid Chrome trace ({len(errors)} problem(s)): {preview}")
