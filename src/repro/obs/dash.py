"""Live terminal dashboard over the telemetry stream.

``python -m repro.obs dash`` runs one bench cell and re-renders a
sparkline panel each sim-second bucket: ops rates, per-direction PCIe
bytes, LSM pressure, write-controller state, Dev-LSM occupancy, and the
health-rule status line.  ``--once`` skips the live redraws and prints a
single final snapshot — the mode CI uses.

Rendering is driven by the runner's ``sample_callback`` — the dashboard
never touches the simulation, it only watches the bucket stream; health
status comes from a detached :class:`~repro.obs.rules.HealthMonitor`
replaying the same stream.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Optional

from .rules import HealthMonitor, default_rules

__all__ = ["Dashboard", "run_dash", "add_dash_args"]

# Channels shown as sparklines, in panel order: (channel, label)
_PANEL = [
    ("lsm.write_ops", "write ops/s"),
    ("lsm.read_ops", "read ops/s"),
    ("pcie.tx_bytes", "pcie tx B/s"),
    ("pcie.rx_bytes", "pcie rx B/s"),
    ("wc.state", "wc state"),
    ("lsm.l0", "L0 files"),
    ("lsm.pending_bytes", "pending B"),
    ("nand.busy_time", "nand busy s"),
    ("devlsm.bytes", "devlsm B"),
    ("ctl.redirected", "redirected/s"),
]

_CLEAR = "\x1b[2J\x1b[H"
_STATE_NAMES = {0: "normal", 1: "DELAYED", 2: "STOPPED"}


class Dashboard:
    """Accumulates bucket samples and renders the terminal panel."""

    def __init__(self, title: str, rules: Optional[list] = None,
                 window: int = 60, width: int = 60,
                 refresh: int = 1, live: bool = True, out=None):
        self.title = title
        self.window = window
        self.width = width
        self.refresh = max(1, refresh)
        self.live = live
        self.out = out if out is not None else sys.stdout
        self.monitor = HealthMonitor(None, rules if rules is not None
                                     else default_rules())
        self.history: dict[str, deque] = {}
        self.times: deque = deque(maxlen=window)
        self.buckets = 0

    # -- the runner's sample_callback -------------------------------------
    def __call__(self, t: float, sample: dict) -> None:
        self.times.append(t)
        for name, value in sample.items():
            h = self.history.get(name)
            if h is None:
                h = self.history[name] = deque(maxlen=self.window)
            h.append(value)
        self.monitor.observe(t, sample)
        self.buckets += 1
        if self.live and self.buckets % self.refresh == 0:
            self.out.write(_CLEAR + self.render())
            self.out.flush()

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        from ..bench.report import series_sparkline
        lines = []
        t = self.times[-1] if self.times else 0.0
        lines.append(f"== {self.title}   t={t:.1f}s   "
                     f"bucket {self.buckets}")
        for channel, label in _PANEL:
            h = self.history.get(channel)
            if not h:
                continue
            lines.append("  " + series_sparkline(
                list(h), width=self.width, label=f"{label:>13s} "))
        lines.append(self._health_line())
        recent = self.monitor.events[-5:]
        if recent:
            lines.append("  recent health events:")
            for e in recent:
                lines.append(f"    [{e.severity:>8s}] t={e.t:9.2f}  "
                             f"{e.rule} {e.phase}")
        return "\n".join(lines) + "\n"

    def _health_line(self) -> str:
        wc = self.history.get("wc.state")
        state = _STATE_NAMES.get(int(wc[-1]) if wc else 0, "?")
        if self.monitor.active:
            status = "UNHEALTHY: " + ", ".join(sorted(self.monitor.active))
        else:
            status = "healthy"
        fired = self.monitor.summary()
        total = sum(fired.values())
        return (f"  health: {status}   wc={state}   "
                f"{total} rule firing(s) so far")


def add_dash_args(parser) -> None:
    parser.add_argument("--system", default="kvaccel",
                        choices=["rocksdb", "adoc", "kvaccel"])
    parser.add_argument("--workload", default="A")
    parser.add_argument("--threads", type=int, default=1,
                        help="compaction threads (default 1)")
    parser.add_argument("--no-slowdown", action="store_true",
                        help="disable the slowdown mechanism "
                             "(rocksdb/adoc cells)")
    parser.add_argument("--rollback", default="disabled",
                        choices=["eager", "lazy", "disabled"])
    parser.add_argument("--quick", action="store_true",
                        help="mini256 profile (seconds, not minutes)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the profile horizon (paper seconds)")
    parser.add_argument("--refresh", type=int, default=1,
                        help="redraw every N buckets (default 1)")
    parser.add_argument("--once", action="store_true",
                        help="no live redraws; print one final snapshot "
                             "(CI mode)")


def run_dash(args) -> int:
    # Imported lazily: repro.bench imports repro.obs, so a module-level
    # import here would be circular.
    from ..bench.experiments.common import resolve_profile
    from ..bench.runner import RunSpec, run_workload

    profile = resolve_profile(None, args.quick)
    spec = RunSpec(system=args.system, workload=args.workload,
                   compaction_threads=args.threads,
                   slowdown=not args.no_slowdown,
                   rollback=args.rollback,
                   duration=args.duration)
    rules = default_rules(
        period=profile.sample_period,
        device_peak_bw=profile.device_peak_bw,
        delayed_write_rate=profile.options.delayed_write_rate,
        value_size=profile.value_size)
    dash = Dashboard(title=f"{spec.display} / workload {args.workload} "
                           f"({profile.name})",
                     rules=rules, refresh=args.refresh, live=not args.once)
    result = run_workload(spec, profile, health_rules=rules,
                          sample_callback=dash)
    if args.once:
        sys.stdout.write(dash.render())
    print(f"\nrun complete: {result.write_ops} writes, "
          f"{result.read_ops} reads over {result.duration:.1f}s; "
          f"{len([e for e in result.health_events if e['phase'] == 'enter'])}"
          f" health firing(s)")
    for rule, count in sorted(result.health_summary().items()):
        print(f"  {rule}: {count}")
    return 0
