"""Bench baseline comparison with tolerance bands.

``python -m repro.obs compare OLD.json NEW.json`` diffs two
``BENCH_<exp>.json`` documents (written by ``python -m repro.bench <exp>
--json``) cell by cell and reports regressions.  Simulated runs are
deterministic, so identical code produces identical numbers and a
self-compare is exactly zero-diff; the tolerance bands exist to absorb
intentional model changes that move metrics within noise of the paper's
own run-to-run variance.

Higher-is-better metrics regress when NEW falls more than ``tol`` below
OLD; lower-is-better metrics regress when NEW rises more than ``tol``
above OLD.  An absolute slack floor keeps tiny denominators (0.2 s of
stalls) from flagging on trivial deltas.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = ["MetricSpec", "Finding", "compare_baselines",
           "format_comparison", "DEFAULT_METRICS", "PERF_METRICS"]


class MetricSpec:
    """How one cell metric is judged."""

    __slots__ = ("key", "higher_is_better", "tolerance", "abs_slack")

    def __init__(self, key: str, higher_is_better: bool,
                 tolerance: float, abs_slack: float = 0.0):
        self.key = key
        self.higher_is_better = higher_is_better
        self.tolerance = tolerance        # relative band, e.g. 0.10 = 10%
        self.abs_slack = abs_slack        # absolute band floor

    def judge(self, old: float, new: float) -> Optional[str]:
        """Return "regression" / "improvement" / None (within band)."""
        delta = new - old
        band = max(abs(old) * self.tolerance, self.abs_slack)
        if abs(delta) <= band:
            return None
        good = delta > 0 if self.higher_is_better else delta < 0
        return "improvement" if good else "regression"


DEFAULT_METRICS = [
    MetricSpec("write_throughput_ops", higher_is_better=True,
               tolerance=0.10, abs_slack=1.0),
    MetricSpec("read_throughput_ops", higher_is_better=True,
               tolerance=0.10, abs_slack=1.0),
    MetricSpec("write_p99_us", higher_is_better=False,
               tolerance=0.25, abs_slack=5.0),
    MetricSpec("total_stall_time", higher_is_better=False,
               tolerance=0.20, abs_slack=0.5),
    MetricSpec("total_delayed_time", higher_is_better=False,
               tolerance=0.20, abs_slack=0.5),
    MetricSpec("efficiency", higher_is_better=True,
               tolerance=0.15, abs_slack=0.0),
]

# Harness-performance metrics (schema v2 cells, opt-in via ``--perf``):
# wall-clock varies with host load, so the bands are wide — the check is
# meant to catch the harness getting *structurally* slower (a kernel
# fast-path regressing, a driver de-batching), not scheduler noise.
# events_processed is deterministic and gets a tight band: a big jump in
# kernel events for the same model output usually means an accidental
# busy-poll somewhere.
PERF_METRICS = [
    MetricSpec("events_per_sec", higher_is_better=True,
               tolerance=0.40, abs_slack=0.0),
    MetricSpec("wall_clock_s", higher_is_better=False,
               tolerance=0.50, abs_slack=1.0),
    MetricSpec("events_processed", higher_is_better=False,
               tolerance=0.02, abs_slack=100.0),
]


class Finding:
    """One out-of-band metric move (or a structural mismatch)."""

    __slots__ = ("cell", "metric", "old", "new", "kind", "note")

    def __init__(self, cell: str, metric: str, old, new, kind: str,
                 note: str = ""):
        self.cell = cell
        self.metric = metric
        self.old = old
        self.new = new
        self.kind = kind      # "regression" | "improvement" | "structural"
        self.note = note

    def __repr__(self) -> str:
        return (f"Finding({self.kind}: {self.cell}/{self.metric} "
                f"{self.old} -> {self.new})")


def _require_baseline(doc: dict, path: str) -> None:
    if doc.get("schema") != "repro-bench-baseline":
        raise ValueError(f"{path}: not a repro-bench-baseline document")


def compare_baselines(old_doc: dict, new_doc: dict,
                      metrics: Optional[list] = None,
                      old_path: str = "old", new_path: str = "new") -> list:
    """Compare two baseline documents; returns a list of :class:`Finding`.

    Missing/added cells and health-rule firing changes are structural
    findings (counted as regressions by the CLI: a rule newly firing means
    the run's health changed, which a baseline bump must acknowledge).
    """
    _require_baseline(old_doc, old_path)
    _require_baseline(new_doc, new_path)
    metrics = metrics if metrics is not None else DEFAULT_METRICS
    findings: list[Finding] = []
    old_cells = old_doc.get("cells", {})
    new_cells = new_doc.get("cells", {})
    for label in sorted(set(old_cells) | set(new_cells)):
        if label not in new_cells:
            findings.append(Finding(label, "<cell>", "present", "missing",
                                    "structural", "cell disappeared"))
            continue
        if label not in old_cells:
            findings.append(Finding(label, "<cell>", "missing", "present",
                                    "structural", "new cell (informational)"))
            continue
        old_c, new_c = old_cells[label], new_cells[label]
        for spec in metrics:
            if spec.key not in old_c or spec.key not in new_c:
                continue
            verdict = spec.judge(float(old_c[spec.key]),
                                 float(new_c[spec.key]))
            if verdict is not None:
                findings.append(Finding(label, spec.key, old_c[spec.key],
                                        new_c[spec.key], verdict))
        old_h = old_c.get("health", {}) or {}
        new_h = new_c.get("health", {}) or {}
        for rule in sorted(set(old_h) | set(new_h)):
            o, n = old_h.get(rule, 0), new_h.get(rule, 0)
            if (o == 0) != (n == 0):
                findings.append(Finding(
                    label, f"health.{rule}", o, n, "structural",
                    "health rule firing state changed"))
    return findings


def _fmt_val(v) -> str:
    if isinstance(v, float):
        return f"{v:,.2f}"
    return str(v)


def format_comparison(findings: list, old_path: str = "old",
                      new_path: str = "new") -> str:
    """Human-readable report; the CLI prints this and exits non-zero when
    any regression or cell-loss/health structural finding exists."""
    lines = [f"baseline compare: {old_path} -> {new_path}"]
    regressions = [f for f in findings
                   if f.kind == "regression"
                   or (f.kind == "structural"
                       and "informational" not in f.note)]
    improvements = [f for f in findings if f.kind == "improvement"]
    info = [f for f in findings if f not in regressions
            and f not in improvements]
    if not findings:
        lines.append("  no differences outside tolerance bands")
    for title, group in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("informational", info)):
        if group:
            lines.append(f"  {title}:")
            for f in group:
                note = f"  ({f.note})" if f.note else ""
                lines.append(f"    {f.cell:28s} {f.metric:24s} "
                             f"{_fmt_val(f.old)} -> {_fmt_val(f.new)}{note}")
    lines.append(f"  {len(regressions)} regression(s), "
                 f"{len(improvements)} improvement(s)")
    return "\n".join(lines)


def regression_count(findings: list) -> int:
    return sum(1 for f in findings
               if f.kind == "regression"
               or (f.kind == "structural" and "informational" not in f.note))


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    _require_baseline(doc, path)
    return doc
