"""Telemetry exporters: Prometheus text format and CSV.

Both operate on the plain-data view of a hub
(:meth:`~repro.obs.telemetry.TelemetryHub.export` — ``{"period", "times",
"channels", "kinds"}``), so they work equally on a live hub, a
``RunResult.telemetry`` field, or a baseline JSON loaded from disk.
"""

from __future__ import annotations

import io
from typing import Optional, Union

__all__ = ["telemetry_to_prometheus", "telemetry_to_csv",
           "write_telemetry_csv"]


def _export_of(telemetry) -> dict:
    """Accept a TelemetryHub or an already-exported dict."""
    if hasattr(telemetry, "export"):
        return telemetry.export()
    return telemetry


def _metric_name(channel: str, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in channel)
    return f"{prefix}{safe}"


def telemetry_to_prometheus(telemetry, prefix: str = "repro_",
                            labels: Optional[dict] = None) -> str:
    """Render the latest state of every channel in Prometheus text format.

    Per channel: a gauge with the last bucket's value, plus a companion
    ``_total`` counter (cumulative sum) for rate channels.  ``labels``
    (e.g. ``{"cell": "KVAccel(1)"}``) are attached to every sample.
    """
    doc = _export_of(telemetry)
    kinds = doc.get("kinds", {})
    times = doc.get("times", [])
    label_str = ""
    if labels:
        inner = ",".join(
            '{}="{}"'.format(k, str(v).replace('"', '\\"'))
            for k, v in sorted(labels.items()))
        label_str = "{" + inner + "}"
    out = io.StringIO()
    for channel in sorted(doc.get("channels", {})):
        series = doc["channels"][channel]
        name = _metric_name(channel, prefix)
        last = series[-1] if series else 0.0
        out.write(f"# HELP {name} repro telemetry channel {channel}\n")
        out.write(f"# TYPE {name} gauge\n")
        out.write(f"{name}{label_str} {_fmt(last)}\n")
        if kinds.get(channel) == "rate":
            out.write(f"# HELP {name}_total cumulative sum of {channel}\n")
            out.write(f"# TYPE {name}_total counter\n")
            out.write(f"{name}_total{label_str} {_fmt(sum(series))}\n")
    if times:
        name = f"{prefix}sim_time_seconds"
        out.write(f"# HELP {name} simulation clock at the last bucket\n")
        out.write(f"# TYPE {name} gauge\n")
        out.write(f"{name}{label_str} {_fmt(times[-1])}\n")
    return out.getvalue()


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def telemetry_to_csv(telemetry) -> str:
    """Render all channels as one CSV: a ``time`` column plus one column
    per channel, one row per bucket."""
    doc = _export_of(telemetry)
    names = sorted(doc.get("channels", {}))
    times = doc.get("times", [])
    out = io.StringIO()
    out.write(",".join(["time"] + names) + "\n")
    for i, t in enumerate(times):
        row = [_fmt(t)]
        for n in names:
            series = doc["channels"][n]
            row.append(_fmt(series[i]) if i < len(series) else "")
        out.write(",".join(row) + "\n")
    return out.getvalue()


def write_telemetry_csv(telemetry, path: Union[str, "object"]) -> None:
    with open(path, "w") as fh:
        fh.write(telemetry_to_csv(telemetry))
