"""Deterministic flight recorder + first-divergence bisector.

The :class:`Journal` is the fourth observability plane (after tracer,
telemetry and lineage): a black-box recorder of every executed kernel
event — monotonic index, sim time, owning process, event class — plus
every fault-site visit and periodic per-layer state digests.  It follows
the same env-attribute no-op-guard pattern: ``env.journal`` stays None on
uninstrumented runs, and an installed journal is purely *passive* — it
never yields, never schedules events, never touches the heap — so a
journal-ENABLED run takes the exact same simulated trajectory as a bare
one (pinned by the golden fig11 tests).

Why it exists: every guarantee here rests on bit-identical determinism,
but a failed golden check used to be a giant diff of final series.  Two
journals of the "same" run turn that into *"first divergent event at
t=…, process=…, site=…"*:

* **events** — the kernel's ``_run_journaled`` loop records one entry
  per dispatched event;
* **sites** — the ``fault_point``/``touch`` chokepoint in
  ``repro.faults.registry`` records every named site visit (with or
  without a FaultRegistry installed), so divergence reports can name the
  semantic location, not just the event class;
* **digests** — registered layers (Main-LSM, controller, detector,
  Dev-LSM, FTL wear, resilience) expose ``state_digest()`` dicts the
  journal hashes into checkpoint records every ``period`` sim-seconds,
  which lets the bisector narrow a divergence to one checkpoint window
  before walking events.

Exports are JSONL (optionally gzip with ``mtime=0``), so the same
profile + seed produces *byte-identical* files — the property the
``journal-smoke`` CI job and the determinism tests pin.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from collections import deque
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "Journal",
    "digest_state",
    "register_digest_sources",
    "write_journal",
    "load_journal",
    "first_divergence",
    "format_divergence",
    "write_divergence_artifact",
    "divergence_dir",
    "replay_window",
    "DIVERGENCE_DIR_ENV",
]

# Record kinds (field 0 of every record tuple).
EVENT = "event"
SITE = "site"
DIGEST = "digest"

DIVERGENCE_DIR_ENV = "REPRO_DIVERGENCE_DIR"


def digest_state(state: dict) -> str:
    """Stable short hash of a layer's ``state_digest()`` dict.

    ``sort_keys`` + compact separators make the serialization canonical;
    ``default=_clean`` covers sets and other non-JSON scalars so layers
    can report e.g. retired-block sets directly.
    """
    def _clean(obj):
        if isinstance(obj, (set, frozenset)):
            return sorted(obj)
        return str(obj)

    blob = json.dumps(state, sort_keys=True, separators=(",", ":"),
                      default=_clean)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class Journal:
    """The flight recorder attached to one Environment.

    Records are plain tuples ``(kind, idx, t, proc, tag)``:

    * ``("event", idx, t, proc_name, event_class)`` — one per dispatched
      kernel event (``proc_name`` is ``""`` when no Process owns it);
    * ``("site", idx, t, proc_name, site_name)`` — one per fault-site
      visit;
    * ``("digest", idx, t, layer_name, hexdigest)`` — one per registered
      layer at each checkpoint boundary.

    ``idx`` is a monotonic global index over *all* records (it keeps
    counting even when ``ring`` evicts or ``window`` skips, so a crash
    tail or a suspect-window recording still reports absolute positions).

    ``ring=N`` keeps only the last N records (crash tails, bounded
    memory); ``window=(t0, t1)`` records only events/sites inside the
    closed sim-time interval (the ``replay-to`` mode).
    """

    def __init__(self, period: float = 1.0, ring: Optional[int] = None,
                 window: Optional[tuple] = None):
        if period <= 0:
            raise ValueError("period must be positive")
        if ring is not None and ring <= 0:
            raise ValueError("ring must be positive")
        self.period = float(period)
        self.ring = ring
        self.window = window
        self.records: deque = deque(maxlen=ring)
        self.dropped = 0
        self.event_count = 0
        self.site_count = 0
        self.checkpoint_count = 0
        self._idx = 0
        # First checkpoint boundary; the kernel loop compares the popped
        # event's timestamp against this before dispatching it.
        self._next_ckpt = self.period
        self._sources: list[tuple[str, Callable[[], dict]]] = []
        self._env = None

    # -- wiring ------------------------------------------------------------
    def install(self, env) -> "Journal":
        """Attach to an Environment; the kernel finds us via
        ``env.journal`` and switches to its journaled dispatch loop."""
        env.journal = self
        self._env = env
        return self

    @staticmethod
    def of(env) -> Optional["Journal"]:
        return getattr(env, "journal", None)

    def add_digest_source(self, name: str, fn: Callable[[], dict]) -> None:
        """Register a layer digest; hashed at every checkpoint in
        registration order (so the digest stream is deterministic)."""
        self._sources.append((name, fn))

    # -- recording (called from the kernel / fault probes) ------------------
    def _append(self, record: tuple) -> None:
        if self.ring is not None and len(self.records) == self.ring:
            self.dropped += 1
        self.records.append(record)

    def record_event(self, t: float, proc: str, cls: str) -> None:
        idx = self._idx
        self._idx = idx + 1
        self.event_count += 1
        w = self.window
        if w is not None and not (w[0] <= t <= w[1]):
            return
        self._append((EVENT, idx, t, proc, cls))

    def site(self, t: float, proc: str, site: str) -> None:
        idx = self._idx
        self._idx = idx + 1
        self.site_count += 1
        w = self.window
        if w is not None and not (w[0] <= t <= w[1]):
            return
        self._append((SITE, idx, t, proc, site))

    def _checkpoint(self, t: float) -> None:
        """Take a digest checkpoint; called by the kernel when the popped
        event's timestamp crosses the next boundary (and manually via
        :meth:`checkpoint_now`).  Records carry the *boundary* time, so
        two runs checkpoint at identical labels while their trajectories
        agree."""
        ck_t = self._next_ckpt
        # Skip idle gaps: one checkpoint per crossing, labeled with the
        # last boundary at or before t.
        nxt = self._next_ckpt
        while nxt <= t:
            ck_t = nxt
            nxt += self.period
        self._next_ckpt = nxt
        self._digest_all(ck_t)

    def checkpoint_now(self, t: Optional[float] = None) -> None:
        """Force a checkpoint (end-of-run flush, so even runs shorter
        than one period carry at least one digest record)."""
        if t is None:
            t = self._env.now if self._env is not None else 0.0
        self._digest_all(t)

    def _digest_all(self, ck_t: float) -> None:
        self.checkpoint_count += 1
        for name, fn in self._sources:
            idx = self._idx
            self._idx = idx + 1
            self._append((DIGEST, idx, ck_t, name, digest_state(fn())))

    # -- views ---------------------------------------------------------------
    @staticmethod
    def record_dict(rec: tuple) -> dict:
        kind = rec[0]
        key = "layer" if kind == DIGEST else "proc"
        tag_key = {EVENT: "class", SITE: "site", DIGEST: "digest"}[kind]
        return {"kind": kind, "idx": rec[1], "t": rec[2],
                key: rec[3], tag_key: rec[4]}

    def tail(self, n: Optional[int] = None) -> list:
        """The most recent records as plain dicts, oldest first — the
        crash-tail view the fault harness attaches to its reports."""
        records = list(self.records)
        if n is not None:
            records = records[-n:]
        return [self.record_dict(r) for r in records]

    def event_class_histogram(self) -> dict:
        out: dict[str, int] = {}
        for rec in self.records:
            if rec[0] == EVENT:
                out[rec[4]] = out.get(rec[4], 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"Journal(records={len(self.records)}, "
                f"events={self.event_count}, sites={self.site_count}, "
                f"checkpoints={self.checkpoint_count}, "
                f"period={self.period})")


# -- digest-source wiring ----------------------------------------------------

def register_digest_sources(journal: Journal, db, ssd=None,
                            scope: str = "") -> None:
    """Register every layer of a built system on ``journal``.

    Duck-typed over the three system shapes the bench runner builds:
    a ClusterDb fans out per shard under ``cluster.shard{k}.`` scopes
    (the channel-naming convention telemetry and lineage already use), a
    KvaccelDb registers all four model layers, and a plain DbImpl/AdocDb
    registers the LSM plus FTL wear.
    """
    if hasattr(db, "shards") and hasattr(db, "router"):      # ClusterDb
        for sh in db.shards:
            register_digest_sources(journal, sh.db, sh.ssd,
                                    scope=f"cluster.shard{sh.sid}.")
        # Replica groups (replication-enabled clusters only — an empty
        # ``groups`` adds no sources, keeping unreplicated digest streams
        # byte-identical): the group's own protocol digest plus the full
        # layer set of every backup stack.  Sources bind the stacks they
        # see *now*; after a promotion the promoted stack keeps digesting
        # under its backup scope and the group digest's ``epoch`` moves.
        groups = getattr(db, "groups", None) or {}
        for sid in sorted(groups):
            grp = groups[sid]
            journal.add_digest_source(f"cluster.shard{sid}.repl",
                                      grp.state_digest)
            for j, b in enumerate(grp.backups):
                register_digest_sources(
                    journal, b.db, b.ssd,
                    scope=f"cluster.shard{sid}.backup{j}.")
        return
    if hasattr(db, "main") and hasattr(db, "controller"):    # KvaccelDb
        dev = ssd if ssd is not None else db.ssd
        journal.add_digest_source(scope + "lsm", db.main.state_digest)
        journal.add_digest_source(scope + "controller",
                                  db.controller.state_digest)
        journal.add_digest_source(scope + "detector",
                                  db.detector.state_digest)
        journal.add_digest_source(scope + "devlsm", dev.devlsm.state_digest)
        journal.add_digest_source(scope + "ftl", dev.ftl.state_digest)
        if db.resil is not None:
            def resil_digest(db=db, dev=dev):
                out = db.resil.state_digest()
                out["kv_retry"] = dev.kv.retry.stats.as_dict()
                out["block_retry"] = dev.block.retry.stats.as_dict()
                return out
            journal.add_digest_source(scope + "resil", resil_digest)
        return
    if hasattr(db, "state_digest"):                          # DbImpl / AdocDb
        journal.add_digest_source(scope + "lsm", db.state_digest)
    if ssd is not None and hasattr(ssd, "ftl"):
        journal.add_digest_source(scope + "ftl", ssd.ftl.state_digest)


# -- export / import ---------------------------------------------------------

def _serialize(journal: Journal, meta: Optional[dict] = None) -> bytes:
    header = {
        "kind": "header", "schema": "repro-journal", "version": 1,
        "period": journal.period,
        "events": journal.event_count, "sites": journal.site_count,
        "checkpoints": journal.checkpoint_count,
        "dropped": journal.dropped,
        "layers": [name for name, _ in journal._sources],
    }
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    dumps = json.dumps
    for rec in journal.records:
        lines.append(dumps(list(rec), separators=(",", ":")))
    return ("\n".join(lines) + "\n").encode()


def write_journal(journal: Journal, path: str,
                  meta: Optional[dict] = None) -> str:
    """Write the journal as JSONL (gzip when ``path`` ends in ``.gz``).

    Gzip is written with ``mtime=0`` and no embedded filename, so two
    recordings of the same trajectory are *byte*-identical files — the
    determinism tests and the CI journal-smoke job diff them directly.
    """
    payload = _serialize(journal, meta)
    p = Path(path)
    if p.parent != Path("."):
        p.parent.mkdir(parents=True, exist_ok=True)
    if path.endswith(".gz"):
        with open(p, "wb") as fh:
            with gzip.GzipFile(filename="", mode="wb", fileobj=fh,
                               mtime=0) as gz:
                gz.write(payload)
    else:
        p.write_bytes(payload)
    return str(p)


def load_journal(path: str) -> dict:
    """Load a journal file: ``{"meta": header, "records": [tuple, ...]}``."""
    raw = Path(path).read_bytes()
    if path.endswith(".gz") or raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    lines = raw.decode().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty journal")
    meta = json.loads(lines[0])
    if meta.get("schema") != "repro-journal":
        raise ValueError(f"{path}: not a repro-journal file")
    records = [tuple(json.loads(line)) for line in lines[1:] if line]
    return {"meta": meta, "records": records}


# -- the bisector -------------------------------------------------------------

def _records_differ(x: tuple, y: tuple) -> bool:
    # Compare content, not idx: positions already align by construction.
    return x[0] != y[0] or x[2] != y[2] or x[3] != y[3] or x[4] != y[4]


def _nearest_site(records: list, pos: int) -> Optional[tuple]:
    """The closest site record strictly before ``pos``.

    Site records are emitted *before* a fault action applies (the journal
    hook sits ahead of the registry guard), so the record streams of a
    clean and a perturbed run are identical up to and including the
    perturbed site's own record — the nearest site preceding the first
    divergent record names the injection point."""
    for i in range(min(pos, len(records)) - 1, -1, -1):
        if records[i][0] == SITE:
            return records[i]
    return None


def first_divergence(a: dict, b: dict, context: int = 6) -> dict:
    """Locate the first divergence between two loaded journals.

    Two passes, cheapest first:

    1. walk the digest-checkpoint streams to the first mismatching
       ``(t, layer, digest)`` — this brackets the divergence between two
       checkpoints without touching the (much longer) event stream;
    2. walk the full record streams to the first record whose content
       differs (or the first extra record when one stream is a prefix of
       the other), then attach surrounding context and the nearest
       preceding site record from the same process.

    Returns a plain JSON-able report; ``report["divergent"]`` is False
    when the journals are record-identical.
    """
    ra, rb = a["records"], b["records"]

    # Pass 1: checkpoint digests.
    da = [r for r in ra if r[0] == DIGEST]
    db = [r for r in rb if r[0] == DIGEST]
    checkpoint = None
    for i, (x, y) in enumerate(zip(da, db)):
        if x[2] != y[2] or x[3] != y[3] or x[4] != y[4]:
            checkpoint = {
                "ordinal": i, "layer": x[3],
                "t_a": x[2], "t_b": y[2],
                "digest_a": x[4], "digest_b": y[4],
                "last_match_t": da[i - 1][2] if i else 0.0,
            }
            break
    else:
        if len(da) != len(db):
            i = min(len(da), len(db))
            extra = (da if len(da) > len(db) else db)[i]
            checkpoint = {
                "ordinal": i, "layer": extra[3],
                "t_a": extra[2] if len(da) > len(db) else None,
                "t_b": extra[2] if len(db) > len(da) else None,
                "digest_a": extra[4] if len(da) > len(db) else None,
                "digest_b": extra[4] if len(db) > len(da) else None,
                "last_match_t": da[i - 1][2] if i else 0.0,
            }

    # Pass 2: first divergent record.
    pos = None
    for i, (x, y) in enumerate(zip(ra, rb)):
        if _records_differ(x, y):
            pos = i
            break
    else:
        if len(ra) != len(rb):
            pos = min(len(ra), len(rb))

    report = {
        "divergent": pos is not None or checkpoint is not None,
        "records_a": len(ra), "records_b": len(rb),
        "checkpoint": checkpoint,
        "first_divergence": None,
        "suspect_site": None,
        "context_a": [], "context_b": [],
    }
    if pos is None:
        return report

    rec_a = ra[pos] if pos < len(ra) else None
    rec_b = rb[pos] if pos < len(rb) else None
    # The run with the extra/changed record anchors the report; prefer b
    # (conventionally the candidate run) when both exist.
    anchor, anchor_stream = ((rec_b, rb) if rec_b is not None
                             else (rec_a, ra))
    site_rec = _nearest_site(anchor_stream, pos)
    report["first_divergence"] = {
        "index": pos,
        "t": anchor[2],
        "kind": anchor[0],
        "proc": anchor[3] if anchor[0] != DIGEST else "",
        "tag": anchor[4],
        "a": Journal.record_dict(rec_a) if rec_a is not None else None,
        "b": Journal.record_dict(rec_b) if rec_b is not None else None,
    }
    if site_rec is not None:
        report["suspect_site"] = {"site": site_rec[4], "t": site_rec[2],
                                  "proc": site_rec[3]}
    lo = max(0, pos - context)
    hi = pos + context
    report["context_a"] = [Journal.record_dict(r) for r in ra[lo:hi]]
    report["context_b"] = [Journal.record_dict(r) for r in rb[lo:hi]]
    return report


def format_divergence(report: dict, name_a: str = "A",
                      name_b: str = "B") -> str:
    """Human rendering of a :func:`first_divergence` report."""
    lines = [f"journal diff: {name_a} vs {name_b}",
             f"  records: {report['records_a']} vs {report['records_b']}"]
    if not report["divergent"]:
        lines.append("  identical: no divergence found")
        return "\n".join(lines)
    ck = report.get("checkpoint")
    if ck is not None:
        lines.append(
            f"  first digest mismatch: layer={ck['layer']} "
            f"checkpoint#{ck['ordinal']} "
            f"(t_a={ck['t_a']}, t_b={ck['t_b']}; "
            f"last matching checkpoint t={ck['last_match_t']})")
    else:
        lines.append("  digest checkpoints: all matching "
                     "(divergence after the last checkpoint)")
    fd = report.get("first_divergence")
    if fd is not None:
        proc = fd["proc"] or "<no process>"
        lines.append(
            f"  first divergent record: #{fd['index']} "
            f"t={fd['t']:.9g} process={proc} "
            f"kind={fd['kind']} tag={fd['tag']}")
        if fd["a"] is None:
            lines.append(f"    (extra record only in {name_b})")
        elif fd["b"] is None:
            lines.append(f"    (extra record only in {name_a})")
        else:
            lines.append(f"    {name_a}: {fd['a']}")
            lines.append(f"    {name_b}: {fd['b']}")
    site = report.get("suspect_site")
    if site is not None:
        lines.append(
            f"  suspect site: {site['site']} "
            f"(t={site['t']:.9g}, process={site['proc'] or '<none>'})")
    ctx = report.get("context_b") or report.get("context_a")
    if ctx:
        lines.append("  context (candidate run):")
        for rec in ctx:
            tag = rec.get("class") or rec.get("site") or rec.get("digest")
            who = rec.get("proc", rec.get("layer", ""))
            lines.append(f"    #{rec['idx']:>8d} t={rec['t']:<12.9g} "
                         f"{rec['kind']:<6s} {who:<28s} {tag}")
    return "\n".join(lines)


# -- divergence artifacts ------------------------------------------------------

def divergence_dir() -> Optional[Path]:
    """Artifact directory from ``REPRO_DIVERGENCE_DIR`` (None = off)."""
    raw = os.environ.get(DIVERGENCE_DIR_ENV)
    return Path(raw) if raw else None


def write_divergence_artifact(name: str, report: dict,
                              journal: Optional[Journal] = None,
                              directory: Optional[Path] = None,
                              meta: Optional[dict] = None) -> Optional[str]:
    """Emit a divergence report (plus the journal, when given) under the
    artifact directory.  Returns the report path, or None when no
    directory is configured — callers embed the path in their failure
    message so a red golden/oracle check points straight at the evidence.
    """
    directory = directory if directory is not None else divergence_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    doc = {"schema": "repro-divergence", "version": 1, "name": name,
           "report": report}
    if meta:
        doc["meta"] = meta
    report_path = directory / f"{name}.divergence.json"
    report_path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                                      default=str) + "\n")
    if journal is not None:
        write_journal(journal, str(directory / f"{name}.journal.jsonl.gz"),
                      meta={"artifact": name})
    return str(report_path)


# -- replay-to ----------------------------------------------------------------

def replay_window(system: str, workload: str, profile, t0: float, t1: float,
                  out_path: str, seed: int = 1,
                  rollback: str = "disabled") -> dict:
    """Re-run one cell recording only the suspect window ``[t0, t1]``.

    The full trajectory is re-simulated (determinism makes that exact);
    only journal *storage* is windowed, so the output stays small while
    record indices remain the absolute positions ``first_divergence``
    reported.  Returns ``{"path", "records", "events"}``.
    """
    # Imported here: repro.bench imports repro.obs at module load.
    from ..bench.runner import RunOptions, RunSpec, run_workload

    if t1 < t0:
        raise ValueError("need t0 <= t1")
    spec = RunSpec(system, workload, 1, seed=seed, rollback=rollback)
    result = run_workload(spec, profile,
                          options=RunOptions(journal_path=out_path,
                                             journal_window=(t0, t1)))
    journal = result.extra.get("journal")
    return {"path": result.extra.get("journal_path"),
            "records": len(journal) if journal is not None else 0,
            "events": journal.event_count if journal is not None else 0}
