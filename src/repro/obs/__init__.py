"""Observability: sim-time tracing, typed metrics, and trace exporters.

``repro.obs`` mirrors the fault registry's installation pattern: a
:class:`Tracer` is attached to the simulation :class:`~repro.sim.Environment`
(``tracer.install(env)``) and every probe in the stack is guarded by a plain
``env.tracer is not None`` check — with no tracer installed the probes cost
one attribute read and allocate nothing, so production simulations are
bit-identical with tracing off.

Pieces:

* :class:`Tracer` — nestable sim-time **spans** (``write``, ``flush``,
  ``compaction[Lx->Ly]``, ``rollback.eager``, ``nand.program``, ...) and
  point **instants** (stall enter/exit, detector verdicts, slowdown rate
  changes, interface switches), timestamped from the DES clock;
* :class:`MetricRegistry` — typed counters / gauges / sim-time histograms
  that the run collector re-plugs its ad-hoc meters onto;
* exporters — Chrome ``trace_event`` JSON (open in Perfetto or
  ``chrome://tracing``), a JSONL event stream, and a human stall
  attribution report (``python -m repro.obs report trace.json``);
* :class:`TelemetryHub` — unified per-second time-series channels every
  layer publishes into (``env.telemetry``, same no-op-when-off guard);
* :class:`HealthMonitor` + :func:`default_rules` — windowed SLO
  predicates (stall storms, zero-traffic-while-stalled, ...) emitting
  typed :class:`HealthEvent` edges;
* telemetry exporters — Prometheus text format, CSV, terminal sparkline
  dashboard (``python -m repro.obs dash``), and bench-baseline
  comparison (``python -m repro.obs compare A.json B.json``);
* :class:`Journal` — the deterministic flight recorder (``env.journal``,
  same no-op guard): every executed kernel event, every fault-site visit,
  periodic per-layer state digests; with the first-divergence bisector
  (``python -m repro.obs diff A.jsonl.gz B.jsonl.gz``) it turns a golden
  mismatch into "first divergent event at t=…, process=…, site=…".
"""

from .attribution import (
    StallAttribution,
    attribution_report,
    stall_attribution,
    top_spans,
)
from .export import (
    chrome_trace_events,
    load_chrome_trace,
    spans_from_chrome,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .compare import compare_baselines, format_comparison
from .exporters import telemetry_to_csv, telemetry_to_prometheus
from .metrics import Counter, Gauge, MetricRegistry, SimHistogram
from .profiler import (
    DEFAULT_BANDS,
    LINEAGE_SCHEMA,
    SEGMENTS,
    LineageProfiler,
    check_lineage_invariant,
    exemplars_from_chrome,
    lineage_report,
    ops_from_chrome,
    percentile_bands,
)
from .journal import (
    Journal,
    digest_state,
    first_divergence,
    format_divergence,
    load_journal,
    register_digest_sources,
    replay_window,
    write_divergence_artifact,
    write_journal,
)
from .rules import (
    HealthEvent,
    HealthMonitor,
    HealthRule,
    cluster_shard_rules,
    default_rules,
)
from .telemetry import Channel, TelemetryHub
from .tracer import CounterRecord, InstantRecord, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "SpanRecord",
    "InstantRecord",
    "CounterRecord",
    "Counter",
    "Gauge",
    "SimHistogram",
    "MetricRegistry",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_chrome_trace",
    "spans_from_chrome",
    "validate_chrome_trace",
    "StallAttribution",
    "stall_attribution",
    "attribution_report",
    "top_spans",
    "Channel",
    "TelemetryHub",
    "HealthEvent",
    "HealthRule",
    "HealthMonitor",
    "default_rules",
    "cluster_shard_rules",
    "LineageProfiler",
    "SEGMENTS",
    "DEFAULT_BANDS",
    "LINEAGE_SCHEMA",
    "percentile_bands",
    "lineage_report",
    "ops_from_chrome",
    "exemplars_from_chrome",
    "check_lineage_invariant",
    "telemetry_to_prometheus",
    "telemetry_to_csv",
    "compare_baselines",
    "format_comparison",
    "Journal",
    "digest_state",
    "register_digest_sources",
    "write_journal",
    "load_journal",
    "first_divergence",
    "format_divergence",
    "write_divergence_artifact",
    "replay_window",
]
