"""The tracer: sim-time spans, instants, and counter samples.

Every record is timestamped from the simulation clock (``env.now``,
seconds), never wall time — a trace of a deterministic run is itself
deterministic.  The tracer is purely passive: probes never yield, never
schedule events, and never touch the event heap, so an instrumented run
takes the exact same simulated trajectory as an uninstrumented one.

Hot-path contract (mirrors ``repro.faults``): call sites guard every probe
with ``tr = env.tracer`` / ``if tr is not None``, and build span names or
args dictionaries only inside the guarded branch.  With no tracer
installed the write path performs one attribute read per probe and
allocates no objects.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

__all__ = ["SpanRecord", "InstantRecord", "CounterRecord", "Tracer"]


class SpanRecord:
    """One closed (or still-open) span on the sim timeline."""

    __slots__ = ("cat", "name", "actor", "t0", "t1", "args", "depth")

    def __init__(self, cat: str, name: str, actor: str, t0: float,
                 depth: int, args: Optional[dict] = None):
        self.cat = cat
        self.name = name
        self.actor = actor
        self.t0 = t0
        self.t1: Optional[float] = None   # set by Tracer.end
        self.args = args
        self.depth = depth

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    def __repr__(self) -> str:
        end = f"{self.t1:.6f}" if self.t1 is not None else "open"
        return (f"SpanRecord({self.cat}/{self.name} actor={self.actor} "
                f"[{self.t0:.6f}, {end}])")


class InstantRecord:
    """A point event (stall enter/exit, detector verdict, ...)."""

    __slots__ = ("cat", "name", "actor", "t", "args")

    def __init__(self, cat: str, name: str, actor: str, t: float,
                 args: Optional[dict] = None):
        self.cat = cat
        self.name = name
        self.actor = actor
        self.t = t
        self.args = args

    def __repr__(self) -> str:
        return f"InstantRecord({self.cat}/{self.name} @ {self.t:.6f})"


class CounterRecord:
    """One sample of a named counter (rendered as a Chrome 'C' event)."""

    __slots__ = ("name", "actor", "t", "value")

    def __init__(self, name: str, actor: str, t: float, value: float):
        self.name = name
        self.actor = actor
        self.t = t
        self.value = value

    def __repr__(self) -> str:
        return f"CounterRecord({self.name}={self.value} @ {self.t:.6f})"


class Tracer:
    """Collects spans/instants/counters from an instrumented simulation.

    ``max_events`` turns the tracer into a ring buffer keeping only the
    most recent records — the mode the fault harness uses to capture the
    trace *tail* leading up to an injected crash.
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: deque = deque(maxlen=max_events)
        self.dropped = 0
        self.span_count = 0
        self.instant_count = 0
        self._open: list[SpanRecord] = []
        self._depth: dict[str, int] = {}
        self._env = None

    # -- wiring ------------------------------------------------------------
    def install(self, env) -> "Tracer":
        """Attach to an Environment; probes find us via ``env.tracer``."""
        env.tracer = self
        self._env = env
        return self

    @staticmethod
    def of(env) -> Optional["Tracer"]:
        return getattr(env, "tracer", None)

    @property
    def now(self) -> float:
        if self._env is None:
            raise RuntimeError("tracer not installed on an Environment")
        return self._env.now

    def _actor(self, actor: Optional[str]) -> str:
        if actor is not None:
            return actor
        proc = self._env.active_process if self._env is not None else None
        return proc.name if proc is not None else "main"

    def _append(self, record) -> None:
        if (self.max_events is not None
                and len(self.events) == self.max_events):
            self.dropped += 1
        self.events.append(record)

    # -- spans -------------------------------------------------------------
    def begin(self, cat: str, name: str, actor: Optional[str] = None,
              args: Optional[dict] = None) -> SpanRecord:
        """Open a span; pair with :meth:`end`.  Spans may stay open across
        DES generator yields — the pair is matched by identity, not by a
        per-actor stack, so interleaved processes cannot corrupt it."""
        actor = self._actor(actor)
        depth = self._depth.get(actor, 0)
        self._depth[actor] = depth + 1
        span = SpanRecord(cat, name, actor, self.now, depth, args)
        self._open.append(span)
        return span

    def end(self, span: SpanRecord, args: Optional[dict] = None) -> SpanRecord:
        """Close ``span`` at the current sim time and record it."""
        if span.t1 is not None:
            raise RuntimeError(f"span already closed: {span!r}")
        span.t1 = self.now
        if args:
            span.args = dict(span.args or {}, **args)
        self._depth[span.actor] = max(0, self._depth.get(span.actor, 1) - 1)
        try:
            self._open.remove(span)
        except ValueError:
            pass
        self.span_count += 1
        self._append(span)
        return span

    def close_open_spans(self) -> int:
        """Close any still-open spans at the current time (end-of-run)."""
        n = 0
        for span in list(self._open):
            self.end(span)
            n += 1
        return n

    # -- instants / counters -------------------------------------------------
    def instant(self, cat: str, name: str, actor: Optional[str] = None,
                args: Optional[dict] = None) -> InstantRecord:
        rec = InstantRecord(cat, name, self._actor(actor), self.now, args)
        self.instant_count += 1
        self._append(rec)
        return rec

    def counter(self, name: str, value: float,
                actor: str = "metrics") -> CounterRecord:
        rec = CounterRecord(name, actor, self.now, float(value))
        self._append(rec)
        return rec

    # -- queries -------------------------------------------------------------
    def spans(self, cat: Optional[str] = None) -> Iterator[SpanRecord]:
        """Closed spans, optionally filtered by category."""
        for rec in self.events:
            if isinstance(rec, SpanRecord) and (cat is None or rec.cat == cat):
                yield rec

    def instants(self, cat: Optional[str] = None) -> Iterator[InstantRecord]:
        for rec in self.events:
            if isinstance(rec, InstantRecord) and (cat is None
                                                   or rec.cat == cat):
                yield rec

    def tail(self, n: Optional[int] = None, include_open: bool = True) -> list:
        """The most recent records as plain dicts, oldest first — the
        crash-tail view the fault harness attaches to its reports.

        Open spans (in-flight ops) are included with ``t1: None`` without
        being mutated — their owning processes may still be running and
        will close them normally later."""
        records = list(self.events)
        if include_open:
            records = records + list(self._open)
        out = []
        for rec in records:
            if isinstance(rec, SpanRecord):
                out.append({"kind": "span", "cat": rec.cat, "name": rec.name,
                            "actor": rec.actor, "t0": rec.t0, "t1": rec.t1,
                            "args": rec.args})
            elif isinstance(rec, InstantRecord):
                out.append({"kind": "instant", "cat": rec.cat,
                            "name": rec.name, "actor": rec.actor,
                            "t": rec.t, "args": rec.args})
            else:
                out.append({"kind": "counter", "name": rec.name,
                            "actor": rec.actor, "t": rec.t,
                            "value": rec.value})
        out.sort(key=lambda d: d.get("t", d.get("t0", 0.0)))
        if n is not None:
            out = out[-n:]
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"Tracer(events={len(self.events)}, spans={self.span_count}, "
                f"instants={self.instant_count}, open={len(self._open)}, "
                f"dropped={self.dropped})")
