"""Typed metric registry: counters, gauges, sim-time histograms.

The run collector and device ledgers historically kept ad-hoc lists and
bare attributes.  The registry gives those a single typed home so a run's
metrics can be snapshotted, exported next to a trace, or sampled into
Chrome counter tracks — without changing how the benches read them.

Existing instruments (``RateMeter``, ``LatencyHistogram``,
``TrafficLedger``) plug in via :meth:`MetricRegistry.register`; the
snapshot logic duck-types their value out.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

__all__ = ["Counter", "Gauge", "SimHistogram", "MetricRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value; either set explicitly or read from a callback."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value


class SimHistogram:
    """Histogram over simulated-seconds durations (log2 buckets).

    Unlike :class:`~repro.metrics.LatencyHistogram` (microseconds, fixed
    sub-bucket resolution) this is unit-agnostic and meant for span
    durations and queue waits recorded straight off the DES clock.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._buckets: dict[int, int] = {}

    def record(self, value: float, count: int = 1) -> None:
        if value < 0:
            raise ValueError("durations must be >= 0")
        self.count += count
        self.sum += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        b = _bucket_of(value)
        self._buckets[b] = self._buckets.get(b, 0) + count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile from the log2 buckets (upper bound)."""
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = self.count * p / 100.0
        seen = 0
        for b in sorted(self._buckets):
            seen += self._buckets[b]
            if seen >= target:
                return min(self.max, _bucket_upper(b))
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


def _bucket_of(value: float) -> int:
    """log2 bucket index; bucket b covers (2^(b-1), 2^b]."""
    if value <= 0:
        return -1075  # below every representable positive float
    return math.ceil(math.log2(value))


def _bucket_upper(b: int) -> float:
    return float(2.0 ** b)


class MetricRegistry:
    """A named, typed collection of metrics for one run."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # -- creation / registration ------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = self._metrics.get(name)
        if g is None:
            g = Gauge(name, fn)
            self._metrics[name] = g
        elif not isinstance(g, Gauge):
            raise TypeError(f"metric {name!r} is {type(g).__name__}, not Gauge")
        return g

    def histogram(self, name: str) -> SimHistogram:
        return self._get_or_create(name, SimHistogram)

    def register(self, name: str, metric) -> None:
        """Adopt an external instrument (RateMeter, LatencyHistogram,
        TrafficLedger, ...) under ``name``; snapshot duck-types it."""
        existing = self._metrics.get(name)
        if existing is not None and existing is not metric:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = metric

    def _get_or_create(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is {type(m).__name__}, not {cls.__name__}")
        return m

    # -- reading -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    @staticmethod
    def _value_of(metric):
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        if isinstance(metric, SimHistogram):
            return metric.summary()
        if hasattr(metric, "summary") and hasattr(metric, "total_count"):
            # repro.metrics.LatencyHistogram
            return metric.summary() if metric.total_count else None
        if hasattr(metric, "total_bytes"):       # TrafficLedger
            return metric.total_bytes
        if hasattr(metric, "total"):             # RateMeter
            return metric.total
        if hasattr(metric, "value"):
            return metric.value
        return repr(metric)

    def snapshot(self) -> dict:
        """{name: value-or-summary} for every registered metric."""
        return {name: self._value_of(m) for name, m in self._metrics.items()}

    def sample_into(self, tracer, actor: str = "metrics") -> None:
        """Emit one Chrome counter sample per scalar metric."""
        for name, m in self._metrics.items():
            value = self._value_of(m)
            if isinstance(value, (int, float)):
                tracer.counter(name, value, actor=actor)
