"""Trace tooling CLI: ``python -m repro.obs {validate,report,top} file...``

``validate`` runs the exporter's own schema check over Chrome-trace JSON
files (what CI gates on); ``report`` prints the per-stall attribution
table; ``top`` prints the longest spans per category.
"""

from __future__ import annotations

import argparse
import sys

from .attribution import attribution_report, top_spans
from .export import load_chrome_trace, spans_from_chrome, validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate Chrome-trace JSON files.")
    parser.add_argument("command", choices=["validate", "report", "top"])
    parser.add_argument("files", nargs="+", help="Chrome-trace JSON file(s)")
    parser.add_argument("-n", type=int, default=5,
                        help="spans per category for 'top' (default 5)")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        try:
            doc = load_chrome_trace(path)
        except Exception as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        if args.command == "validate":
            errors = validate_chrome_trace(doc)
            n_events = len(doc.get("traceEvents") or [])
            if errors:
                print(f"{path}: INVALID ({len(errors)} problem(s))")
                for e in errors[:10]:
                    print(f"  - {e}")
                status = 1
            else:
                print(f"{path}: ok ({n_events} events)")
        elif args.command == "report":
            spans = spans_from_chrome(doc)
            print(attribution_report(spans, title=f"Stall attribution: {path}"))
            print()
        else:
            spans = spans_from_chrome(doc)
            print(f"== {path}: top {args.n} spans per category")
            for cat, items in top_spans(spans, n=args.n).items():
                print(f"  [{cat}]")
                for dur, name, t0 in items:
                    print(f"    {dur * 1e3:>10.3f} ms  {name:<32s} @ {t0:.3f}s")
    return status


if __name__ == "__main__":
    sys.exit(main())
