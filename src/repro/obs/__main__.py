"""Observability CLI: ``python -m repro.obs <command> ...``

* ``validate`` — the exporter's schema check over Chrome-trace JSON
  files (what CI gates on);
* ``report`` — per-stall attribution tables from a trace;
* ``top`` — longest spans per category;
* ``dash`` — run one bench cell with the live telemetry dashboard
  (``--once`` for a single CI-friendly snapshot);
* ``compare`` — diff two ``BENCH_<exp>.json`` baselines with tolerance
  bands; exits non-zero on regressions;
* ``baseline-validate`` — check baseline files against the checked-in
  JSON Schema;
* ``lineage`` — percentile-conditioned latency-lineage decomposition
  from a Chrome trace recorded with the lineage profiler on
  (``--lineage`` on the bench CLI, or ``RunOptions(lineage=True)``
  plus a trace path);
* ``diff`` — first-divergence bisector over two journal recordings
  (``--journal`` on the bench CLI): first digest mismatch, first
  divergent event with context, suspect fault site; rc=1 when the
  journals diverge;
* ``replay-to`` — rerun one cell recording only a suspect window
  ``[t0, t1]`` (determinism makes the re-run exact; the windowed
  journal stays small).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .attribution import attribution_report, top_spans
from .export import load_chrome_trace, spans_from_chrome, validate_chrome_trace


def _trace_files_cmd(args) -> int:
    status = 0
    for path in args.files:
        try:
            doc = load_chrome_trace(path)
        except Exception as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        if args.command == "validate":
            errors = validate_chrome_trace(doc)
            n_events = len(doc.get("traceEvents") or [])
            if errors:
                print(f"{path}: INVALID ({len(errors)} problem(s))")
                for e in errors[:10]:
                    print(f"  - {e}")
                status = 1
            else:
                print(f"{path}: ok ({n_events} events)")
        elif args.command == "report":
            spans = spans_from_chrome(doc)
            print(attribution_report(spans, title=f"Stall attribution: {path}"))
            print()
        else:
            spans = spans_from_chrome(doc)
            print(f"== {path}: top {args.n} spans per category")
            for cat, items in top_spans(spans, n=args.n).items():
                print(f"  [{cat}]")
                for dur, name, t0 in items:
                    print(f"    {dur * 1e3:>10.3f} ms  {name:<32s} @ {t0:.3f}s")
    return status


def _lineage_cmd(args) -> int:
    import json

    from .profiler import (check_lineage_invariant, exemplars_from_chrome,
                           lineage_report, ops_from_chrome, percentile_bands)
    status = 0
    for path in args.files:
        try:
            doc = load_chrome_trace(path)
        except Exception as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        ops = ops_from_chrome(doc)
        if not ops:
            print(f"{path}: no lineage-annotated op spans (was the trace "
                  f"recorded with the lineage profiler on?)", file=sys.stderr)
            status = 1
            continue
        violations = check_lineage_invariant(ops)
        exemplars = exemplars_from_chrome(doc, ops, top_k=args.top)
        if args.json_out:
            out = {
                "schema": "repro-lineage", "version": 1, "source": path,
                "op_count": len(ops),
                "bands": percentile_bands(ops),
                "exemplars": exemplars,
                "invariant_violations": violations,
            }
            p = Path(args.json_out)
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
            print(f"wrote {p}")
        else:
            print(lineage_report(ops, title=f"Latency lineage: {path}",
                                 exemplars=exemplars))
        if violations:
            print(f"{path}: {len(violations)} op(s) violate the "
                  f"segments-sum-to-e2e invariant", file=sys.stderr)
            status = 1
    return status


def _compare_cmd(args) -> int:
    from .compare import (DEFAULT_METRICS, PERF_METRICS, compare_baselines,
                          format_comparison, load_baseline, regression_count)
    metrics = DEFAULT_METRICS + PERF_METRICS if args.perf else None
    try:
        old_doc = load_baseline(args.old)
        new_doc = load_baseline(args.new)
        findings = compare_baselines(old_doc, new_doc, metrics=metrics,
                                     old_path=args.old, new_path=args.new)
    except (OSError, ValueError) as exc:
        print(f"compare failed: {exc}", file=sys.stderr)
        return 2
    print(format_comparison(findings, old_path=args.old, new_path=args.new))
    return 1 if regression_count(findings) else 0


def _baseline_validate_cmd(args) -> int:
    import json

    from ..bench.baseline import load_schema, validate_schema
    schema = load_schema()
    status = 0
    for path in args.files:
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
            continue
        errors = validate_schema(doc, schema)
        if errors:
            print(f"{path}: INVALID ({len(errors)} problem(s))")
            for e in errors[:10]:
                print(f"  - {e}")
            status = 1
        else:
            n = len(doc.get("cells", {}))
            print(f"{path}: ok ({n} cell(s))")
    return status


def _diff_cmd(args) -> int:
    import json

    from .journal import first_divergence, format_divergence, load_journal
    try:
        a = load_journal(args.run_a)
        b = load_journal(args.run_b)
    except (OSError, ValueError) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    report = first_divergence(a, b, context=args.context)
    if args.json_out:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_divergence(report, name_a=args.run_a,
                                name_b=args.run_b))
    return 1 if report["divergent"] else 0


def _replay_to_cmd(args) -> int:
    from ..bench.profiles import get_profile
    from .journal import replay_window
    try:
        profile = get_profile(args.profile)
        out = replay_window(args.system, args.workload, profile,
                            args.t0, args.t1, args.out,
                            seed=args.seed, rollback=args.rollback)
    except (OSError, ValueError) as exc:
        print(f"replay-to failed: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {out['path']}: {out['records']} record(s) in window "
          f"[{args.t0}, {args.t1}] ({out['events']} events journal-wide)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace tooling, live dashboard, and baseline compare.")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_ in (("validate", "validate Chrome-trace JSON files"),
                        ("report", "per-stall attribution report"),
                        ("top", "longest spans per category")):
        p = sub.add_parser(name, help=help_)
        p.add_argument("files", nargs="+", help="Chrome-trace JSON file(s)")
        p.add_argument("-n", type=int, default=5,
                       help="spans per category for 'top' (default 5)")
        p.set_defaults(func=_trace_files_cmd)

    p = sub.add_parser("dash", help="run one bench cell with the live "
                                    "telemetry dashboard")
    from .dash import add_dash_args, run_dash
    add_dash_args(p)
    p.set_defaults(func=run_dash)

    p = sub.add_parser("compare", help="diff two BENCH_<exp>.json baselines")
    p.add_argument("old", help="baseline JSON (the reference)")
    p.add_argument("new", help="candidate JSON")
    p.add_argument("--perf", action="store_true",
                   help="also judge harness-performance fields (schema v2: "
                        "wall_clock_s / events_processed / events_per_sec) "
                        "with wide tolerance bands")
    p.set_defaults(func=_compare_cmd)

    p = sub.add_parser("baseline-validate",
                       help="validate BENCH_*.json against the schema")
    p.add_argument("files", nargs="+", help="baseline JSON file(s)")
    p.set_defaults(func=_baseline_validate_cmd)

    p = sub.add_parser("lineage",
                       help="percentile-conditioned latency-lineage tables "
                            "from a lineage-annotated Chrome trace")
    p.add_argument("files", nargs="+", help="Chrome-trace JSON file(s)")
    p.add_argument("--top", type=int, default=5, metavar="K",
                   help="slowest-op exemplars to show (default 5)")
    p.add_argument("--json", metavar="PATH", default=None, dest="json_out",
                   help="write bands + exemplars as JSON instead of a table")
    p.set_defaults(func=_lineage_cmd)

    p = sub.add_parser("diff",
                       help="first-divergence bisect of two journal "
                            "recordings (rc=1 when they diverge)")
    p.add_argument("run_a", help="journal JSONL[.gz] (the reference)")
    p.add_argument("run_b", help="journal JSONL[.gz] (the candidate)")
    p.add_argument("--context", type=int, default=6, metavar="K",
                   help="surrounding records to show (default 6)")
    p.add_argument("--json", action="store_true", dest="json_out",
                   help="emit the divergence report as JSON")
    p.set_defaults(func=_diff_cmd)

    p = sub.add_parser("replay-to",
                       help="rerun a cell recording only a suspect "
                            "sim-time window")
    p.add_argument("t0", type=float, help="window start (sim seconds)")
    p.add_argument("t1", type=float, help="window end (sim seconds)")
    p.add_argument("out", help="output journal path (.jsonl[.gz])")
    p.add_argument("--system", default="kvaccel",
                   help="system to build (default kvaccel)")
    p.add_argument("--workload", default="A",
                   help="workload letter (default A)")
    p.add_argument("--profile", default="mini",
                   help="experiment profile name (default mini)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rollback", default="disabled",
                   help="kvaccel rollback scheme (default disabled)")
    p.set_defaults(func=_replay_to_cmd)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
