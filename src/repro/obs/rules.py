"""Declarative health/SLO rules over the telemetry stream.

A :class:`HealthRule` is a windowed predicate over the last N telemetry
buckets; the :class:`HealthMonitor` subscribes to a
:class:`~repro.obs.telemetry.TelemetryHub` and evaluates every rule each
sim-second.  Rules are edge-triggered: a rule *fires* on the first bucket
where its predicate turns true (``phase="enter"``) and *clears* on the
first bucket where it turns false again (``phase="clear"``), so a
10-minute stall storm yields two events, not six hundred.

The built-in rules encode the paper's pathologies:

* ``stall_storm`` — the Fig 2 picture: the write controller spends a
  large fraction of a sliding window stalled;
* ``zero_traffic_while_stalled`` — the Fig 4 diagnosis: writes are
  stopped *and* the host-SSD link is idle, i.e. the device starves while
  the host blocks (the exact waste KVACCEL's Dev-LSM redirection fills);
* ``rollback_not_converging`` — Dev-LSM rollback active for a whole
  window without shrinking the Dev-LSM footprint;
* ``delayed_rate_floor`` — slowdown mode has throttled user writes below
  a floor derived from ``delayed_write_rate``.

Windows are measured in *buckets*; the mini profiles scale the sampling
period with the clock, so one paper-second is one bucket at every scale
and rule parameters transfer unchanged between quick and full profiles.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .telemetry import TelemetryHub

__all__ = ["HealthEvent", "HealthRule", "HealthMonitor", "default_rules",
           "cluster_shard_rules"]

MiB = 1 << 20


class HealthEvent:
    """One edge of a health rule (enter or clear)."""

    __slots__ = ("rule", "severity", "t", "phase", "message", "data")

    def __init__(self, rule: str, severity: str, t: float, phase: str,
                 message: str, data: Optional[dict] = None):
        self.rule = rule
        self.severity = severity
        self.t = t
        self.phase = phase          # "enter" | "clear"
        self.message = message
        self.data = data or {}

    def to_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity, "t": self.t,
                "phase": self.phase, "message": self.message,
                "data": dict(self.data)}

    @classmethod
    def from_dict(cls, d: dict) -> "HealthEvent":
        return cls(d["rule"], d["severity"], d["t"], d["phase"],
                   d["message"], d.get("data"))

    def __repr__(self) -> str:
        return (f"HealthEvent({self.rule} {self.phase} @ {self.t:.3f} "
                f"[{self.severity}])")


class HealthRule:
    """A named windowed predicate.

    ``predicate(window)`` receives the last ``window`` samples, oldest
    first, each a ``{channel: bucket_value}`` dict (missing channels read
    as 0.0 via the monitor's accessor helpers).  It may return a bare
    bool, or a ``(bool, data_dict)`` pair to attach diagnostics to the
    emitted event.
    """

    def __init__(self, name: str, severity: str, window: int,
                 predicate: Callable[[list], object],
                 description: str = ""):
        if window < 1:
            raise ValueError("window must be >= 1")
        if severity not in ("info", "warning", "critical"):
            raise ValueError(f"unknown severity {severity!r}")
        self.name = name
        self.severity = severity
        self.window = window
        self.predicate = predicate
        self.description = description

    def __repr__(self) -> str:
        return f"HealthRule({self.name}, window={self.window})"


def _get(sample: dict, name: str, default: float = 0.0) -> float:
    return sample.get(name, default)


class HealthMonitor:
    """Evaluates rules against a hub's sample stream, emitting
    :class:`HealthEvent` edges into ``events`` (and the tracer, if one is
    installed on the hub's environment).

    Pass ``hub=None`` for a detached monitor fed manually through
    :meth:`observe` — the live dashboard replays the runner's sample
    stream into one of these for its status line.
    """

    def __init__(self, hub: Optional[TelemetryHub], rules: list[HealthRule]):
        self.hub = hub
        self.rules = list(rules)
        self.events: list[HealthEvent] = []
        self.active: dict[str, HealthEvent] = {}   # rule name -> enter event
        maxw = max((r.window for r in self.rules), default=1)
        self._window: deque = deque(maxlen=maxw)
        if hub is not None:
            hub.on_sample(self._on_sample)

    # -- evaluation ----------------------------------------------------------
    def observe(self, t: float, sample: dict) -> None:
        """Feed one bucket into a detached (``hub=None``) monitor."""
        self._on_sample(t, sample)

    def _on_sample(self, t: float, sample: dict) -> None:
        self._window.append(sample)
        buf = list(self._window)
        for rule in self.rules:
            if len(buf) < rule.window:
                continue
            verdict = rule.predicate(buf[-rule.window:])
            if isinstance(verdict, tuple):
                firing, data = verdict
            else:
                firing, data = verdict, None
            was_active = rule.name in self.active
            if firing and not was_active:
                self._emit(rule, t, "enter", data)
            elif not firing and was_active:
                self._emit(rule, t, "clear", data)

    def _emit(self, rule: HealthRule, t: float, phase: str,
              data: Optional[dict]) -> None:
        msg = rule.description or rule.name
        ev = HealthEvent(rule.name, rule.severity, t, phase, msg, data)
        self.events.append(ev)
        if phase == "enter":
            self.active[rule.name] = ev
        else:
            self.active.pop(rule.name, None)
        tr = (getattr(self.hub.env, "tracer", None)
              if self.hub is not None else None)
        if tr is not None:
            tr.instant("health", f"{rule.name}.{phase}",
                       actor="health", args={"severity": rule.severity,
                                             **(data or {})})

    # -- summaries -----------------------------------------------------------
    def fired(self, rule_name: str) -> bool:
        """Did this rule enter at least once during the run?"""
        return any(e.rule == rule_name and e.phase == "enter"
                   for e in self.events)

    def summary(self) -> dict:
        """Per-rule enter counts — the shape stored in bench baselines."""
        out: dict[str, int] = {r.name: 0 for r in self.rules}
        for e in self.events:
            if e.phase == "enter":
                out[e.rule] = out.get(e.rule, 0) + 1
        return out

    def __repr__(self) -> str:
        return (f"HealthMonitor(rules={len(self.rules)}, "
                f"events={len(self.events)}, active={sorted(self.active)})")


def default_rules(period: float = 1.0,
                  device_peak_bw: float = 630 * MiB,
                  delayed_write_rate: float = 16 * MiB,
                  value_size: int = 4096,
                  retry_storm_rate: float = 200.0) -> list[HealthRule]:
    """The built-in rule set, parameterised from the run's profile.

    ``period`` scales byte-per-bucket thresholds; windows stay in buckets
    (1 paper-second == 1 bucket under the mini profiles).
    """
    # WriteController state encoding on the wc.state gauge channel.
    DELAYED, STOPPED = 1.0, 2.0

    def stall_storm(win):
        stalled = sum(1 for s in win if _get(s, "wc.state") == STOPPED
                      or _get(s, "wc.stall_time") > 0.5 * period)
        frac = stalled / len(win)
        return frac >= 0.3, {"stalled_frac": round(frac, 3)}

    # "Idle" link: both directions together below 0.5% of what the device
    # could move in one bucket.
    idle_bytes = 0.005 * device_peak_bw * period

    def zero_traffic_while_stalled(win):
        tail = win[-2:]
        bad = all(
            (_get(s, "wc.state") == STOPPED
             or _get(s, "wc.stall_time") >= 0.95 * period)
            and (_get(s, "pcie.tx_bytes") + _get(s, "pcie.rx_bytes"))
            < idle_bytes
            for s in tail)
        link = sum(_get(s, "pcie.tx_bytes") + _get(s, "pcie.rx_bytes")
                   for s in tail)
        return bad, {"link_bytes": link}

    def rollback_not_converging(win):
        if not all(_get(s, "rollback.active") > 0 for s in win):
            return False
        start = _get(win[0], "devlsm.bytes")
        end = _get(win[-1], "devlsm.bytes")
        return end >= start > 0, {"devlsm_bytes": end}

    # Floor: slowdown should still admit about delayed_write_rate bytes/s;
    # flag windows where admitted user writes sit below half of that.
    # Requires actual throttle time in every bucket (wc.delayed_time), so
    # a DELAYED-state DB that isn't sleeping writers — KVACCEL's Main-LSM
    # runs with slowdown disabled — can't trip it; redirected writes count
    # as admitted (the user saw them complete).
    floor_ops = 0.5 * delayed_write_rate * period / max(value_size, 1)

    def delayed_rate_floor(win):
        bad = all(_get(s, "wc.state") == DELAYED
                  and _get(s, "wc.delayed_time") > 0
                  and (_get(s, "lsm.write_ops")
                       + _get(s, "ctl.redirected")) < floor_ops
                  for s in win)
        return bad, {"floor_ops": floor_ops,
                     "write_ops": _get(win[-1], "lsm.write_ops")}

    # Resilience layer (repro.resil): the resil.state gauge encodes
    # HEALTHY=0 / RECOVERING=1 / DEGRADED=2; a missing channel reads 0.0,
    # so systems without the resilience stack can never trip these.
    def degraded_mode_entered(win):
        state = _get(win[-1], "resil.state")
        return state >= 2.0, {"resil_state": state}

    # Retries are recoverable by design, but a storm of them means the
    # device is flapping — flag sustained retry pressure before the
    # degradation threshold turns it into an outage.
    storm_retries = retry_storm_rate * period

    def retry_storm(win):
        total = sum(_get(s, "resil.retries") for s in win)
        avg = total / len(win)
        return avg >= storm_retries, {"retries_per_bucket": round(avg, 1)}

    return [
        HealthRule("stall_storm", "critical", 10, stall_storm,
                   "write stalls dominate a 10-bucket window"),
        HealthRule("zero_traffic_while_stalled", "critical", 2,
                   zero_traffic_while_stalled,
                   "host blocked on stall while the PCIe link sits idle"),
        HealthRule("rollback_not_converging", "warning", 20,
                   rollback_not_converging,
                   "rollback active but Dev-LSM footprint not shrinking"),
        HealthRule("delayed_rate_floor", "warning", 5, delayed_rate_floor,
                   "slowdown throttled writes below the delayed-rate floor"),
        HealthRule("degraded_mode_entered", "critical", 1,
                   degraded_mode_entered,
                   "resilience state machine entered DEGRADED: Dev-LSM "
                   "admission suspended, all writes on Main-LSM"),
        HealthRule("retry_storm", "warning", 3, retry_storm,
                   "sustained device-command retry pressure"),
    ]


def cluster_shard_rules(shards: int, period: float = 1.0,
                        retry_storm_rate: float = 200.0) -> list[HealthRule]:
    """Per-shard instances of the cluster-relevant rules.

    One ``stall_storm`` + ``degraded_mode_entered`` + ``retry_storm``
    triple per shard, reading the ``cluster.shard{k}.*`` channels the
    cluster facade publishes, with the shard id carried in both the rule
    name and the emitted event's ``data`` — so a fleet dashboard can
    tell *which* shard is storming, not just that one is.  The retry
    channel only exists on resilience-enabled shards; elsewhere the
    rule reads 0 and stays quiet.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    storm_retries = retry_storm_rate * period
    rules: list[HealthRule] = []
    for k in range(shards):
        stall_ch = f"cluster.shard{k}.stall_time"
        resil_ch = f"cluster.shard{k}.resil_state"
        retry_ch = f"cluster.shard{k}.retries"

        def shard_stall_storm(win, _ch=stall_ch, _k=k):
            stalled = sum(1 for s in win if _get(s, _ch) > 0.5 * period)
            frac = stalled / len(win)
            return frac >= 0.3, {"shard": _k,
                                 "stalled_frac": round(frac, 3)}

        def shard_degraded(win, _ch=resil_ch, _k=k):
            state = _get(win[-1], _ch)
            return state >= 2.0, {"shard": _k, "resil_state": state}

        def shard_retry_storm(win, _ch=retry_ch, _k=k):
            avg = sum(_get(s, _ch) for s in win) / len(win)
            return avg >= storm_retries, {"shard": _k,
                                          "retries_per_bucket": round(avg, 1)}

        # Replica-group promotion: the cluster bumps the per-shard
        # ``failovers`` rate channel exactly once per completed failover,
        # so any positive bucket is a promotion edge.  The channel only
        # exists on replicated clusters; elsewhere this reads 0 forever.
        failover_ch = f"cluster.shard{k}.failovers"

        def shard_failover(win, _ch=failover_ch, _k=k):
            n = _get(win[-1], _ch)
            return n > 0, {"shard": _k, "failovers": n}

        rules.append(HealthRule(
            f"stall_storm.shard{k}", "critical", 10, shard_stall_storm,
            f"write stalls dominate a 10-bucket window on shard {k}"))
        rules.append(HealthRule(
            f"degraded_mode_entered.shard{k}", "critical", 1,
            shard_degraded,
            f"shard {k} entered DEGRADED: Dev-LSM admission suspended"))
        rules.append(HealthRule(
            f"retry_storm.shard{k}", "warning", 3, shard_retry_storm,
            f"sustained device-command retry pressure on shard {k}"))
        rules.append(HealthRule(
            f"shard_failover.shard{k}", "critical", 1, shard_failover,
            f"shard {k} failed over to a promoted backup"))

    # A rebalance that stops making progress: the migration is active for
    # a whole window but the moved-keys gauge never advances (e.g. the
    # driver is starved or wedged behind a dead shard).
    def rebalance_stuck(win):
        active = all(_get(s, "cluster.reshard.active") > 0 for s in win)
        moved0 = _get(win[0], "cluster.reshard.moved")
        moved1 = _get(win[-1], "cluster.reshard.moved")
        return (active and moved1 <= moved0,
                {"moved_keys": moved1})

    rules.append(HealthRule(
        "rebalance_stuck", "warning", 5, rebalance_stuck,
        "live resharding active for a full window with no key movement"))
    return rules
