#!/usr/bin/env python3
"""Choosing a rollback scheme for a mixed read/write service.

Section V-E: lazy rollback suits write-heavy phases (rollback I/O never
competes with foreground writes), eager rollback suits read-mixed phases
(Dev-LSM point reads are slow, so drain it early).  This example runs a
9:1 read-while-writing workload (the paper's workload B) under both
schemes and prints a recommendation from the measurements.

Run:  python examples/mixed_workload_tuning.py
"""

from repro.bench.profiles import mini_profile
from repro.bench.report import table
from repro.bench.runner import RunSpec, run_workload

profile = mini_profile(256)

schemes = ["lazy", "eager"]
results = {}
for scheme in schemes:
    spec = RunSpec("kvaccel", "B", 4, rollback=scheme,
                   label=f"KVAccel-{scheme}")
    results[scheme] = run_workload(spec, profile)

rows = []
for scheme in schemes:
    r = results[scheme]
    rows.append([
        scheme,
        f"{r.write_throughput_ops/1000:.1f}",
        f"{r.read_throughput_ops/1000:.2f}",
        f"{r.read_latency['p99']:.0f}" if r.read_latency else "-",
        r.extra.get("rollbacks", 0),
        r.extra.get("redirected_writes", 0),
    ])

print(table(
    ["rollback", "write Kops/s", "read Kops/s", "read P99 (us)",
     "rollbacks", "redirected"],
    rows, title="Workload B (9:1 write:read), 4 compaction threads"))

lazy, eager = results["lazy"], results["eager"]
read_gain = (eager.read_throughput_ops / max(1.0, lazy.read_throughput_ops)
             - 1) * 100
write_cost = (1 - eager.write_throughput_ops
              / max(1.0, lazy.write_throughput_ops)) * 100

print(f"\neager vs lazy: reads {read_gain:+.0f}%, writes {-write_cost:+.0f}%")
if read_gain > write_cost:
    print("recommendation: EAGER rollback — the read-side benefit of "
          "draining the Dev-LSM outweighs the write-side rollback traffic "
          "(the paper's conclusion for mixed workloads).")
else:
    print("recommendation: LAZY rollback — this mix is write-dominated "
          "enough that rollback traffic costs more than slow device reads.")
