#!/usr/bin/env python3
"""Scripted tour of the fault-injection & crash-consistency harness.

1. Trace a mixed stall/rollback workload and list every fault point it
   reaches (the sites the crash sweep will enumerate).
2. Crash the host KVACCEL module at one site, recover, and let the
   differential oracle check the durability / no-phantom invariants.
3. Demonstrate that the harness has teeth: swap in a deliberately broken
   recovery (one that resets the Dev-LSM without draining it) and watch
   the oracle flag the lost acknowledged writes.
4. Inject a silent device-command drop into a live system and catch the
   lost write with an oracle the workload maintains itself.

Run:  PYTHONPATH=src python examples/fault_injection_demo.py
"""

from repro.faults import (
    DROP,
    DifferentialOracle,
    FaultAction,
    KvaccelFaultHarness,
    NthOccurrencePlan,
    broken_recovery_skip_drain,
)

SEED = 0xC0FFEE

# -- 1. trace the workload ---------------------------------------------------
harness = KvaccelFaultHarness(seed=SEED)
trace = harness.trace()
sites = []
for hit in trace:
    if hit.occurrence == 1:
        sites.append(hit.site)
print(f"workload reaches {len(sites)} distinct fault points "
      f"({len(trace)} total hits):")
for site in sites:
    print(f"  {site}")

# -- 2. crash at one site, recover, verify -----------------------------------
site = "kv.put_batch.complete"
report = harness.crash_at(site, occurrence=10)
print(f"\ncrash at {report.site} (occurrence {report.occurrence}) "
      f"at t={report.sim_time:.4f}s")
print(f"  recovered entries: {report.recovery.entries_recovered}")
print(f"  oracle violations: {len(report.violations)}  "
      f"-> {'OK' if report.ok else 'FAILED'}")
assert report.ok

# -- 3. a broken recovery is caught ------------------------------------------
broken = KvaccelFaultHarness(seed=SEED, recovery=broken_recovery_skip_drain)
report = broken.crash_at(site, occurrence=10)
print(f"\nsame crash, recovery that skips the Dev-LSM drain:")
for violation in report.violations[:3]:
    print(f"  {violation.describe()}")
print(f"  ... {len(report.violations)} violations total")
assert not report.ok

# -- 4. a silent command drop on a live system -------------------------------
from repro.sim import Environment            # noqa: E402
from repro.types import encode_key           # noqa: E402
import sys                                   # noqa: E402
from pathlib import Path                     # noqa: E402

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers import make_faulty_system       # noqa: E402

env = Environment()
db, ssd, cpu, registry = make_faulty_system(env, seed=SEED)
db.detector.stop()
db.rollback_manager.stop()
oracle = DifferentialOracle(seed=SEED)
key = encode_key(7)


def scenario():
    oracle.begin_put(key, b"v1" * 30)
    yield from db.put(key, b"v1" * 30)
    oracle.ack()
    db.detector.stall_condition = True       # route the next put to the device
    registry.arm("kv.put_batch.submit", NthOccurrencePlan(1),
                 FaultAction(kind=DROP))
    oracle.begin_put(key, b"v2" * 30)
    yield from db.put(key, b"v2" * 30)       # acked — but the device lost it
    oracle.ack()
    return (yield from db.get(key))


got = env.run(until=env.process(scenario()))
print(f"\ndropped device command: lost_commands={ssd.kv.lost_commands}")
try:
    oracle.check_read(key, got)
except AssertionError as exc:
    print(f"oracle caught it: {exc}")
db.close()
print("\ndemo complete")
