#!/usr/bin/env python3
"""Write-burst smoothing: the paper's motivating scenario.

A telemetry ingestion service takes sustained bursts of 4 KB events.  On a
plain RocksDB-style store the bursts slam into write stalls (or the
slowdown throttle); KVACCEL absorbs them by redirecting into the SSD's
key-value interface during the stall windows.

This example runs the same burst train against both systems on identical
simulated hardware and prints per-interval throughput side by side.

Run:  python examples/write_burst_smoothing.py
"""

from repro.bench.profiles import mini_profile
from repro.bench.report import series_sparkline, table
from repro.bench.runner import RunSpec, run_workload

profile = mini_profile(256)  # quick profile: ~2.3 s simulated horizon

specs = [
    RunSpec("rocksdb", "A", 1, slowdown=True),
    RunSpec("kvaccel", "A", 1, rollback="lazy"),
]

results = {}
for spec in specs:
    results[spec.display] = run_workload(spec, profile)

print("Per-interval write throughput under a sustained ingest burst\n")
for label, r in results.items():
    period = r.extra["sample_period"]
    kops = [v / period / 1000 for v in r.write_ops_series]
    print(series_sparkline(kops, label=f"{label:12s} "))

rows = []
for label, r in results.items():
    rows.append([
        label,
        f"{r.write_throughput_ops/1000:.1f}",
        f"{r.write_p99_us:.0f}",
        f"{r.total_stall_time + r.total_delayed_time:.2f}s",
        r.extra.get("redirected_writes", 0),
    ])
print()
print(table(["system", "avg Kops/s", "P99 (us)", "throttled time",
             "redirected writes"], rows))

rdb = results["RocksDB(1)"]
kva = results["KVAccel(1)-L"]
gain = kva.write_throughput_ops / rdb.write_throughput_ops - 1
print(f"\nKVACCEL absorbed the burst {gain*100:+.0f}% faster and cut P99 "
      f"from {rdb.write_p99_us:.0f}us to {kva.write_p99_us:.0f}us by "
      f"redirecting {kva.extra['redirected_writes']} writes to the "
      f"device-side buffer instead of throttling.")
