#!/usr/bin/env python3
"""Quickstart: stand up a KVACCEL stack and use it like a KV store.

Everything runs on a simulated clock: you build an Environment, a host CPU
model, the hybrid dual-interface SSD, and the KVACCEL facade on top, then
drive operations from a simulation process.

Run:  python examples/quickstart.py
"""

from repro import CpuModel, Environment, HybridSsd, KvaccelDb, LsmOptions
from repro.device import HybridSsdConfig, MiB, NandGeometry

# ---------------------------------------------------------------- setup
env = Environment()
host_cpu = CpuModel(env, cores=8, name="host")

# A small hybrid SSD: block region for the Main-LSM, KV region for the
# in-device write buffer.  (Defaults model the paper's Cosmos+ board.)
ssd = HybridSsd(env, host_cpu, HybridSsdConfig(
    geometry=NandGeometry(blocks_per_way=64),
    peak_nand_bandwidth=630 * MiB,
))

# Main-LSM options: a small memtable so the example flushes quickly.
options = LsmOptions(write_buffer_size=1 * MiB,
                     max_bytes_for_level_base=4 * MiB,
                     target_file_size_base=1 * MiB)

db = KvaccelDb(env, options, ssd, host_cpu, rollback="eager")


# ------------------------------------------------------------- workload
def workload():
    # Point writes.
    for i in range(4000):
        key = f"user:{i:06d}".encode()
        yield from db.put(key, f"profile-data-{i}".encode() * 64)

    # Point reads.
    value = yield from db.get(b"user:000042")
    print(f"get(user:000042) -> {value[:20]!r}... ({len(value)} bytes)")

    # Deletes.
    yield from db.delete(b"user:000042")
    gone = yield from db.get(b"user:000042")
    print(f"after delete -> {gone}")

    # Range scan across both interfaces (Main-LSM + Dev-LSM).
    rows = yield from db.scan(b"user:000100", 5)
    print("scan(user:000100, 5):")
    for k, v in rows:
        print(f"  {k.decode()} = {v[:16]!r}...")

    # Let background work settle, then inspect the system.
    yield from db.wait_for_quiesce()


env.run(until=env.process(workload()))

# ------------------------------------------------------------ inspection
snap = db.snapshot()
print(f"\nsimulated time elapsed: {env.now:.3f}s")
print(f"writes routed normally: {snap['normal_writes']}, "
      f"redirected to the device: {snap['redirected_writes']}")
print(f"LSM levels (file counts): {snap['levels']}")
print(f"flushes: {snap['flushes']}, compactions: {snap['compactions']}, "
      f"rollbacks: {snap['rollbacks']}")
print(f"write stalls hit: {snap['stall_events']} "
      f"(KVACCEL redirects instead of slowing down)")
db.close()
