#!/usr/bin/env python3
"""Trace-driven A/B comparison: record once, replay everywhere.

Production tuning rarely trusts synthetic generators.  This example
records an operation trace from a live (simulated) application session,
saves it to disk, and replays the identical stream against RocksDB-sim and
KVACCEL on identical hardware — the fairest possible A/B.

Run:  python examples/trace_replay.py
"""

import random
import tempfile
from pathlib import Path

from repro.bench.profiles import mini_profile
from repro.bench.report import table
from repro.bench.runner import RunSpec, build_system
from repro.sim import Environment
from repro.types import encode_key
from repro.workload import Trace, TraceRecorder, TraceReplayDriver, value_for

profile = mini_profile(256)

# ---------------------------------------------------------- record phase
env = Environment()
db, ssd, cpu = build_system(env, profile,
                            RunSpec("rocksdb", "A", 1, slowdown=True))
recorder = TraceRecorder(db)


def application_session():
    """A bursty session: hot-key updates, point lookups, page scans."""
    rng = random.Random(2026)
    for i in range(4000):
        r = rng.random()
        if r < 0.7:
            k = encode_key(rng.randrange(20_000))
            yield from recorder.put(k, value_for(k, profile.value_size))
        elif r < 0.9:
            yield from recorder.get(encode_key(rng.randrange(20_000)))
        else:
            yield from recorder.scan(encode_key(rng.randrange(20_000)), 16)


env.run(until=env.process(application_session()))
db.close()

trace_path = Path(tempfile.gettempdir()) / "kvaccel_session.trace"
recorder.trace.save(trace_path)
print(f"recorded {len(recorder.trace)} ops "
      f"({recorder.trace.op_counts()}) -> {trace_path}")

# ---------------------------------------------------------- replay phase
trace = Trace.load(trace_path)
rows = []
for spec in [RunSpec("rocksdb", "A", 1, slowdown=True),
             RunSpec("kvaccel", "A", 1, rollback="eager")]:
    env = Environment()
    db, ssd, cpu = build_system(env, profile, spec)
    driver = TraceReplayDriver(env, db, trace,
                               batch_size=profile.batch_size)
    env.run(until=driver.start())
    elapsed = env.now
    rows.append([
        spec.display,
        f"{elapsed*1000:.0f} ms",
        f"{driver.write_ops / elapsed / 1000:.1f}",
        f"{driver.read_ops / elapsed / 1000:.1f}",
        db.main.write_controller.stall_events if hasattr(db, "main")
        else db.write_controller.stall_events,
    ])
    db.close()

print()
print(table(["system", "replay time", "write Kops/s", "read Kops/s",
             "stalls"],
            rows, title=f"Identical {len(trace)}-op trace on both systems"))
print("\nSame byte-identical request stream, same simulated hardware — the "
      "replay-time delta is purely engine behaviour.  On this light,\n"
      "scan-mixed session neither engine stalls, so KVACCEL's redirection "
      "buys nothing while its dual-interface scans cost a little more\n"
      "(Table V's effect) — exactly the kind of conclusion trace replay "
      "exists to surface before you deploy.")
