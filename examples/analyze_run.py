#!/usr/bin/env python3
"""Post-run analysis: where did every device byte go?

Runs workload A on RocksDB-sim and KVACCEL, then prints the storage
engineer's accounting: write amplification by source (WAL / flush /
compaction / redirect), stall cause breakdown, and device byte totals —
the same accounting that backs the paper's bandwidth-reclamation argument.

Run:  python examples/analyze_run.py

With ``--trace trace.json`` (a Chrome trace recorded via
``python -m repro.bench fig11 --trace trace.json``) it instead prints the
top-5 longest spans per category plus the per-stall attribution table.

With ``--health`` it runs a stall-prone RocksDB(1)-w/o-slowdown cell and
a KVACCEL cell with the telemetry hub + health rules enabled, then prints
each cell's HealthEvent timeline — the SLO-rule view of the same run.

With ``--lineage`` it runs the same two cells with the latency-lineage
profiler and prints each cell's percentile-conditioned critical-path
decomposition — which segment (stall / wal / queue / nand / ...) the
p50/p90/p99 latency actually went to, plus the slowest-op span trees.

With ``--journal`` it runs a KVACCEL cell with the deterministic flight
recorder and prints the kernel event-class histogram plus the digest
checkpoint cadence — the recording a ``python -m repro.obs diff`` bisect
would walk.
"""

import argparse
import copy

from repro.bench.profiles import mini_profile
from repro.bench.report import table
from repro.bench.runner import RunSpec, build_system
from repro.metrics import (
    RunCollector,
    device_byte_accounting,
    stall_breakdown,
    write_amplification,
)
from repro.sim import Environment
from repro.workload import DriverConfig, FillRandomDriver


def analyze_trace(path: str, n: int = 5) -> None:
    """Print the longest spans per category and stall attribution."""
    from repro.obs import (
        attribution_report,
        load_chrome_trace,
        spans_from_chrome,
        top_spans,
    )

    spans = spans_from_chrome(load_chrome_trace(path))
    print(f"{path}: {len(spans)} spans")
    for cat, items in sorted(top_spans(spans, n=n).items()):
        print(f"\ntop {len(items)} longest '{cat}' spans:")
        for dur, name, t0 in items:
            print(f"  {dur*1000:10.3f} ms  {name:32s} @ t={t0:.3f}s")
    print()
    print(attribution_report(spans, title=path))


def analyze_health() -> None:
    """Run a stall-prone cell and a KVACCEL cell; print health timelines."""
    from repro.bench.runner import run_workload

    profile = mini_profile(256)
    for spec in [RunSpec("rocksdb", "A", 1, slowdown=False),
                 RunSpec("kvaccel", "A", 1, rollback="disabled")]:
        result = run_workload(spec, profile, telemetry=True)
        events = result.health_events
        enters = [e for e in events if e["phase"] == "enter"]
        print(f"== {spec.display}: {len(enters)} health firing(s) "
              f"over {result.duration:.1f}s")
        if not events:
            print("  (no health events — the run stayed within SLO)")
        for e in events:
            print(f"  t={e['t']:9.3f}  [{e['severity']:>8s}]  "
                  f"{e['rule']:<28s} {e['phase']:<5s}  {e['message']}")
        for rule, count in sorted(result.health_summary().items()):
            print(f"  total {rule}: {count}")
        print()


def analyze_lineage() -> None:
    """Run a stall-prone cell and a KVACCEL cell; print lineage tables."""
    from repro.bench.runner import run_workload
    from repro.obs import check_lineage_invariant, lineage_report

    profile = mini_profile(256)
    for spec in [RunSpec("rocksdb", "A", 1, slowdown=False),
                 RunSpec("kvaccel", "A", 1, rollback="disabled")]:
        result = run_workload(spec, profile, lineage=True)
        lin = result.extra["lineage"]
        print(lineage_report(lin["ops"], title=spec.display,
                             exemplars=lin["exemplars"]))
        problems = check_lineage_invariant(lin["ops"])
        print(f"  invariant (sum(segments) == e2e): "
              f"{'OK' if not problems else 'VIOLATED'} "
              f"over {lin['op_count']} ops")
        print()


def analyze_journal() -> None:
    """Run a KVACCEL cell with the flight recorder; print its contents."""
    from repro.bench.runner import run_workload
    from repro.obs import Journal

    profile = mini_profile(256)
    spec = RunSpec("kvaccel", "A", 1, rollback="disabled")
    result = run_workload(spec, profile,
                          journal=Journal(period=profile.sample_period))
    journal = result.extra["journal"]
    total = journal.event_count
    print(f"== {spec.display}: {total} kernel events, "
          f"{journal.site_count} site visits, "
          f"{journal.checkpoint_count} digest checkpoints "
          f"over {result.duration:.1f}s")

    hist = journal.event_class_histogram()
    rows = [[cls, count, f"{100.0 * count / total:.1f}%"]
            for cls, count in sorted(hist.items(),
                                     key=lambda kv: -kv[1])]
    print(table(["event class", "count", "share"], rows,
                title="Kernel event-class histogram"))
    print()

    digests = [rec for rec in journal.records if rec[0] == "digest"]
    layers = sorted({rec[3] for rec in digests})
    times = sorted({rec[2] for rec in digests})
    gaps = [b - a for a, b in zip(times, times[1:])]
    rows = [["layers digested", ", ".join(layers)],
            ["checkpoints", str(journal.checkpoint_count)],
            ["digest records", str(len(digests))],
            ["first checkpoint", f"t={times[0]:.3f}s" if times else "-"],
            ["last checkpoint", f"t={times[-1]:.3f}s" if times else "-"],
            ["median cadence",
             f"{sorted(gaps)[len(gaps) // 2]:.3f}s" if gaps else "-"]]
    print(table(["checkpoint cadence", ""], rows,
                title=f"State digests (period={journal.period}s)"))
    print("\nBisect two such recordings with:  "
          "python -m repro.obs diff runA.jsonl.gz runB.jsonl.gz")


parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
parser.add_argument("--trace", metavar="FILE", default=None,
                    help="analyze a recorded Chrome trace instead of "
                         "running the workloads")
parser.add_argument("--health", action="store_true",
                    help="run with telemetry + health rules and print the "
                         "HealthEvent timeline instead of the byte tables")
parser.add_argument("--lineage", action="store_true",
                    help="run with the latency-lineage profiler and print "
                         "the percentile-conditioned segment decomposition")
parser.add_argument("--journal", action="store_true",
                    help="run with the deterministic flight recorder and "
                         "print the event-class histogram + checkpoint "
                         "cadence")
args = parser.parse_args()
if args.trace:
    analyze_trace(args.trace)
    raise SystemExit(0)
if args.health:
    analyze_health()
    raise SystemExit(0)
if args.lineage:
    analyze_lineage()
    raise SystemExit(0)
if args.journal:
    analyze_journal()
    raise SystemExit(0)

profile = mini_profile(256)

rows_wa, rows_stall = [], []
for spec in [RunSpec("rocksdb", "A", 1, slowdown=True),
             RunSpec("kvaccel", "A", 1, rollback="disabled")]:
    env = Environment()
    db, ssd, cpu = build_system(env, profile, spec)
    collector = RunCollector(env, spec.display,
                             sample_period=profile.sample_period)
    collector.attach_db_stats(db.stats)
    cfg = DriverConfig(duration=profile.duration,
                       key_space=profile.key_space,
                       value_size=profile.value_size,
                       batch_size=profile.batch_size)
    driver = FillRandomDriver(env, db, cfg)
    driver.write_meter = collector.write_meter
    env.run(until=driver.start())
    collector.stop()

    main = getattr(db, "main", db)
    redirect = ssd.devlsm.total_bytes
    result = collector.result(driver.write_ops, 0, driver.write_bytes,
                              write_controller=main.write_controller,
                              host_cpu=cpu, pcie_ledger=ssd.pcie.ledger)

    wa = write_amplification(db, user_bytes=driver.write_bytes,
                             redirect_bytes=redirect)
    sb = stall_breakdown(result)
    acct = device_byte_accounting(ssd)

    b = wa.breakdown()
    rows_wa.append([spec.display, f"{wa.factor:.2f}",
                    f"{b.get('wal', 0):.2f}", f"{b.get('flush', 0):.2f}",
                    f"{b.get('compaction', 0):.2f}",
                    f"{b.get('redirect', 0):.2f}"])
    rows_stall.append([spec.display, sb.stall_events,
                       f"{sb.stall_fraction*100:.0f}%",
                       f"{sb.delayed_fraction*100:.0f}%",
                       f"{sb.longest_stall*1000:.1f}ms",
                       f"{acct['pcie_bytes']/(1<<20):.0f} MiB"])
    db.close()

print(table(["system", "WA", "wal x", "flush x", "compact x", "redirect x"],
            rows_wa, title="Write amplification per user byte"))
print()
print(table(["system", "stalls", "stall time", "delayed time",
             "longest stall", "PCIe bytes"],
            rows_stall, title="Stall breakdown"))
print("\nReading the tables: KVACCEL's redirect bytes replace would-be "
      "stall time; its main-LSM WA shrinks because redirected data "
      "bypasses WAL+flush during the pressure windows.")
