#!/usr/bin/env python3
"""Surviving shard loss: replica groups, deterministic failover, and
live resharding under chaos.

The walkthrough builds a 2-shard cluster where every shard is a replica
group (primary + 1 backup, ``replay`` WAL streaming), then tells the
whole robustness story in one DES world:

1. a scripted client workload streams acked writes into the group log;
2. shard 0's primary is killed mid-run by a CRASH armed on a real fault
   site in its write path (``db.write.gate`` — the same crash model as
   the single-node harness);
3. the heartbeat daemon misses twice, catch-up replays the lag-window
   suffix into the backup, and the shard slot atomically repoints —
   clients ride the window out as ``FailoverInProgress`` retries, never
   errors;
4. a router seed bump mid-run (live resharding) composes with the
   failover: moved keys migrate shard-to-shard while reads dual-read
   through the window;
5. the acked-write-loss oracle reads back every acknowledged write —
   zero lost, zero stale, at this and every other crash point
   (``python -m repro.bench failover`` sweeps them).

Everything is deterministic: same seed, same journal bytes — pass
``REPRO_FAULT_SEED=0x...`` to replay any run, and see
``tests/cluster/test_failover_determinism.py`` for the byte-identity
and bisector pins.

Run:  python examples/failover_demo.py
"""

from repro.cluster import (
    INDEX_SHIP,
    REPLAY,
    run_failover_scenario,
)

print("=" * 72)
print("1. Primary kill on shard 0 (replay mode), client never sees an error")
print("=" * 72)
r = run_failover_scenario(REPLAY, ops=80, kill_site="db.write.gate",
                          kill_occurrence=5)
print(r.describe())
assert r.ok and r.crashed and r.failovers == 1
print(f"   catch-up replayed {r.catchup_records} record(s) in "
      f"{r.failover_duration * 1e6:.0f} us of simulated time (the "
      f"replay stream keeps backups within the lag window);")
print(f"   {r.acked} acked writes verified, {r.aborted} in-flight op(s) "
      f"retried by the client.")

print()
print("=" * 72)
print("2. Same story in index-ship mode (bulk installs at ship-period")
print("   boundaries; catch-up replays the un-shipped suffix)")
print("=" * 72)
r = run_failover_scenario(INDEX_SHIP, ops=80, kill_site="db.write.gate",
                          kill_occurrence=5)
print(r.describe())
assert r.ok and r.failovers == 1
print(f"   catch-up replayed {r.catchup_records} record(s) the backup "
      f"had not yet installed.")

print()
print("=" * 72)
print("3. Failover while a live reshard migrates keys (router seed bump)")
print("=" * 72)
r = run_failover_scenario(REPLAY, ops=80, kill_occurrence=3,
                          reshard_at_op=20)
print(r.describe())
assert r.ok and r.rebalanced and r.moved_keys > 0
print(f"   {r.moved_keys} key(s) changed owner mid-failover; the oracle "
      f"still reads every acked write back.")

print()
print("=" * 72)
print("4. Negative control: no crash, no failover, nothing to forgive")
print("=" * 72)
r = run_failover_scenario(REPLAY, ops=80, kill_site=None)
print(r.describe())
assert r.ok and not r.crashed and r.failovers == 0

print()
print("every acked write survived every scenario — sweep all crash "
      "points with: python -m repro.bench failover --quick")
