#!/usr/bin/env python3
"""Crash consistency walkthrough (paper Sections V-G and VI-D).

1. Writes land in the Dev-LSM during a (forced) stall window — they are
   durable in NAND the moment the KV PUT completes, with the volatile
   metadata hash table as the only index of what lives where.
2. A crash wipes the metadata table.
3. Recovery range-scans the whole key-value interface, merges everything
   back into Main-LSM (sequence numbers arbitrate against newer host-side
   versions), and resets the device buffer.
4. Every committed write is still readable; no stale value resurfaces.

The demo also round-trips an SSTable through the real binary codec to show
the on-media format is concrete, not hand-waved.

Run:  python examples/crash_recovery_demo.py
"""

from repro import CpuModel, Environment, HybridSsd, KvaccelDb, LsmOptions
from repro.device import HybridSsdConfig, MiB, NandGeometry
from repro.lsm import SSTable
from repro.types import encode_key, make_entry

env = Environment()
cpu = CpuModel(env, cores=8)
ssd = HybridSsd(env, cpu, HybridSsdConfig(
    geometry=NandGeometry(blocks_per_way=64)))
db = KvaccelDb(env, LsmOptions(write_buffer_size=1 * MiB), ssd, cpu,
               rollback="disabled")
db.detector.stop()  # we drive the stall signal by hand in this demo


def scenario():
    # Phase 1: normal traffic into Main-LSM.
    for i in range(200):
        yield from db.put(encode_key(i), b"main-v1-%d" % i)

    # Phase 2: a stall window — the controller redirects to the Dev-LSM.
    db.detector.stall_condition = True
    for i in range(100, 300):
        yield from db.put(encode_key(i), b"dev-v2-%d" % i)
    db.detector.stall_condition = False

    # Phase 3: some keys get re-written via Main-LSM afterwards (step 3-1
    # of the write path: their metadata records are deleted).
    for i in range(150, 180):
        yield from db.put(encode_key(i), b"main-v3-%d" % i)

    print(f"before crash: {ssd.kv.entry_count} entries buffered in the "
          f"Dev-LSM, {len(db.metadata)} keys tracked by the metadata table")

    # Phase 4: crash -> the volatile metadata table is gone.
    report = yield from db.recover()
    print(f"recovery: scanned + merged {report.entries_recovered} entries "
          f"in {report.elapsed*1000:.1f} simulated ms "
          f"({report.bytes_recovered} bytes)")

    yield from db.wait_for_quiesce()

    # Phase 5: verify — every key returns its newest committed value.
    checks = {
        50: b"main-v1-50",     # never redirected
        120: b"dev-v2-120",    # recovered from the device
        160: b"main-v3-160",   # host version must beat the stale dev copy
        299: b"dev-v2-299",
    }
    for k, expected in checks.items():
        got = yield from db.get(encode_key(k))
        status = "OK" if got == expected else f"MISMATCH (got {got!r})"
        print(f"  key {k:4d}: expect {expected!r:24} -> {status}")
        assert got == expected


env.run(until=env.process(scenario()))

# ---------------------------------------------------------------- codec
entries = [make_entry(encode_key(i), i + 1, b"payload-%d" % i)
           for i in range(64)]
sst = SSTable(99, entries, block_size=512)
blob = sst.to_bytes()
restored = SSTable.from_bytes(99, blob, block_size=512)
assert [e[0] for e in restored.entries] == [e[0] for e in sst.entries]
print(f"\nSST codec round-trip: {sst.num_entries} entries -> {len(blob)} "
      f"bytes on media -> restored {restored.num_entries} entries, "
      f"{restored.num_blocks} blocks, bloom fp~{restored.bloom.false_positive_rate():.3%}")
print("crash-recovery demo complete.")
db.close()
