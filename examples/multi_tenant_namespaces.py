#!/usr/bin/env python3
"""Multi-tenancy on the hybrid SSD (paper Section V-D).

The dual-interface SSD supports paired namespaces: each tenant gets an
isolated slice of the block region (for its Main-LSM) and a quota in the
KV region.  This example carves namespaces for two tenants, runs a
KVACCEL stack for each on its own slice of the same physical device, and
shows that the tenants share NAND bandwidth but never data.

Run:  python examples/multi_tenant_namespaces.py
"""

from repro import CpuModel, Environment, KvaccelDb, LsmOptions
from repro.device import (
    BlockDevice,
    HybridSsd,
    HybridSsdConfig,
    KiB,
    MiB,
    NandGeometry,
)

env = Environment()
cpu = CpuModel(env, cores=8)
ssd = HybridSsd(env, cpu, HybridSsdConfig(
    geometry=NandGeometry(blocks_per_way=128)))

# Carve paired (block, KV) namespaces for two tenants.
ns_a = ssd.create_namespace("tenant-a", block_bytes=64 * MiB,
                            kv_quota_bytes=16 * MiB)
ns_b = ssd.create_namespace("tenant-b", block_bytes=64 * MiB,
                            kv_quota_bytes=16 * MiB)
print("namespaces:")
for ns in ssd.namespaces():
    print(f"  nsid={ns.nsid} {ns.name}: block [{ns.block_offset}, "
          f"{ns.block_offset + ns.block_bytes}), kv quota "
          f"{ns.kv_quota_bytes // MiB} MiB")

# Each tenant's Main-LSM lives on its namespace slice of the block region.
# (The KV interface is shared through the controller in this prototype,
# exactly like the single-Dev-LSM design of the paper; per-tenant Dev-LSM
# isolation is the paper's cited follow-on work.)
opts = LsmOptions(write_buffer_size=256 * KiB,
                  max_bytes_for_level_base=1 * MiB,
                  target_file_size_base=256 * KiB)
db_a = KvaccelDb(env, opts, ssd, cpu, name="tenant-a", rollback="eager")


def workload():
    for i in range(500):
        yield from db_a.put(f"a:{i:05d}".encode(), b"A" * 512)
    v = yield from db_a.get(b"a:00042")
    assert v == b"A" * 512
    yield from db_a.wait_for_quiesce()


env.run(until=env.process(workload()))

print(f"\ntenant-a wrote 500 keys; simulated time {env.now*1000:.1f} ms")
print(f"device-wide PCIe traffic: {ssd.pcie.ledger.total_bytes // 1024} KiB")
print(f"block-region files: {len(db_a.main.fs.list_files())}")

# Deleting a namespace trims its block extents.
ssd.delete_namespace(ns_b.nsid)
print(f"after deleting tenant-b: {[ns.name for ns in ssd.namespaces()]}")
db_a.close()
