"""Ablation — SILK-style flush-priority I/O scheduling in the device queue.

The paper's related work (SILK, ATC '19) mitigates stalls by prioritizing
flush I/O over compaction I/O.  Our device model supports both FIFO and
priority queues; this ablation measures how much of KVACCEL's benefit a
software-only I/O scheduler can recover on plain RocksDB — the paper's
argument is that scheduling alone ("minimal performance improvement ...
under sustained write-intensive workloads") cannot match redirection.
"""

import copy

from repro.bench.runner import RunSpec, run_workload


def _with_priority(profile, enabled):
    prof = copy.deepcopy(profile)
    prof.ssd.nand_priority_scheduling = enabled
    return prof


def test_abl_io_priority(benchmark, repro_profile):
    def sweep():
        out = {}
        for enabled in (False, True):
            prof = _with_priority(repro_profile, enabled)
            out[enabled] = run_workload(
                RunSpec("rocksdb", "A", 1, slowdown=False), prof)
        # the comparison point: KVACCEL on the plain FIFO device
        out["kvaccel"] = run_workload(
            RunSpec("kvaccel", "A", 1, rollback="disabled"),
            _with_priority(repro_profile, False))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    fifo, prio, kva = results[False], results[True], results["kvaccel"]
    print("\nAblation — flush-priority I/O scheduling (SILK-style)")
    print(f"  RocksDB FIFO queue      thr={fifo.write_throughput_ops/1000:6.1f}K "
          f"stall_time={fifo.total_stall_time:.3f}s")
    print(f"  RocksDB priority queue  thr={prio.write_throughput_ops/1000:6.1f}K "
          f"stall_time={prio.total_stall_time:.3f}s")
    print(f"  KVACCEL (FIFO)          thr={kva.write_throughput_ops/1000:6.1f}K")

    # Priority scheduling must not hurt and typically trims stall time...
    assert prio.write_throughput_ops >= fifo.write_throughput_ops * 0.9
    # ...but cannot match redirection (the paper's SILK critique).
    assert kva.write_throughput_ops > prio.write_throughput_ops * 1.1
