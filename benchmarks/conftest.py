"""Benchmark configuration.

Profile selection for all benches:

* default                 -> mini256 (quick: ~2.3 s horizons, minutes total)
* REPRO_PROFILE=mini      -> mini64 (the calibrated default, ~10 s horizons)
* REPRO_PROFILE=mini<N>   -> custom scale
* REPRO_PROFILE=paper     -> unscaled paper constants (hours; documentation)
"""

import os

import pytest

from repro.bench.profiles import active_profile, mini_profile


@pytest.fixture(scope="session")
def repro_profile():
    if os.environ.get("REPRO_PROFILE"):
        return active_profile()
    return mini_profile(256)


def run_experiment(benchmark, module, profile, **kw):
    """Run one experiment module exactly once under pytest-benchmark."""
    out = benchmark.pedantic(
        lambda: module.run(profile=profile, **kw), rounds=1, iterations=1)
    out["check"].assert_all()
    return out
