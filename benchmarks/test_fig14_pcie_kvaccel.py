"""Bench reproducing the paper's Figure 14 (see the experiment module docstring
for the paper's reference numbers and the shape being asserted)."""

from repro.bench.experiments import exp_fig14_pcie_kvaccel as exp_module

from conftest import run_experiment


def test_fig14_pcie_kvaccel(benchmark, repro_profile):
    run_experiment(benchmark, exp_module, repro_profile)
