"""Extension experiment — single hybrid device vs two separate devices.

Paper Section V-D (last paragraph): the two interfaces can also live on
*separate* devices.  On one device, redirected KV writes share NAND
bandwidth with Main-LSM flush/compaction; on two devices they do not.
This bench quantifies that contention by running the same workload-A
redirect scenario against both deployments.
"""

import copy

from repro.bench.runner import RunSpec, build_system, run_workload
from repro.core import KvaccelDb, RollbackConfig
from repro.device import CpuModel, MultiDeviceSetup
from repro.metrics import RunCollector
from repro.sim import Environment
from repro.workload import DriverConfig, FillRandomDriver


def _run_multi_device(profile):
    """Mirror run_workload's fillrandom path on a MultiDeviceSetup."""
    env = Environment()
    cpu = CpuModel(env, cores=profile.host_cores, name="host")
    setup = MultiDeviceSetup(env, cpu,
                             copy.deepcopy(profile.ssd),
                             copy.deepcopy(profile.ssd))
    opts = copy.deepcopy(profile.options)
    opts.slowdown_enabled = False
    db = KvaccelDb(env, opts, setup, cpu,
                   rollback=RollbackConfig(scheme="disabled",
                                           period=profile.rollback_period),
                   detector_config=copy.deepcopy(profile.detector),
                   page_cache_bytes=profile.page_cache_bytes)
    collector = RunCollector(env, "KVAccel(1) two-device",
                             sample_period=profile.sample_period)
    collector.attach_db_stats(db.stats)
    cfg = DriverConfig(duration=profile.duration,
                       key_space=profile.key_space,
                       value_size=profile.value_size,
                       batch_size=profile.batch_size)
    driver = FillRandomDriver(env, db, cfg)
    driver.write_meter = collector.write_meter
    env.run(until=driver.start())
    collector.stop()
    result = collector.result(driver.write_ops, 0, driver.write_bytes,
                              write_controller=db.main.write_controller,
                              host_cpu=cpu, pcie_ledger=setup.pcie.ledger)
    result.extra["redirected_writes"] = db.controller.redirected_writes
    db.close()
    return result


def test_abl_multi_device(benchmark, repro_profile):
    def sweep():
        single = run_workload(
            RunSpec("kvaccel", "A", 1, rollback="disabled"), repro_profile)
        multi = _run_multi_device(repro_profile)
        return single, multi

    single, multi = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nExtension — single hybrid SSD vs two-device deployment")
    for label, r in [("single device", single), ("two devices", multi)]:
        print(f"  {label:14s} thr={r.write_throughput_ops/1000:6.1f} Kops/s "
              f"redirected={r.extra['redirected_writes']:7d}")

    # Both deployments must function and redirect.
    assert single.extra["redirected_writes"] > 0
    assert multi.extra["redirected_writes"] > 0
    # Removing NAND contention can only help (allow 5% noise).
    assert multi.write_throughput_ops >= single.write_throughput_ops * 0.95
