"""Microbenchmarks of the core data structures (real pytest-benchmark
multi-round timing — these are Python wall-clock numbers, not simulated).

Covers DESIGN decision D1's performance claim: the Dict memtable is the
fast default and the skiplist the reference implementation; plus the
hot-path structures every simulated op touches (bloom probe, SST probe,
merging iterator).
"""

import random

import pytest

from repro.lsm import BloomFilter, DictMemTable, SSTable, SkipListMemTable, merging_iterator
from repro.types import encode_key, make_entry

N = 2000


def _entries(n=N, vlen=64):
    return [make_entry(encode_key(i), i + 1, b"v" * vlen) for i in range(n)]


@pytest.fixture(scope="module")
def sorted_entries():
    return _entries()


@pytest.fixture(scope="module")
def shuffled_entries(sorted_entries):
    es = list(sorted_entries)
    random.Random(5).shuffle(es)
    return es


@pytest.mark.parametrize("factory", [DictMemTable, SkipListMemTable],
                         ids=["dict", "skiplist"])
def test_memtable_insert_rate(benchmark, factory, shuffled_entries):
    def insert_all():
        mt = factory()
        for e in shuffled_entries:
            mt.add(e)
        return mt

    mt = benchmark(insert_all)
    assert len(mt) == N


@pytest.mark.parametrize("factory", [DictMemTable, SkipListMemTable],
                         ids=["dict", "skiplist"])
def test_memtable_get_rate(benchmark, factory, shuffled_entries):
    mt = factory()
    for e in shuffled_entries:
        mt.add(e)
    keys = [e[0] for e in shuffled_entries[:500]]

    def get_all():
        hits = 0
        for k in keys:
            if mt.get(k) is not None:
                hits += 1
        return hits

    assert benchmark(get_all) == 500


def test_bloom_probe_rate(benchmark, sorted_entries):
    bf = BloomFilter(N, bits_per_key=10)
    for e in sorted_entries:
        bf.add(e[0])
    keys = [e[0] for e in sorted_entries[:500]] + \
           [encode_key(10**6 + i) for i in range(500)]

    def probe_all():
        return sum(bf.may_contain(k) for k in keys)

    hits = benchmark(probe_all)
    assert hits >= 500  # no false negatives


def test_sstable_point_probe_rate(benchmark, sorted_entries):
    table = SSTable(1, sorted_entries, block_size=4096)
    keys = [e[0] for e in sorted_entries[::4]]

    def probe_all():
        return sum(table.probe(k).entry is not None for k in keys)

    assert benchmark(probe_all) == len(keys)


def test_merging_iterator_rate(benchmark):
    rng = random.Random(7)
    sources = []
    for s in range(8):
        keys = sorted(rng.sample(range(20_000), 1000))
        sources.append([make_entry(encode_key(k), s * 10_000 + i, b"v")
                        for i, k in enumerate(keys)])

    def merge_all():
        return sum(1 for _ in merging_iterator([list(src) for src in sources]))

    count = benchmark(merge_all)
    assert count > 0
