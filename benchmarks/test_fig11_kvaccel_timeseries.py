"""Bench reproducing the paper's Figure 11 (see the experiment module docstring
for the paper's reference numbers and the shape being asserted)."""

from repro.bench.experiments import exp_fig11_kvaccel_timeseries as exp_module

from conftest import run_experiment


def test_fig11_kvaccel_timeseries(benchmark, repro_profile):
    run_experiment(benchmark, exp_module, repro_profile)
