"""Bench reproducing the paper's Table V (see the experiment module docstring
for the paper's reference numbers and the shape being asserted)."""

from repro.bench.experiments import exp_tab05_range_query as exp_module

from conftest import run_experiment


def test_tab05_range_query(benchmark, repro_profile):
    run_experiment(benchmark, exp_module, repro_profile)
