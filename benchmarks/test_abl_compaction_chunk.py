"""Ablation D2 — compaction I/O chunk size vs the PCIe idle/burst pattern.

The read->merge->write pipeline granularity decides how the link idles
during compaction: huge chunks make long silent merge slices; tiny chunks
smear I/O across every bucket.  The zero-traffic stall statistics of
Figs 4/5 depend on this choice.
"""

import copy

from repro.bench.runner import RunSpec, run_workload
from repro.metrics import analyze_stall_pcie


def _with_chunk(profile, chunk_bytes):
    prof = copy.deepcopy(profile)
    prof.options.compaction_io_chunk = chunk_bytes
    return prof


def _zero_fraction(r):
    s = analyze_stall_pcie(
        r.pcie_times, r.pcie_series, r.stall_intervals,
        capacity=r.extra["device_peak_bw"] * r.extra["sample_period"],
        bucket=r.extra["sample_period"])
    return s.zero_fraction, s.stall_buckets


def test_abl_compaction_chunk(benchmark, repro_profile):
    def sweep():
        out = {}
        for chunk in (256 * 1024, 2 * 1024 * 1024, 16 * 1024 * 1024):
            prof = _with_chunk(repro_profile, chunk)
            out[chunk] = run_workload(
                RunSpec("rocksdb", "A", 1, slowdown=False), prof)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation D2 — compaction chunk size vs stall-period link idleness")
    fracs = {}
    for chunk, r in results.items():
        frac, buckets = _zero_fraction(r)
        fracs[chunk] = frac
        print(f"  chunk={chunk//1024:6d} KiB  thr={r.write_throughput_ops/1000:6.1f}K "
              f"zero-fraction={frac*100:4.0f}% of {buckets} stall buckets")

    # Stall windows and idle buckets must exist at every granularity.
    assert all(_zero_fraction(r)[1] > 0 for r in results.values())
    assert all(f > 0 for f in fracs.values())
    # Finer chunks pipeline read/merge/write better, so throughput is
    # monotone non-increasing in chunk size (within 10% noise)...
    small, mid, big = sorted(results)
    assert results[small].write_throughput_ops >= \
        results[big].write_throughput_ops * 0.9
    # ...but the effect is bounded: the chunk is an I/O granularity, not a
    # scheduling policy (< 1.7x across a 64x size sweep).
    thrs = [r.write_throughput_ops for r in results.values()]
    assert max(thrs) <= min(thrs) * 1.7
