"""Bench reproducing the paper's Section VI-D (see the experiment module docstring
for the paper's reference numbers and the shape being asserted)."""

from repro.bench.experiments import exp_sec6d_recovery as exp_module

from conftest import run_experiment


def test_sec6d_recovery(benchmark, repro_profile):
    run_experiment(benchmark, exp_module, repro_profile)
