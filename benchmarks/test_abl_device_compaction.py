"""Ablation — in-device Dev-LSM compaction on/off.

The paper disables Dev-LSM compaction for workload A ("for a write-only
workload phase, a lazy rollback scheme that performs rollback after the
workload completes is the most sensible option", and compaction in the
device buys nothing before a wholesale reset).  This ablation verifies the
choice: device compaction burns ARM cycles and NAND bandwidth without
helping a buffer that will be bulk-scanned and reset anyway — but it
*does* help point reads that hit the Dev-LSM, by collapsing runs.
"""

import copy

from repro.bench.runner import RunSpec, run_workload


def _with_device_compaction(profile, enabled):
    prof = copy.deepcopy(profile)
    prof.ssd.devlsm.compaction_enabled = enabled
    prof.ssd.devlsm.compaction_trigger_runs = 8
    return prof


def test_abl_device_compaction(benchmark, repro_profile):
    def sweep():
        out = {}
        for enabled in (False, True):
            prof = _with_device_compaction(repro_profile, enabled)
            out[enabled] = {
                "A": run_workload(
                    RunSpec("kvaccel", "A", 1, rollback="disabled"), prof),
                "C": run_workload(
                    RunSpec("kvaccel", "C", 1, rollback="disabled"), prof),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — Dev-LSM compaction for the write buffer")
    for enabled, cells in results.items():
        a, c = cells["A"], cells["C"]
        print(f"  compaction={'on ' if enabled else 'off'} "
              f"A-writes={a.write_throughput_ops/1000:6.1f}K  "
              f"C-writes={c.write_throughput_ops/1000:6.1f}K "
              f"C-reads={c.read_throughput_ops/1000:5.2f}K")

    # Paper's choice for write-only workloads: compaction off is at least
    # as fast (the buffer is write-once, scan-once).
    assert (results[False]["A"].write_throughput_ops
            >= results[True]["A"].write_throughput_ops * 0.9)
