"""Ablation D3 — detector polling period.

The paper fixes the Detector at 0.1 s.  This ablation sweeps the period:
too slow a detector misses stall windows (fewer redirected writes, lower
throughput); an overly fast one buys little beyond the 0.1 s default.
"""

import copy

import pytest

from repro.bench.runner import RunSpec, run_workload


def _with_detector_period(profile, factor):
    prof = copy.deepcopy(profile)
    prof.detector.period = profile.detector.period * factor
    return prof


def test_abl_detector_period(benchmark, repro_profile):
    def sweep():
        out = {}
        for factor in (0.5, 1.0, 10.0, 40.0):
            prof = _with_detector_period(repro_profile, factor)
            r = run_workload(
                RunSpec("kvaccel", "A", 1, rollback="disabled"), prof)
            out[factor] = r
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation D3 — detector period vs redirection effectiveness")
    for factor, r in results.items():
        print(f"  period x{factor:<5g} thr={r.write_throughput_ops/1000:6.1f} Kops/s "
              f"redirected={r.extra['redirected_writes']:7d} "
              f"stall_time={r.total_stall_time:.3f}s")

    # A slower detector reacts late on both edges, so hard-stall time
    # grows monotonically with the period.
    assert results[40.0].total_stall_time >= results[0.5].total_stall_time
    # Throughput degrades (or at best holds) as the detector slows down.
    assert (results[40.0].write_throughput_ops
            <= results[0.5].write_throughput_ops * 1.02)
    # The paper's 0.1 s period performs within noise of a 2x-faster one.
    assert (results[1.0].write_throughput_ops
            >= results[0.5].write_throughput_ops * 0.75)
