"""Ablation D5 — a device-side read cache for the Dev-LSM iterator.

The paper attributes Table V's range-query gap to the *lack* of a read
cache for Dev-LSM iterator operations ("Without a read cache located in
fast memory for Dev-LSM's iterator, its range query performance lags
behind significantly").  This ablation adds one and shows the gap closing
— evidence that the model captures the mechanism, not just the number.
"""

import copy

from repro.bench.runner import RunSpec, run_workload


def _with_dev_read_cache(profile, enabled):
    prof = copy.deepcopy(profile)
    prof.ssd.devlsm.read_cache_enabled = enabled
    return prof


def test_abl_dev_read_cache(benchmark, repro_profile):
    def sweep():
        out = {}
        for enabled in (False, True):
            prof = _with_dev_read_cache(repro_profile, enabled)
            out[enabled] = run_workload(
                RunSpec("kvaccel", "D", 4, rollback="disabled"), prof)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    no_cache = results[False].read_throughput_ops
    cache = results[True].read_throughput_ops
    print("\nAblation D5 — Dev-LSM read cache vs range-query throughput")
    print(f"  no cache (paper's hardware): {no_cache/1000:7.1f} Kops/s")
    print(f"  with cache (hypothetical):   {cache/1000:7.1f} Kops/s "
          f"({cache/max(1, no_cache):.2f}x)")

    # The cache must lift range-query throughput noticeably: the Table V
    # bottleneck is real in the model.
    assert cache >= no_cache * 1.15
