"""Shared test fixtures: small devices and DBs that run fast."""

from __future__ import annotations

from repro.device import (
    BlockDevice,
    CpuModel,
    Ftl,
    KiB,
    MiB,
    NandArray,
    NandGeometry,
    PcieLink,
)
from repro.lsm import DbImpl, LsmOptions
from repro.sim import Environment


def small_options(**kw) -> LsmOptions:
    base = dict(
        write_buffer_size=16 * KiB,
        level0_file_num_compaction_trigger=2,
        level0_slowdown_writes_trigger=6,
        level0_stop_writes_trigger=10,
        max_bytes_for_level_base=64 * KiB,
        max_bytes_for_level_multiplier=4,
        target_file_size_base=16 * KiB,
        soft_pending_compaction_bytes_limit=256 * KiB,
        hard_pending_compaction_bytes_limit=1 * MiB,
        compaction_io_chunk=16 * KiB,
        wal_group_commit_bytes=4 * KiB,
        block_size=4 * KiB,
    )
    base.update(kw)
    return LsmOptions(**base)


def small_device(env: Environment, peak_mb: float = 200.0,
                 pcie_mb: float = 1024.0) -> BlockDevice:
    g = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                     pages_per_block=32, page_size=4096)
    ftl = Ftl(g, split_fraction=0.9)
    nand = NandArray(env, g, peak_bandwidth=peak_mb * MiB)
    pcie = PcieLink(env, bandwidth=pcie_mb * MiB)
    return BlockDevice(env, ftl, nand, pcie)


def small_db(env: Environment, options: LsmOptions | None = None,
             cores: int = 8, page_cache_bytes: int | None = None,
             **db_kw):
    cpu = CpuModel(env, cores=cores, name="host")
    dev = small_device(env)
    db = DbImpl(env, options or small_options(), dev, cpu,
                page_cache_bytes=page_cache_bytes, **db_kw)
    return db, dev, cpu


def run(env: Environment, gen):
    """Drive one generator to completion and return its value."""
    return env.run(until=env.process(gen))


def small_hybrid(env: Environment, cores: int = 8, peak_mb: float = 200.0,
                 devlsm_memtable: int = 8 * KiB):
    """A small HybridSsd + host CPU for KVACCEL-level tests."""
    from repro.device import (
        DevLsmConfig,
        HybridSsd,
        HybridSsdConfig,
    )

    cpu = CpuModel(env, cores=cores, name="host")
    geo = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                       pages_per_block=32, page_size=4096)
    cfg = HybridSsdConfig(
        geometry=geo,
        peak_nand_bandwidth=peak_mb * MiB,
        pcie_bandwidth=1024 * MiB,
        devlsm=DevLsmConfig(memtable_bytes=devlsm_memtable),
    )
    return HybridSsd(env, cpu, cfg), cpu


def small_kvaccel(env: Environment, options: LsmOptions | None = None,
                  rollback: str = "eager", detector_period: float = 0.002,
                  **kw):
    """A fast-detector KVACCEL stack on a small hybrid SSD."""
    from repro.core import DetectorConfig, KvaccelDb

    ssd, cpu = small_hybrid(env)
    db = KvaccelDb(
        env,
        options or small_options(),
        ssd,
        cpu,
        rollback=rollback,
        detector_config=DetectorConfig(period=detector_period),
        **kw,
    )
    return db, ssd, cpu
